"""Benchmark harness utilities (tables, timing, workload scaling)."""

from .harness import (
    Table,
    bench_scale,
    microseconds,
    ratio,
    scaled,
    server_metrics_table,
    statements_table,
    stats_table,
    throughput,
    time_call,
)

__all__ = [
    "Table",
    "bench_scale",
    "microseconds",
    "ratio",
    "scaled",
    "server_metrics_table",
    "statements_table",
    "stats_table",
    "throughput",
    "time_call",
]
