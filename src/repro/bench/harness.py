"""Benchmark harness utilities.

The paper has no evaluation section, so each bench prints the series
for one experiment from DESIGN.md's experiment index (E1–E10); the
shapes are compared against the paper's qualitative claims in
EXPERIMENTS.md. These helpers keep every bench uniform: deterministic
workloads, best-of-N timing, and aligned tables.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence


def bench_scale() -> float:
    """Global workload multiplier, from REPRO_BENCH_SCALE (default 1).

    Benches multiply their population sizes by this, so CI can run a
    fast pass (0.2) and a real run can crank it up (5).
    """
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


def scaled(size: int, minimum: int = 1) -> int:
    return max(minimum, int(size * bench_scale()))


def time_call(
    fn: Callable[[], object], repeat: int = 3, number: int = 1
) -> float:
    """Best-of-``repeat`` wall time of calling ``fn`` ``number`` times.

    Returns seconds per single call.
    """
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / number)
    return best


def throughput(fn: Callable[[], object], seconds: float = 0.2) -> float:
    """Calls per second over a short fixed budget."""
    count = 0
    start = time.perf_counter()
    deadline = start + seconds
    while time.perf_counter() < deadline:
        fn()
        count += 1
    elapsed = time.perf_counter() - start
    return count / elapsed if elapsed > 0 else float("inf")


@dataclass
class Table:
    """An aligned text table for bench output."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has"
                f" {len(self.columns)} columns"
            )
        self.rows.append([_format_cell(v) for v in values])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        header = [str(c) for c in self.columns]
        widths = [len(h) for h in header]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(str(cell)))
        lines = [f"== {self.title} =="]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(
                    str(cell).ljust(width)
                    for cell, width in zip(row, widths)
                )
            )
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def stats_table(view, title: str = "view maintenance stats") -> Table:
    """A table over a view's :class:`~repro.core.stats.ViewStats`.

    Benches print this after a phase to show how the phase was served
    (cache hits vs delta patches vs full recomputes — experiment E13).
    """
    stats = view.stats
    table = Table(
        title,
        [
            "view",
            "hits",
            "misses",
            "delta patches",
            "full recomputes",
            "invalidations",
        ],
    )
    table.add_row(
        view.scope_name,
        stats.hits,
        stats.misses,
        stats.delta_patches,
        stats.full_recomputes,
        sum(stats.invalidations_by_class.values()),
    )
    for name, count in sorted(stats.invalidations_by_class.items()):
        table.note(f"invalidations from {name}: {count}")
    return table


def server_metrics_table(
    metrics, title: str = "server metrics"
) -> Table:
    """A table over a server's
    :class:`~repro.server.metrics.ServerMetrics` snapshot.

    The network-tier sibling of :func:`stats_table`: request counts,
    error counts and read/write latency percentiles for one
    :class:`~repro.server.ViewServer` (experiment E14).
    """
    snap = metrics.snapshot()
    table = Table(
        title,
        [
            "kind",
            "requests",
            "mean ms",
            "p50 ms",
            "p99 ms",
        ],
    )
    for kind in ("read", "write"):
        latency = snap["latency"][kind]
        table.add_row(
            kind,
            latency["count"],
            latency["mean_ms"],
            latency["p50_ms"],
            latency["p99_ms"],
        )
    table.note(
        f"throughput {snap['requests_per_s']} req/s over"
        f" {snap['uptime_s']}s; errors: {sum(snap['errors'].values())};"
        f" connections: {snap['connections']['opened']} opened,"
        f" {snap['connections']['rejected']} rejected"
    )
    mvcc = snap.get("mvcc") or {}
    if any(mvcc.values()):
        table.note(
            f"mvcc: {mvcc['snapshot_reads']} snapshot reads;"
            f" {mvcc['group_batches']} group commits"
            f" ({mvcc['group_batched_ops']} writes,"
            f" max batch {mvcc['group_max_batch']})"
        )
    pipeline = snap.get("pipeline") or {}
    if pipeline.get("inflight_peak_connection"):
        pauses = pipeline.get("backpressure_pauses") or {}
        pause_text = (
            ", ".join(f"{k}={v}" for k, v in sorted(pauses.items()))
            or "none"
        )
        table.note(
            "pipelining: peak"
            f" {pipeline['inflight_peak_connection']} in-flight per"
            f" connection ({pipeline['inflight_current']} now);"
            f" backpressure pauses: {pause_text}"
        )
    return table


def statements_table(
    registry=None, top: int = 10, title: str = "top statements"
) -> Table:
    """A ``repro top``-style table over the statement-statistics
    registry — statements sorted by total time with calls, rows,
    latency percentiles and plan-cache/scatter verdicts (E21c).
    """
    if registry is None:
        from ..obs import stats as _stats

        registry = _stats.REGISTRY
    table = Table(
        title,
        [
            "statement",
            "calls",
            "total ms",
            "mean ms",
            "p99 ms",
            "rows",
            "plan",
            "scatter",
        ],
    )
    for entry in registry.snapshot(top=top):
        text = entry["text"]
        if len(text) > 48:
            text = text[:45] + "..."
        table.add_row(
            text,
            entry["calls"],
            entry["total_ms"],
            entry["mean_ms"],
            entry["p99_ms"],
            entry["rows_returned"],
            f"{entry['plan_hits']}h/{entry['plans_compiled']}c",
            f"{entry['scattered']}/{entry['calls']}",
        )
    if not table.rows:
        table.note("no statements recorded")
    if registry.evictions:
        table.note(f"registry evictions: {registry.evictions}")
    return table


def microseconds(seconds: float) -> float:
    return seconds * 1e6


def ratio(numerator: float, denominator: float) -> float:
    if denominator == 0:
        return float("inf")
    return numerator / denominator
