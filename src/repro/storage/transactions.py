"""Transactions over a database, with nested savepoints and optional
journaling.

Single-writer transactions built on a **changeset stack** (the
JournalDB discipline): each open transaction carries a stack of
changeset frames, one per savepoint plus a base frame. A frame records,
for every object *first touched while it was on top*, the object's
pre-image — ``_ABSENT`` for objects the frame created, or the
``(class_name, value)`` the object had before the frame's first write.

- :meth:`Transaction.savepoint` pushes a frame;
- :meth:`Transaction.rollback_to` restores every frame down to (and
  including) the savepoint's own changes — SQL ``ROLLBACK TO``
  semantics: state returns to the instant the savepoint was created
  and the savepoint stays valid;
- :meth:`Transaction.release` merges a frame's pre-images into the one
  below (SQL ``RELEASE``: the changes survive, the savepoint is gone);
- ``abort()`` restores all frames — equivalent to a ``rollback_to`` a
  savepoint taken at ``begin()``;
- ``commit()`` appends the surviving operations to the journal (if one
  is attached) as a single atomic record — replay never sees a partial
  transaction or a rolled-back savepoint's operations.

Restores go through the normal database mutation paths (with the
manager's own recording suppressed), so attribute indexes and
materialized views track rollbacks exactly as they track forward
operations.

A transaction also brackets the database in an MVCC batch
(``begin_batch`` / ``end_batch``): the whole transaction installs a
single store version, so a concurrent snapshot reader either sees none
of it or all of it — never a torn prefix, and never a state that a
savepoint rollback later erased.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Union

from ..engine.database import Database
from ..engine.events import (
    Event,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from ..engine.oid import Oid
from ..engine.values import deep_copy_value
from ..errors import TransactionError
from .journal import JournalWriter


class TxState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class _Absent:
    """Sentinel pre-image: the object did not exist before the frame."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<absent>"


_ABSENT = _Absent()


class Changeset:
    """One frame of a transaction's changeset stack."""

    __slots__ = ("name", "pre_images", "ops_mark")

    def __init__(self, name: Optional[str], ops_mark: int):
        self.name = name
        # oid -> _ABSENT | (class_name, value dict) at frame entry.
        self.pre_images: Dict[Oid, object] = {}
        self.ops_mark = ops_mark


class Savepoint:
    """Handle to a changeset frame; see :meth:`Transaction.savepoint`."""

    __slots__ = ("_txn", "_frame")

    def __init__(self, txn: "Transaction", frame: Changeset):
        self._txn = txn
        self._frame = frame

    @property
    def name(self) -> Optional[str]:
        return self._frame.name

    def rollback(self) -> None:
        self._txn.rollback_to(self)

    def release(self) -> None:
        self._txn.release(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Savepoint(name={self._frame.name!r})"


class Transaction:
    """One open transaction; obtained from
    :meth:`TransactionManager.begin` and usable as a context manager."""

    def __init__(self, manager: "TransactionManager", txid: int):
        self._manager = manager
        self.txid = txid
        self.state = TxState.ACTIVE
        self.ops: List[Event] = []
        # Base frame: abort() is a rollback through it.
        self._frames: List[Changeset] = [Changeset(None, 0)]

    # ------------------------------------------------------------------
    # Savepoints

    def savepoint(self, name: Optional[str] = None) -> Savepoint:
        """Push a changeset frame; later :meth:`rollback_to` restores
        the database to this instant."""
        self._require_active()
        frame = Changeset(name, len(self.ops))
        self._frames.append(frame)
        return Savepoint(self, frame)

    def savepoint_names(self) -> List[Optional[str]]:
        """Names of active savepoints, oldest first (base excluded)."""
        return [frame.name for frame in self._frames[1:]]

    def rollback_to(self, target: Union[Savepoint, str]) -> None:
        """Undo everything since the savepoint (which stays valid).

        Savepoints above it are discarded, as in SQL ``ROLLBACK TO``.
        """
        self._require_active()
        index = self._find(target)
        for frame in reversed(self._frames[index:]):
            self._manager._restore(frame.pre_images)
        del self._frames[index + 1:]
        kept = self._frames[index]
        del self.ops[kept.ops_mark:]
        kept.pre_images.clear()

    def release(self, target: Union[Savepoint, str]) -> None:
        """Forget the savepoint, keeping its changes (SQL ``RELEASE``).

        Its pre-images merge into the frame below — first-touch wins,
        so an outer rollback still restores the oldest state.
        """
        self._require_active()
        index = self._find(target)
        below = self._frames[index - 1]
        for frame in self._frames[index:]:
            for oid, pre in frame.pre_images.items():
                below.pre_images.setdefault(oid, pre)
        del self._frames[index:]

    def _find(self, target: Union[Savepoint, str]) -> int:
        if isinstance(target, Savepoint):
            if target._txn is not self:
                raise TransactionError(
                    "savepoint belongs to another transaction"
                )
            for index in range(len(self._frames) - 1, 0, -1):
                if self._frames[index] is target._frame:
                    return index
            raise TransactionError("savepoint is no longer active")
        for index in range(len(self._frames) - 1, 0, -1):
            if self._frames[index].name == target:
                return index
        raise TransactionError(f"no active savepoint named {target!r}")

    # ------------------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        self._manager._finish(self, commit=True)
        self.state = TxState.COMMITTED

    def abort(self) -> None:
        self._require_active()
        self._manager._finish(self, commit=False)
        self.state = TxState.ABORTED

    def _record(self, event: Event) -> None:
        """Append the event and capture first-touch pre-images."""
        self.ops.append(event)
        frame = self._frames[-1]
        oid = event.oid
        if oid in frame.pre_images:
            return
        if isinstance(event, ObjectCreated):
            frame.pre_images[oid] = _ABSENT
        elif isinstance(event, ObjectUpdated):
            # The event fires after the store was updated; revert the
            # one attribute to reconstruct the value at frame entry.
            value = dict(self._manager.database.raw_value(oid))
            if event.old_value is None:
                value.pop(event.attribute, None)
            else:
                value[event.attribute] = deep_copy_value(event.old_value)
            frame.pre_images[oid] = (event.class_name, value)
        elif isinstance(event, ObjectDeleted):
            frame.pre_images[oid] = (
                event.class_name,
                deep_copy_value(event.value or {}),
            )

    def _require_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txid} is {self.state.value}"
            )

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state is TxState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class TransactionManager:
    """Coordinates transactions for one database."""

    def __init__(
        self, database: Database, journal: Optional[JournalWriter] = None
    ):
        self._db = database
        self._journal = journal
        self._current: Optional[Transaction] = None
        self._next_txid = 1
        self._undoing = False
        database.events.subscribe(self._on_event)
        # The CLI and server reuse a database's manager so savepoints
        # opened in one surface are visible in the other.
        database.txn_manager = self

    @property
    def database(self) -> Database:
        return self._db

    @property
    def journal(self) -> Optional[JournalWriter]:
        return self._journal

    def begin(self) -> Transaction:
        if self._current is not None:
            raise TransactionError("a transaction is already active")
        txn = Transaction(self, self._next_txid)
        self._next_txid += 1
        self._db.begin_batch()
        self._current = txn
        return txn

    def in_transaction(self) -> bool:
        return self._current is not None

    @property
    def current(self) -> Optional[Transaction]:
        return self._current

    def delete(self, target) -> None:
        """Delete an object (pre-images are captured from the event)."""
        oid = getattr(target, "oid", target)
        self._db.delete(oid)

    # ------------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if self._undoing:
            return
        if not isinstance(
            event, (ObjectCreated, ObjectUpdated, ObjectDeleted)
        ):
            return
        if self._current is not None:
            self._current._record(event)
        elif self._journal is not None:
            self._journal.write_batch([event], self._db)

    def _restore(self, pre_images: Dict[Oid, object]) -> None:
        """Reinstate pre-images through the normal mutation paths.

        The manager's own recording is suppressed, but the events still
        reach indexes and materialized views — a rollback maintains
        them exactly like forward operations do.
        """
        db = self._db
        self._undoing = True
        try:
            for oid, pre in pre_images.items():
                if pre is _ABSENT:
                    if db.contains_oid(oid):
                        db.delete(oid)
                else:
                    class_name, value = pre
                    if db.contains_oid(oid):
                        db.delete(oid)
                    db.insert_with_oid(
                        oid, class_name, deep_copy_value(value)
                    )
        finally:
            self._undoing = False

    def _finish(self, txn: Transaction, commit: bool) -> None:
        if self._current is not txn:
            raise TransactionError("not the active transaction")
        self._current = None
        try:
            if commit:
                if self._journal is not None and txn.ops:
                    self._journal.write_batch(txn.ops, self._db)
                return
            for frame in reversed(txn._frames):
                self._restore(frame.pre_images)
        finally:
            # Close the MVCC batch last so undo operations land in the
            # same (single) version install as the transaction itself.
            self._db.end_batch()
