"""Transactions over a database, with optional journaling.

Single-writer transactions with undo-based abort:

- while a transaction is open, every database event is recorded;
- ``abort()`` applies inverse operations in reverse order (updates are
  reverted through the normal update path so indexes and materialized
  views stay consistent);
- ``commit()`` appends the batch to the journal (if one is attached)
  bracketed in a single atomic record — replay never sees a partial
  transaction;
- outside any transaction, operations auto-commit one at a time.

A transaction also brackets the database in an MVCC batch
(``begin_batch`` / ``end_batch``): the whole transaction installs a
single store version, so a concurrent snapshot reader either sees none
of it or all of it — never a torn prefix. The database's commit lock
is held for the duration, which is exactly the single-writer model
documented above.

Deletes must go through :meth:`TransactionManager.delete` so the
pre-image needed for undo is captured.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..engine.database import Database
from ..engine.events import (
    Event,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from ..engine.oid import Oid
from ..engine.values import deep_copy_value
from ..errors import TransactionError
from .journal import JournalWriter


class TxState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One open transaction; obtained from
    :meth:`TransactionManager.begin` and usable as a context manager."""

    def __init__(self, manager: "TransactionManager", txid: int):
        self._manager = manager
        self.txid = txid
        self.state = TxState.ACTIVE
        self.ops: List[Event] = []

    def commit(self) -> None:
        self._require_active()
        self._manager._finish(self, commit=True)
        self.state = TxState.COMMITTED

    def abort(self) -> None:
        self._require_active()
        self._manager._finish(self, commit=False)
        self.state = TxState.ABORTED

    def _require_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txid} is {self.state.value}"
            )

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state is TxState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class TransactionManager:
    """Coordinates transactions for one database."""

    def __init__(
        self, database: Database, journal: Optional[JournalWriter] = None
    ):
        self._db = database
        self._journal = journal
        self._current: Optional[Transaction] = None
        self._next_txid = 1
        self._undoing = False
        self._pre_images: Dict[Oid, Tuple[str, dict]] = {}
        database.events.subscribe(self._on_event)

    @property
    def database(self) -> Database:
        return self._db

    def begin(self) -> Transaction:
        if self._current is not None:
            raise TransactionError("a transaction is already active")
        txn = Transaction(self, self._next_txid)
        self._next_txid += 1
        self._db.begin_batch()
        self._current = txn
        return txn

    def in_transaction(self) -> bool:
        return self._current is not None

    def delete(self, target) -> None:
        """Delete an object, keeping its pre-image for undo."""
        oid = getattr(target, "oid", target)
        class_name = self._db.class_of(oid)
        self._pre_images[oid] = (
            class_name,
            deep_copy_value(self._db.raw_value(oid)),
        )
        self._db.delete(oid)

    # ------------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if self._undoing:
            return
        if not isinstance(
            event, (ObjectCreated, ObjectUpdated, ObjectDeleted)
        ):
            return
        if self._current is not None:
            self._current.ops.append(event)
        elif self._journal is not None:
            self._journal.write_batch([event], self._db)

    def _finish(self, txn: Transaction, commit: bool) -> None:
        if self._current is not txn:
            raise TransactionError("not the active transaction")
        self._current = None
        try:
            if commit:
                if self._journal is not None and txn.ops:
                    self._journal.write_batch(txn.ops, self._db)
                return
            self._undoing = True
            try:
                for event in reversed(txn.ops):
                    self._undo_event(event)
            finally:
                self._undoing = False
        finally:
            self._pre_images.clear()
            # Close the MVCC batch last so undo operations land in the
            # same (single) version install as the transaction itself.
            self._db.end_batch()

    def _undo_event(self, event: Event) -> None:
        db = self._db
        if isinstance(event, ObjectCreated):
            if db.contains_oid(event.oid):
                db.delete(event.oid)
        elif isinstance(event, ObjectUpdated):
            if db.contains_oid(event.oid):
                db.update(event.oid, event.attribute, event.old_value)
        elif isinstance(event, ObjectDeleted):
            pre_image = self._pre_images.get(event.oid)
            if pre_image is not None and not db.contains_oid(event.oid):
                class_name, value = pre_image
                db.insert_with_oid(event.oid, class_name, value)
