"""Persistence substrate: codec, record stores, journaling,
transactions, and whole-database snapshots."""

from .journal import JournalWriter, replay_journal
from .persistence import (
    compact,
    load_database,
    open_persistent,
    save_database,
)
from .serializer import (
    decode_value,
    encode_value,
    type_from_data,
    type_to_data,
)
from .stores import FileStore, MemoryStore, RecordStore
from .transactions import Transaction, TransactionManager, TxState

__all__ = [
    "FileStore",
    "JournalWriter",
    "MemoryStore",
    "RecordStore",
    "Transaction",
    "TransactionManager",
    "TxState",
    "compact",
    "decode_value",
    "encode_value",
    "load_database",
    "open_persistent",
    "replay_journal",
    "save_database",
    "type_from_data",
    "type_to_data",
]
