"""Persistence substrate: codec, record stores, journaling,
transactions, pages, buffer pool, and checkpointed databases."""

from .buffer import BufferManager, BufferStats
from .checkpoint import PagedDatabase, open_paged
from .journal import JournalWriter, replay_journal
from .pages import ChainWriter, DiskManager, read_chain
from .persistence import (
    compact,
    load_database,
    open_persistent,
    save_database,
    snapshot_records,
)
from .serializer import (
    decode_value,
    encode_value,
    type_from_data,
    type_to_data,
)
from .stores import FileStore, MemoryStore, RecordStore
from .transactions import (
    Savepoint,
    Transaction,
    TransactionManager,
    TxState,
)

__all__ = [
    "BufferManager",
    "BufferStats",
    "ChainWriter",
    "DiskManager",
    "FileStore",
    "JournalWriter",
    "MemoryStore",
    "PagedDatabase",
    "RecordStore",
    "Savepoint",
    "Transaction",
    "TransactionManager",
    "TxState",
    "compact",
    "decode_value",
    "encode_value",
    "load_database",
    "open_paged",
    "open_persistent",
    "read_chain",
    "replay_journal",
    "save_database",
    "snapshot_records",
    "type_from_data",
    "type_to_data",
]
