"""Persistence substrate: codec, record stores, journaling,
transactions, pages, buffer pool, and checkpointed databases."""

from .buffer import BufferManager, BufferStats
from .checkpoint import PagedDatabase, open_paged
from .journal import JournalWriter, replay_journal
from .objecttable import (
    Generation,
    PagedObjectTable,
    TableStats,
    segment_key,
)
from .pages import ChainWriter, DiskManager, read_chain
from .persistence import (
    compact,
    load_database,
    open_persistent,
    save_database,
    snapshot_records,
)
from .serializer import (
    decode_object_record,
    decode_value,
    encode_object_record,
    encode_tombstone_record,
    encode_value,
    type_from_data,
    type_to_data,
)
from .stores import FileStore, MemoryStore, RecordStore
from .transactions import (
    Savepoint,
    Transaction,
    TransactionManager,
    TxState,
)

__all__ = [
    "BufferManager",
    "BufferStats",
    "ChainWriter",
    "DiskManager",
    "FileStore",
    "Generation",
    "JournalWriter",
    "MemoryStore",
    "PagedDatabase",
    "PagedObjectTable",
    "RecordStore",
    "TableStats",
    "Savepoint",
    "Transaction",
    "TransactionManager",
    "TxState",
    "compact",
    "decode_object_record",
    "decode_value",
    "encode_object_record",
    "encode_tombstone_record",
    "encode_value",
    "load_database",
    "open_paged",
    "open_persistent",
    "read_chain",
    "replay_journal",
    "save_database",
    "segment_key",
    "snapshot_records",
    "type_from_data",
    "type_to_data",
]
