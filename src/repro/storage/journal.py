"""Journaling: durable logs of database operations.

A journal record is one committed batch of operations. Replay applies
batches in order onto a database whose schema is already in place
(usually restored from a snapshot in the same store — see
:mod:`repro.storage.persistence`).

Record shapes (as codec values):

- ``{"kind": "schema", "classes": [...]}`` — schema snapshot;
- ``{"kind": "txn", "ops": [...]}`` — a committed batch, each op one of
  ``create`` / ``update`` / ``delete``.
"""

from __future__ import annotations

from typing import Iterable, List

from ..engine.database import Database
from ..engine.events import (
    Event,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from ..errors import StorageError
from .serializer import decode_value, encode_value
from .stores import RecordStore


class JournalWriter:
    """Appends committed operation batches to a record store."""

    def __init__(self, store: RecordStore):
        self._store = store

    @property
    def store(self) -> RecordStore:
        return self._store

    def write_batch(self, events: Iterable[Event], db: Database) -> None:
        """Serialize a batch of events and append it atomically.

        Values of created objects are captured at commit time; an
        object created and deleted in the same batch is journaled as an
        empty create followed by a delete, which replays to the same
        state.
        """
        ops: List[dict] = []
        for event in events:
            if isinstance(event, ObjectCreated):
                value = (
                    dict(db.raw_value(event.oid))
                    if db.contains_oid(event.oid)
                    else {}
                )
                ops.append(
                    {
                        "op": "create",
                        "class": event.class_name,
                        "oid": event.oid,
                        "value": value,
                    }
                )
            elif isinstance(event, ObjectUpdated):
                ops.append(
                    {
                        "op": "update",
                        "oid": event.oid,
                        "attr": event.attribute,
                        "value": event.new_value,
                    }
                )
            elif isinstance(event, ObjectDeleted):
                ops.append({"op": "delete", "oid": event.oid})
        if not ops:
            return
        self._store.append(encode_value({"kind": "txn", "ops": ops}))
        self._store.sync()


def replay_journal(store: RecordStore, db: Database) -> int:
    """Apply all ``txn`` batches in the store to the database.

    Returns the number of operations applied. ``schema`` records are
    skipped here (handled by :mod:`repro.storage.persistence`).
    """
    applied = 0
    for raw in store.records():
        record = decode_value(raw)
        if not isinstance(record, dict) or record.get("kind") != "txn":
            continue
        for op in record["ops"]:
            _apply(db, op)
            applied += 1
    return applied


def _apply(db: Database, op: dict) -> None:
    kind = op.get("op")
    if kind == "create":
        if op["value"]:
            db.insert_with_oid(op["oid"], op["class"], op["value"])
        # An empty create followed by a delete in the same batch is a
        # no-op pair; creating it just to delete it would trip
        # not-null expectations, so skip empty creates whose object is
        # deleted later; if no delete follows, insert the empty object.
        else:
            db.insert_with_oid(op["oid"], op["class"], {})
    elif kind == "update":
        if db.contains_oid(op["oid"]):
            db.update(op["oid"], op["attr"], op["value"])
    elif kind == "delete":
        if db.contains_oid(op["oid"]):
            db.delete(op["oid"])
    else:
        raise StorageError(f"unknown journal op: {kind!r}")
