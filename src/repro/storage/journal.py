"""Journaling: durable logs of database operations.

A journal record is one committed batch of operations. Replay applies
batches in order onto a database whose schema is already in place
(usually restored from a snapshot in the same store or a page-file
checkpoint — see :mod:`repro.storage.persistence` and
:mod:`repro.storage.checkpoint`).

Record shapes (as codec values):

- ``{"kind": "schema", "classes": [...]}`` — schema snapshot;
- ``{"kind": "txn", "ops": [...]}`` — a committed batch, each op one of
  ``create`` / ``update`` / ``delete``.

Durability: ``write_batch`` fsyncs the store after every committed
batch (``sync_on_commit=True``, the default), so a committed
transaction survives immediate process death. Benchmarks that want to
measure raw append throughput can opt out and call ``sync()``
themselves.

Replay is *idempotent for creates*: replaying a ``create`` of an oid
that already exists replaces the stored value. Checkpointing relies on
this — a crash between writing the checkpoint and cutting the journal
leaves already-checkpointed batches in the redo tail, and replaying
them over the checkpoint must converge to the same state.
"""

from __future__ import annotations

from typing import Iterable, List

from ..engine.database import Database
from ..engine.events import (
    Event,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from ..errors import StorageError
from ..obs import trace as _trace
from .serializer import decode_value, encode_value
from .stores import RecordStore


class JournalWriter:
    """Appends committed operation batches to a record store."""

    def __init__(
        self,
        store: RecordStore,
        sync_on_commit: bool = True,
        on_batch=None,
    ):
        self._store = store
        self._sync_on_commit = sync_on_commit
        self._on_batch = on_batch
        self.batches_written = 0
        self.ops_written = 0

    @property
    def store(self) -> RecordStore:
        return self._store

    def write_batch(self, events: Iterable[Event], db: Database) -> None:
        """Serialize a batch of events and append it atomically.

        Values of created objects are captured at commit time; an
        object created and deleted in the same batch is journaled as an
        empty create followed by a delete, which replays to the same
        state. The append is fsynced before returning (unless the
        writer was built with ``sync_on_commit=False``), then the
        ``on_batch`` hook (checkpoint scheduling) runs.
        """
        ops: List[dict] = []
        for event in events:
            if isinstance(event, ObjectCreated):
                value = (
                    dict(db.raw_value(event.oid))
                    if db.contains_oid(event.oid)
                    else {}
                )
                ops.append(
                    {
                        "op": "create",
                        "class": event.class_name,
                        "oid": event.oid,
                        "value": value,
                    }
                )
            elif isinstance(event, ObjectUpdated):
                ops.append(
                    {
                        "op": "update",
                        "oid": event.oid,
                        "attr": event.attribute,
                        "value": event.new_value,
                    }
                )
            elif isinstance(event, ObjectDeleted):
                ops.append({"op": "delete", "oid": event.oid})
        if not ops:
            return
        self._store.append(encode_value({"kind": "txn", "ops": ops}))
        if self._sync_on_commit:
            if _trace.ENABLED:
                with _trace.span("journal.fsync", ops=len(ops)):
                    self._store.sync()
            else:
                self._store.sync()
        self.batches_written += 1
        self.ops_written += len(ops)
        if self._on_batch is not None:
            self._on_batch(len(ops))


def replay_journal(store: RecordStore, db: Database) -> int:
    """Apply all ``txn`` batches in the store to the database.

    Returns the number of operations applied. ``schema`` records are
    skipped here (handled by :mod:`repro.storage.persistence`).
    """
    applied = 0
    for raw in store.records():
        record = decode_value(raw)
        if not isinstance(record, dict) or record.get("kind") != "txn":
            continue
        for op in record["ops"]:
            _apply(db, op)
            applied += 1
    return applied


def _apply(db: Database, op: dict) -> None:
    kind = op.get("op")
    if kind == "create":
        # Idempotent: a create replayed over an existing object (a
        # redo-tail batch that predates the checkpoint it is replayed
        # onto) replaces the object wholesale.
        if db.contains_oid(op["oid"]):
            db.delete(op["oid"])
        db.insert_with_oid(op["oid"], op["class"], op["value"] or {})
    elif kind == "update":
        if db.contains_oid(op["oid"]):
            db.update(op["oid"], op["attr"], op["value"])
    elif kind == "delete":
        if db.contains_oid(op["oid"]):
            db.delete(op["oid"])
    else:
        raise StorageError(f"unknown journal op: {kind!r}")
