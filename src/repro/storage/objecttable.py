"""A demand-paged object table: the engine's object map backed by
chain segments.

:class:`PagedObjectTable` replaces the plain ``{oid: DatabaseObject}``
dict inside a :class:`~repro.engine.database.Database` when the
database is opened from a page file. It is *lazy*: opening a database
loads only the **directory** (oid → class name, built from the
checkpoint's extent chains) and the delta-resident objects; everything
else stays on disk until first touch, when the object's whole
**segment** (a record chain holding ~``2**SEGMENT_SHIFT`` neighbours
by oid) is faulted in through the
:class:`~repro.storage.buffer.BufferManager`. Clean cold entries are
dropped again once ``resident_limit`` is exceeded, so a database
larger than RAM streams through a bounded working set.

**Generations.** A :class:`Generation` is one checkpoint's immutable
segment map. Incremental checkpoints keep the generation (segments
are untouched; the dirty objects ride in delta chains and stay
resident); a *full* checkpoint installs a fresh generation on the
live table. A pinned MVCC snapshot keeps faulting from the generation
it froze with: page recycling in the checkpointer is gated on the
generation object's liveness (a weak reference), so the old segments
stay readable for as long as any table references them.

**MVCC interplay.** ``fork()`` is the table's copy-on-write-on-share
hook: publishing a snapshot marks the table shared, and the first
mutation afterwards forks it — O(1), because the resident entries,
the directory and the fault-protection set are themselves
copy-on-write between parent and child. Faults and evictions may
touch a *shared* entries dict deliberately: any divergence between
the sharers goes through a mutator, which unshares first, so a shared
dict only ever receives values both sides agree on.

**Fault protection.** An oid whose latest value is *not* in this
generation's base segments — created, updated or deleted since the
last full checkpoint — must never be dropped (re-faulting it would
resurrect the stale base record) and must shadow its base record
during a neighbour's segment fault. ``_unfaultable`` tracks exactly
that set; it is cleared when a full checkpoint folds the deltas into
fresh segments.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine.objects import DatabaseObject
from ..engine.oid import Oid
from ..errors import StorageError
from ..obs import trace as _trace
from .pages import read_chain
from .serializer import decode_object_record

# Objects per base segment: oids are grouped by ``number >> SHIFT``,
# so one fault materializes up to 2**SHIFT oid-adjacent objects (scan
# locality) while keeping per-segment rewrite cost small.
SEGMENT_SHIFT = 8


def segment_key(oid: Oid) -> Tuple[str, int]:
    """The (space, block) pair naming the segment an oid lives in."""
    return (oid.space, oid.number >> SEGMENT_SHIFT)


class Generation:
    """One checkpoint's immutable segment map.

    ``segments`` maps :func:`segment_key` to the head pid of the
    segment's record chain. The checkpointer holds a weak reference:
    pages of a superseded generation are recycled only after every
    table (live or pinned snapshot) referencing it is gone.
    """

    __slots__ = ("gen_id", "segments", "__weakref__")

    def __init__(self, gen_id: int, segments: Dict[Tuple[str, int], int]):
        self.gen_id = gen_id
        self.segments = segments

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Generation(id={self.gen_id},"
            f" segments={len(self.segments)})"
        )


class TableStats:
    """Fault/eviction counters, shared by every fork of one table."""

    __slots__ = ("faults", "fault_objects", "evictions")

    def __init__(self):
        self.faults = 0  # segment faults (chain reads)
        self.fault_objects = 0  # objects materialized by faults
        self.evictions = 0  # clean entries dropped


class PagedObjectTable:
    """A ``Mapping``-shaped object map that faults from chain segments.

    The engine only ever uses the mapping protocol on its object map
    (``get``/``[]``/``in``/``len``/``iter``/``items``), so this class
    slots into :class:`~repro.engine.database.Database` and
    :class:`~repro.engine.versions.DatabaseSnapshot` unchanged. Reads
    of resident entries are lock-free; faults, evictions and mutations
    serialize on one lock shared by the whole fork family.
    """

    __slots__ = (
        "_buffer",
        "_generation",
        "_directory",
        "_entries",
        "_unfaultable",
        "_dir_shared",
        "_entries_shared",
        "_unfaultable_shared",
        "_lock",
        "resident_limit",
        "stats",
    )

    def __init__(
        self,
        buffer,
        generation: Generation,
        directory: Dict[Oid, str],
        entries: Dict[Oid, DatabaseObject],
        unfaultable: Set[Oid],
        resident_limit: Optional[int] = None,
        stats: Optional[TableStats] = None,
        lock: Optional[threading.RLock] = None,
    ):
        self._buffer = buffer
        self._generation = generation
        self._directory = directory
        self._entries = entries
        self._unfaultable = unfaultable
        self._dir_shared = False
        self._entries_shared = False
        self._unfaultable_shared = False
        self._lock = lock if lock is not None else threading.RLock()
        self.resident_limit = resident_limit
        self.stats = stats if stats is not None else TableStats()

    # ------------------------------------------------------------------
    # Fork (copy-on-write-on-share)
    # ------------------------------------------------------------------

    def fork(self) -> "PagedObjectTable":
        """An O(1) logical copy sharing structures copy-on-write.

        Called by ``Database._writable_objects`` when the live table
        is referenced by a published snapshot: the snapshot keeps
        ``self`` (and its generation), the live database continues on
        the fork.
        """
        with self._lock:
            child = PagedObjectTable(
                self._buffer,
                self._generation,
                self._directory,
                self._entries,
                self._unfaultable,
                resident_limit=self.resident_limit,
                stats=self.stats,
                lock=self._lock,
            )
            self._dir_shared = child._dir_shared = True
            self._entries_shared = child._entries_shared = True
            self._unfaultable_shared = child._unfaultable_shared = True
            return child

    def _writable_entries(self) -> Dict[Oid, DatabaseObject]:
        if self._entries_shared:
            self._entries = dict(self._entries)
            self._entries_shared = False
        return self._entries

    def _writable_directory(self) -> Dict[Oid, str]:
        if self._dir_shared:
            self._directory = dict(self._directory)
            self._dir_shared = False
        return self._directory

    def _writable_unfaultable(self) -> Set[Oid]:
        if self._unfaultable_shared:
            self._unfaultable = set(self._unfaultable)
            self._unfaultable_shared = False
        return self._unfaultable

    # ------------------------------------------------------------------
    # Checkpoint hooks
    # ------------------------------------------------------------------

    @property
    def generation(self) -> Generation:
        return self._generation

    def swap_generation(
        self, generation: Generation, unfaultable: Set[Oid]
    ) -> None:
        """Install a full checkpoint's fresh segment map.

        ``unfaultable`` is the set of oids mutated *after* the
        checkpoint cut (they are in the journal tail, not the new
        segments). Everything else becomes clean and evictable. Called
        under the database commit lock by the checkpointer.
        """
        with self._lock:
            self._generation = generation
            self._unfaultable = set(unfaultable)
            self._unfaultable_shared = False

    def resident_count(self) -> int:
        return len(self._entries)

    def protected_count(self) -> int:
        return len(self._unfaultable)

    # ------------------------------------------------------------------
    # Mapping protocol (what the engine uses)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._directory)

    def __contains__(self, oid) -> bool:
        return oid in self._directory

    def __iter__(self) -> Iterator[Oid]:
        return iter(self._directory)

    def class_name_of(self, oid: Oid) -> Optional[str]:
        """The class an oid is real in, or ``None`` — never faults."""
        return self._directory.get(oid)

    def get(self, oid: Oid, default=None):
        obj = self._entries.get(oid)
        if obj is not None:
            return obj
        if oid not in self._directory:
            return default
        return self._fault(oid)

    def __getitem__(self, oid: Oid) -> DatabaseObject:
        obj = self.get(oid)
        if obj is None:
            raise KeyError(oid)
        return obj

    def __setitem__(self, oid: Oid, obj: DatabaseObject) -> None:
        with self._lock:
            self._writable_unfaultable().add(oid)
            self._writable_entries()[oid] = obj
            if self._directory.get(oid) != obj.class_name:
                self._writable_directory()[oid] = obj.class_name

    def __delitem__(self, oid: Oid) -> None:
        with self._lock:
            directory = self._writable_directory()
            if oid not in directory:
                raise KeyError(oid)
            del directory[oid]
            self._writable_entries().pop(oid, None)
            self._writable_unfaultable().discard(oid)

    def items(self):
        """Materializing iteration — faults every non-resident object
        (used by whole-database copies, not the query path)."""
        for oid in sorted(self._directory):
            obj = self.get(oid)
            if obj is not None:
                yield oid, obj

    def values(self):
        for _oid, obj in self.items():
            yield obj

    def keys(self):
        return self._directory.keys()

    # ------------------------------------------------------------------
    # Faulting
    # ------------------------------------------------------------------

    def _fault(self, oid: Oid) -> Optional[DatabaseObject]:
        """Materialize ``oid``'s segment; returns the object.

        The whole segment is decoded in one pass (its neighbours are
        the likeliest next reads), shadowed by any resident entry —
        a resident value always wins over the base record, which is
        what keeps dirty and delta-backed objects correct.
        """
        with self._lock:
            obj = self._entries.get(oid)
            if obj is not None:
                return obj  # another thread faulted it first
            if oid not in self._directory:
                return None  # deleted while we waited for the lock
            key = segment_key(oid)
            head = self._generation.segments.get(key)
            started = time.perf_counter() if _trace.ENABLED else 0.0
            if head is None:
                raise StorageError(
                    f"object {oid} has no segment in generation"
                    f" {self._generation.gen_id}"
                )
            # Deliberately not _writable_entries(): a fault adds
            # values every sharer agrees on (see the module docstring).
            entries = self._entries
            directory = self._directory
            loaded = 0
            wanted = None
            for raw in read_chain(self._buffer, head):
                roid, class_name, value = decode_object_record(raw)
                if class_name is None:
                    continue  # tombstones never appear in segments
                if roid in entries:
                    continue  # resident (possibly newer) value wins
                if directory.get(roid) != class_name:
                    continue  # deleted or re-created since this gen
                obj2 = DatabaseObject(roid, class_name, value)
                entries[roid] = obj2
                loaded += 1
                if roid == oid:
                    wanted = obj2
            self.stats.faults += 1
            self.stats.fault_objects += loaded
            if _trace.ENABLED:
                _trace.add_span(
                    "storage.segment_fault",
                    time.perf_counter() - started,
                    segment=f"{key[0]}:{key[1]}",
                    objects=loaded,
                )
            if wanted is None:
                raise StorageError(
                    f"object {oid} missing from its segment (generation"
                    f" {self._generation.gen_id})"
                )
            self._evict_excess()
            return wanted

    def _evict_excess(self) -> None:
        """Drop clean cold entries past ``resident_limit``.

        Only clean, segment-backed entries are candidates; dirty and
        delta-backed objects (``_unfaultable``) always stay. Eviction
        order is insertion order — oldest residents go first.
        """
        limit = self.resident_limit
        if limit is None:
            return
        entries = self._entries
        excess = len(entries) - limit
        if excess <= 0:
            return
        unfaultable = self._unfaultable
        victims: List[Oid] = []
        for oid in entries:
            if oid not in unfaultable:
                victims.append(oid)
                if len(victims) >= excess:
                    break
        for oid in victims:
            del entries[oid]
        self.stats.evictions += len(victims)
        if _trace.ENABLED and victims:
            _trace.add_span(
                "storage.table_evict", 0.0, objects=len(victims)
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PagedObjectTable({len(self._directory)} objects,"
            f" {len(self._entries)} resident,"
            f" gen={self._generation.gen_id})"
        )
