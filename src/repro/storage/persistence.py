"""Whole-database snapshots and re-opening.

A persistent database is, logically, a *snapshot* followed by a
*journal*: a ``database`` record (the name), a ``schema`` record, the
object creates, and then journaled transaction batches.
:func:`snapshot_records` produces the snapshot as a stream of encoded
records; :func:`load_database_from_records` rebuilds a database from
any record stream of that shape. Two storage backends share them:

- :func:`save_database` / :func:`load_database` put the records in a
  flat :class:`~repro.storage.stores.RecordStore` (the journal is the
  same store's tail) — simple, but restart replays all history;
- :mod:`repro.storage.checkpoint` puts them in a page-file record
  chain behind a buffer pool, with the journal cut to a short redo
  tail at every checkpoint — restart is O(snapshot pages + tail).

Computed attributes have procedures — Python code — which a data log
cannot carry. They are journaled by name and restored as placeholders
that raise until the application re-registers them via
:meth:`Database.define_attribute` (documented limitation; the paper's
view definitions are code and live with the application).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from ..engine.database import Database
from ..engine.schema import AttributeDef, AttributeKind
from ..errors import StorageError
from .journal import JournalWriter
from .serializer import (
    decode_value,
    encode_value,
    type_from_data,
    type_to_data,
)
from .stores import RecordStore
from .transactions import TransactionManager

# Object creates per snapshot ``txn`` record: bounds the size of one
# record (and so of one codec decode) independently of database size.
SNAPSHOT_CHUNK = 256


def snapshot_records(db, chunk: int = SNAPSHOT_CHUNK) -> Iterator[bytes]:
    """The full state of ``db`` as a stream of encoded records.

    ``db`` may be a live :class:`~repro.engine.database.Database` or an
    immutable :class:`~repro.engine.versions.DatabaseSnapshot` — the
    checkpointer hands in the latter so writers can proceed while the
    stream is consumed.
    """
    yield encode_value({"kind": "database", "name": db.name})
    classes = []
    for cdef in db.schema:
        attrs = []
        for adef in cdef.attributes.values():
            attrs.append(
                {
                    "name": adef.name,
                    "type": (
                        type_to_data(adef.declared_type)
                        if adef.declared_type is not None
                        else None
                    ),
                    "computed": adef.is_computed(),
                    "arity": adef.arity,
                }
            )
        classes.append(
            {
                "name": cdef.name,
                "parents": list(cdef.parents),
                "attrs": attrs,
                "doc": cdef.doc,
            }
        )
    yield encode_value({"kind": "schema", "classes": classes})
    ops = []
    for oid in db.all_oids():
        ops.append(
            {
                "op": "create",
                "class": db.class_of(oid),
                "oid": oid,
                "value": dict(db.raw_value(oid)),
            }
        )
        if len(ops) >= chunk:
            yield encode_value({"kind": "txn", "ops": ops})
            ops = []
    if ops:
        yield encode_value({"kind": "txn", "ops": ops})


def save_database(db: Database, store: RecordStore) -> None:
    """Write a full snapshot of the database to the store."""
    for record in snapshot_records(db):
        store.append(record)
    store.sync()


def load_database_from_records(records: Iterable[bytes]) -> Database:
    """Rebuild a database from a snapshot-plus-journal record stream."""
    db: Optional[Database] = None
    for raw in records:
        record = decode_value(raw)
        if not isinstance(record, dict):
            raise StorageError(f"malformed record: {record!r}")
        kind = record.get("kind")
        if kind == "database":
            db = Database(record["name"])
        elif kind == "schema":
            if db is None:
                raise StorageError("schema record before database record")
            _restore_schema(db, record["classes"])
        elif kind == "txn":
            if db is None:
                raise StorageError("txn record before database record")
            from .journal import _apply

            for op in record["ops"]:
                _apply(db, op)
        else:
            raise StorageError(f"unknown record kind: {kind!r}")
    if db is None:
        raise StorageError("store contains no database record")
    return db


def load_database(store: RecordStore) -> Database:
    """Rebuild a database from a store written by
    :func:`save_database` (plus any journal batches appended since)."""
    return load_database_from_records(store.records())


def _restore_schema(db: Database, classes) -> None:
    remaining = list(classes)
    defined = set(db.schema.class_names())
    while remaining:
        progressed = False
        deferred = []
        for cls in remaining:
            if all(parent in defined for parent in cls["parents"]):
                db.define_class(cls["name"], cls["parents"], doc=cls["doc"])
                for attr in cls["attrs"]:
                    _restore_attribute(db, cls["name"], attr)
                defined.add(cls["name"])
                progressed = True
            else:
                deferred.append(cls)
        if not progressed:
            names = ", ".join(c["name"] for c in deferred)
            raise StorageError(
                f"schema record has unsatisfiable parents for: {names}"
            )
        remaining = deferred


def _restore_attribute(db: Database, class_name: str, attr: dict) -> None:
    declared = (
        type_from_data(attr["type"]) if attr["type"] is not None else None
    )
    if attr["computed"]:

        def placeholder(*_args, _name=attr["name"], _cls=class_name):
            raise StorageError(
                f"computed attribute {_cls}.{_name} was restored from"
                " a snapshot; re-register its procedure with"
                " define_attribute() before use"
            )

        cdef = db.schema.require(class_name)
        cdef.attributes[attr["name"]] = AttributeDef(
            attr["name"],
            declared,
            AttributeKind.COMPUTED,
            placeholder,
            attr.get("arity", 0),
            class_name,
        )
    else:
        db.define_attribute(class_name, attr["name"], declared)


def compact(path: str) -> int:
    """Rewrite a file-store log as a fresh snapshot.

    Long-running journals accumulate superseded operations (updates to
    the same attribute, deleted objects); compaction loads the current
    state and atomically replaces the log with a snapshot of it.
    Returns the number of bytes reclaimed. Crash-safe: the snapshot is
    written to a sibling temp file and swapped in with ``os.replace``.
    """
    import os

    from .stores import FileStore

    before = os.path.getsize(path)
    with FileStore(path) as store:
        db = load_database(store)
    temp_path = path + ".compact"
    if os.path.exists(temp_path):
        os.unlink(temp_path)
    with FileStore(temp_path) as temp_store:
        save_database(db, temp_store)
    os.replace(temp_path, path)
    return before - os.path.getsize(path)


def open_persistent(
    store: RecordStore, name: str = "db", setup=None
) -> Tuple[Database, TransactionManager]:
    """Open (or initialize) a persistent database on a store.

    On an empty store a fresh database named ``name`` is created,
    ``setup(db)`` (if given) defines its schema and seed data, and the
    snapshot is written. On a non-empty store the database is rebuilt
    from the snapshot plus journal; ``setup`` is *not* run (the schema
    is already on disk), but computed-attribute procedures must be
    re-registered by the application.

    Returns the database and a transaction manager whose commits append
    to the store. For checkpointed page-file storage (restart cost
    bounded by the redo tail instead of all history), use
    :class:`repro.storage.checkpoint.PagedDatabase` instead.
    """
    has_records = any(True for _ in store.records())
    if has_records:
        db = load_database(store)
    else:
        db = Database(name)
        if setup is not None:
            setup(db)
        save_database(db, store)
    manager = TransactionManager(db, JournalWriter(store))
    return db, manager
