"""Checkpointed page-file storage: restart cost O(tail), not O(history).

:class:`PagedDatabase` ties the storage engine's layers together:

- a :class:`~repro.storage.pages.DiskManager` over ``<path>`` (the
  page file) and a :class:`~repro.storage.buffer.BufferManager` with a
  bounded pool, so snapshots stream through memory instead of living
  in it;
- a :class:`~repro.storage.stores.FileStore` journal at
  ``<path>.journal`` — the *redo tail*: only operations committed
  since the last checkpoint;
- a :class:`~repro.storage.transactions.TransactionManager` whose
  commits append (fsynced) to that journal.

**Checkpoint protocol** (:meth:`PagedDatabase.checkpoint`):

1. under the database's commit lock, capture an immutable MVCC
   snapshot (:meth:`Database.capture_snapshot`) and note the journal
   record count — the *cut*;
2. release the lock and stream the snapshot into a fresh page chain
   through the buffer pool (writers may keep committing; their batches
   land after the cut). Chain pages come from the free list inherited
   from the *previous* meta record, which by construction never
   contains pages of the chain the current meta references — a crash
   mid-checkpoint leaves the previous checkpoint fully intact;
3. flush dirty frames and fsync the page file;
4. re-take the commit lock, write the new meta record (double-buffered
   slots — see :mod:`repro.storage.pages`), then atomically rewrite
   the journal keeping only post-cut records.

A crash between steps 4's meta write and journal rewrite leaves
pre-cut batches in the tail; journal replay is idempotent
(:mod:`repro.storage.journal`), so replaying them over the checkpoint
converges to the same state.

**Restart** (:meth:`PagedDatabase` construction on an existing file):
read the best meta record, stream the snapshot chain through the
buffer pool, replay the journal tail. Replayed operation counts are
exposed (``replayed_on_open``) so tests and benches can assert the
bound.

``checkpoint_every=N`` checkpoints automatically after every N
committed journal batches.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..engine.database import Database
from ..errors import StorageError
from .buffer import DEFAULT_POOL_PAGES, BufferManager
from .journal import JournalWriter, replay_journal
from .pages import (
    DEFAULT_PAGE_SIZE,
    FIRST_DATA_PID,
    ChainWriter,
    DiskManager,
    chain_pages,
    read_chain,
    read_meta,
    write_meta,
)
from .persistence import load_database_from_records, snapshot_records
from .stores import FileStore
from .transactions import TransactionManager

FORMAT_VERSION = 1


class PagedDatabase:
    """A database stored in a page file plus a journal redo tail."""

    def __init__(
        self,
        path: str,
        name: str = "db",
        setup=None,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_pages: int = DEFAULT_POOL_PAGES,
        checkpoint_every: Optional[int] = None,
        sync_on_commit: bool = True,
    ):
        self._path = path
        self.disk = DiskManager(path, page_size)
        if read_meta(self.disk) is None and self._meta_slots_nonzero():
            # An existing file whose meta slots hold bytes we cannot
            # read as meta: either not a page file or one written with
            # a different page size. Refusing beats silently shadowing
            # the data with a fresh database.
            self.disk.close()
            raise StorageError(
                f"{path} is not a page file readable with"
                f" page_size={page_size}"
            )
        # Reserve the meta slots up front so the first chain write
        # never allocates page 0 or 1.
        self.disk.ensure_pages(FIRST_DATA_PID)
        self.buffer = BufferManager(self.disk, pool_pages)
        self.journal_store = FileStore(path + ".journal")
        self._checkpoint_every = checkpoint_every
        self._batches_since_checkpoint = 0
        self._checkpointing = False
        self.checkpoints_taken = 0
        self.last_checkpoint_pages = 0
        self.last_checkpoint_seconds = 0.0
        self.replayed_on_open = 0

        meta = read_meta(self.disk)
        if meta is not None:
            if meta.get("format") != FORMAT_VERSION:
                raise StorageError(
                    f"unsupported page-file format: {meta.get('format')!r}"
                )
            if meta.get("page_size") != page_size:
                raise StorageError(
                    f"page file uses page_size={meta.get('page_size')},"
                    f" opened with {page_size}"
                )
            self._checkpoint_id = int(meta["checkpoint_id"])
            self._root = int(meta["root"])
            self._free: List[int] = [int(p) for p in meta.get("free", [])]
            self.db = load_database_from_records(
                read_chain(self.buffer, self._root)
            )
            # The journal tail: everything committed after the
            # checkpoint. Replay is bounded by the tail, not history.
            self.replayed_on_open = replay_journal(
                self.journal_store, self.db
            )
        else:
            self._checkpoint_id = 0
            self._root = 0
            self._free = []
            self.db = Database(name)
            if setup is not None:
                setup(self.db)
        # The manager is created only now: replay must not re-journal
        # the operations it applies.
        self.journal = JournalWriter(
            self.journal_store,
            sync_on_commit=sync_on_commit,
            on_batch=self._on_journal_batch,
        )
        self.transactions = TransactionManager(self.db, self.journal)
        # Stats discovery: `.stats`, the server `stats` op and the
        # Prometheus export find the storage engine through the scope.
        self.db.storage = self
        if meta is None:
            self.checkpoint()

    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def checkpoint_id(self) -> int:
        return self._checkpoint_id

    def _meta_slots_nonzero(self) -> bool:
        from .pages import META_SLOTS

        return any(
            slot < self.disk.num_pages
            and any(self.disk.read_page(slot))
            for slot in META_SLOTS
        )

    def journal_tail_batches(self) -> int:
        """Batches currently in the redo tail (replay bound)."""
        return sum(1 for _ in self.journal_store.records())

    def _on_journal_batch(self, _ops: int) -> None:
        self._batches_since_checkpoint += 1
        if (
            self._checkpoint_every is not None
            and self._batches_since_checkpoint >= self._checkpoint_every
            and not self._checkpointing
        ):
            self.checkpoint()

    def _allocate_page(self) -> int:
        if self._free:
            pid = self._free.pop()
            self.buffer.seed_page(pid)
            return pid
        return self.buffer.allocate_page()

    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, int]:
        """Write a checkpoint and cut the journal to its redo tail.

        Returns ``{"checkpoint_id", "pages", "tail_batches"}``. Safe
        to call from the journal's post-batch hook (the commit lock is
        re-entrant); concurrent readers are never blocked, writers only
        during the two short locked phases.
        """
        if self._checkpointing:
            raise StorageError("checkpoint already in progress")
        self._checkpointing = True
        started = time.perf_counter()
        try:
            lock = self.db._commit_lock
            with lock:
                snap = self.db.capture_snapshot()
                cut = sum(1 for _ in self.journal_store.records())
            writer = ChainWriter(self.buffer, allocate=self._allocate_page)
            for record in snapshot_records(snap):
                writer.append(record)
            head, pages = writer.finish()
            self.buffer.flush_all()
            self.disk.sync()
            with lock:
                old_root = self._root
                old_pages = (
                    chain_pages(self.buffer, old_root) if old_root else []
                )
                self._checkpoint_id += 1
                free = self._free + old_pages
                self._write_meta(head, free)
                tail = list(self.journal_store.records())[cut:]
                self.journal_store.replace_records(tail)
                self.journal_store.sync()
                self._root = head
                self._free = free
                self._batches_since_checkpoint = len(tail)
            for pid in old_pages:
                self.buffer.drop(pid)
            self.checkpoints_taken += 1
            self.last_checkpoint_pages = pages
            self.last_checkpoint_seconds = time.perf_counter() - started
            return {
                "checkpoint_id": self._checkpoint_id,
                "pages": pages,
                "tail_batches": len(tail),
            }
        finally:
            self._checkpointing = False

    def _write_meta(self, root: int, free: List[int]) -> None:
        """Write the meta record, shedding free-list tail entries if
        they overflow the page (leaked pages, never corruption)."""
        keep = list(free)
        while True:
            meta = {
                "format": FORMAT_VERSION,
                "name": self.db.name,
                "page_size": self.disk.page_size,
                "checkpoint_id": self._checkpoint_id,
                "root": root,
                "free": keep,
            }
            try:
                write_meta(self.disk, meta)
                if len(keep) < len(free):
                    free[:] = keep
                return
            except StorageError:
                if not keep:
                    raise
                keep = keep[: len(keep) // 2]

    # ------------------------------------------------------------------

    def storage_stats(self) -> Dict[str, Dict[str, int]]:
        """Counters of every storage layer, for the stats surfaces."""
        return {
            "buffer": self.buffer.snapshot(),
            "disk": {
                "page_reads": self.disk.page_reads,
                "page_writes": self.disk.page_writes,
                "pages_allocated": self.disk.pages_allocated,
                "file_pages": self.disk.num_pages,
                "free_pages": len(self._free),
            },
            "checkpoint": {
                "checkpoints_taken": self.checkpoints_taken,
                "checkpoint_id": self._checkpoint_id,
                "last_checkpoint_pages": self.last_checkpoint_pages,
                "snapshot_pages": self.last_checkpoint_pages,
                "replayed_on_open": self.replayed_on_open,
                "journal_tail_batches": self.journal_tail_batches(),
            },
        }

    def close(self) -> None:
        self.buffer.flush_all()
        self.disk.close()
        self.journal_store.close()

    def __enter__(self) -> "PagedDatabase":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def open_paged(path: str, name: str = "db", setup=None, **kwargs):
    """Open (or initialize) a checkpointed paged database.

    Returns the :class:`PagedDatabase`; its ``db`` and ``transactions``
    attributes mirror :func:`repro.storage.persistence.open_persistent`
    's return values.
    """
    return PagedDatabase(path, name, setup, **kwargs)
