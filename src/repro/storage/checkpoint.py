"""Checkpointed page-file storage: restart cost O(tail), checkpoint
cost O(dirty), memory cost O(working set).

:class:`PagedDatabase` ties the storage engine's layers together:

- a :class:`~repro.storage.pages.DiskManager` over ``<path>`` (the
  page file) and a :class:`~repro.storage.buffer.BufferManager` with a
  bounded pool, so chains stream through memory instead of living in
  it;
- a :class:`~repro.storage.objecttable.PagedObjectTable` as the
  engine's object map — opening a database loads only the directory
  (oid → class) and the delta-resident objects; everything else is
  faulted from its chain segment on first touch and evictable again
  under ``resident_limit``;
- a :class:`~repro.storage.stores.FileStore` journal at
  ``<path>.journal`` — the *redo tail*: only operations committed
  since the last checkpoint;
- a :class:`~repro.storage.transactions.TransactionManager` whose
  commits append (fsynced) to that journal.

**On-disk layout (format 2).** The meta page (double-buffered slots —
see :mod:`repro.storage.pages`) points at a *manifest* chain; the
manifest names the database, carries the schema, and references:

- **base segments** — one record chain per ``(space, number >> 8)``
  block of oids, holding full object records. Written only by *full*
  checkpoints;
- a **directory chain** — per-class oid lists (the extent map), so
  open never touches a segment;
- **delta chains** — one per *incremental* checkpoint since the last
  full one: full images of the objects dirtied in that window, plus
  tombstones for deletions.

**Incremental checkpoints.** Mutations mark their oid dirty (an event
subscription). ``checkpoint()`` then writes one delta chain for the
dirty set and a fresh manifest that links every unchanged segment,
the directory and the prior delta chains *by reference* — cost
O(writes since the last checkpoint), not O(database). A *full*
checkpoint (the first one, an explicit ``checkpoint(full=True)``, or
automatic compaction once the accumulated deltas pass
``COMPACT_RATIO`` of the base) rewrites segments + directory and
clears the delta list.

**Page GC (horizon K).** Pages a checkpoint unlinks go to a *retired
queue* stamped with the checkpoint id that dropped them; they are
recycled onto the free list once ``gc_horizon`` further checkpoints
have committed **and** — for segment pages — no live
:class:`~repro.storage.objecttable.Generation` (a pinned MVCC
snapshot's table, say) can still fault from them. Retirement is
crash-safe by construction: a page retired while writing checkpoint N
is unreachable from meta N, and recovery never falls back past the
newest durable meta.

**Checkpoint protocol** (:meth:`PagedDatabase.checkpoint`):

1. under the database's commit lock, capture an immutable MVCC
   snapshot, note the journal record count (the *cut*) and swap out
   the dirty set;
2. release the lock and stream the new chains through the buffer pool
   (writers may keep committing; their batches land after the cut and
   their oids re-enter the dirty set). Chain pages come from the free
   list, which never contains pages any durable meta can reach;
3. flush dirty frames and fsync the page file;
4. re-take the commit lock, advance the retired queue, write the new
   meta record, then atomically cut the journal to post-cut records.

A crash between step 4's meta write and journal cut leaves pre-cut
batches in the tail; journal replay is idempotent
(:mod:`repro.storage.journal`), so replaying them over the checkpoint
converges to the same state.

``checkpoint_every=N`` checkpoints automatically after every N
committed journal batches.
"""

from __future__ import annotations

import time
import weakref
from itertools import islice
from typing import Dict, List, Optional, Set, Tuple

from ..engine.database import Database
from ..engine.objects import DatabaseObject
from ..engine.oid import Oid
from ..errors import StorageError
from ..obs import trace as _trace
from .buffer import DEFAULT_POOL_PAGES, BufferManager
from .journal import JournalWriter, replay_journal
from .objecttable import (
    Generation,
    PagedObjectTable,
    TableStats,
    segment_key,
)
from .pages import (
    DEFAULT_PAGE_SIZE,
    FIRST_DATA_PID,
    ChainWriter,
    DiskManager,
    chain_pages,
    read_chain,
    read_meta,
    write_meta,
)
from .persistence import (
    SNAPSHOT_CHUNK,
    _restore_schema,
    snapshot_records,
)
from .serializer import (
    decode_object_record,
    decode_value,
    encode_object_record,
    encode_tombstone_record,
    encode_value,
)
from .stores import FileStore
from .transactions import TransactionManager

FORMAT_VERSION = 2

# Compaction policy: a checkpoint turns full once the pending delta
# records would exceed COMPACT_RATIO of the object count (and at
# least COMPACT_MIN_RECORDS — small databases stay incremental), or
# once the delta list itself gets long enough to slow reopening.
COMPACT_RATIO = 0.25
COMPACT_MIN_RECORDS = 256
MAX_DELTA_CHAINS = 64

DEFAULT_GC_HORIZON = 2


class PagedDatabase:
    """A database stored in a page file plus a journal redo tail."""

    def __init__(
        self,
        path: str,
        name: str = "db",
        setup=None,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_pages: int = DEFAULT_POOL_PAGES,
        checkpoint_every: Optional[int] = None,
        sync_on_commit: bool = True,
        incremental_checkpoints: bool = True,
        resident_limit: Optional[int] = None,
        gc_horizon: int = DEFAULT_GC_HORIZON,
    ):
        if gc_horizon < 1:
            raise StorageError(f"gc_horizon must be >= 1, got {gc_horizon}")
        self._path = path
        self.disk = DiskManager(path, page_size)
        if read_meta(self.disk) is None and self._meta_slots_nonzero():
            # An existing file whose meta slots hold bytes we cannot
            # read as meta: either not a page file or one written with
            # a different page size. Refusing beats silently shadowing
            # the data with a fresh database.
            self.disk.close()
            raise StorageError(
                f"{path} is not a page file readable with"
                f" page_size={page_size}"
            )
        # Reserve the meta slots up front so the first chain write
        # never allocates page 0 or 1.
        self.disk.ensure_pages(FIRST_DATA_PID)
        self.buffer = BufferManager(self.disk, pool_pages)
        self.journal_store = FileStore(path + ".journal")
        self._checkpoint_every = checkpoint_every
        self._incremental = incremental_checkpoints
        self._resident_limit = resident_limit
        self._gc_horizon = gc_horizon
        self.compact_ratio = COMPACT_RATIO
        self.compact_min_records = COMPACT_MIN_RECORDS
        self.max_delta_chains = MAX_DELTA_CHAINS
        self._batches_since_checkpoint = 0
        self._checkpointing = False
        self.checkpoints_taken = 0
        self.full_checkpoints = 0
        self.incremental_checkpoints = 0
        self.last_checkpoint_pages = 0
        self.last_checkpoint_bytes = 0
        self.last_checkpoint_kind = ""
        self.last_checkpoint_seconds = 0.0
        self.checkpoint_pages_total = 0
        self.replayed_on_open = 0
        self.pages_read_on_open = 0

        # Chain state of the current durable checkpoint. ``pids`` are
        # filled in as chains are written; ``None`` means the chain
        # was inherited from disk and is walked when it is retired.
        self._manifest_head = 0
        self._manifest_pids: Optional[List[int]] = []
        self._segments: Dict[Tuple[str, int], dict] = {}
        self._dir_head = 0
        self._dir_pids: Optional[List[int]] = []
        self._deltas: List[dict] = []
        self._delta_records = 0
        self._free: List[int] = []
        # Retired batches: {"ckpt": id, "pids": [...], "gen": weakref
        # or None}. ``gen`` gates segment pages on generation
        # liveness; plain chains (manifest/directory/delta) are only
        # read at open and recycle on the horizon alone.
        self._retired: List[dict] = []
        self._dirty: Set[Oid] = set()
        self._table_stats = TableStats()

        meta = read_meta(self.disk)
        reads_before = self.disk.page_reads
        if meta is not None:
            if meta.get("format") != FORMAT_VERSION:
                raise StorageError(
                    f"unsupported page-file format: {meta.get('format')!r}"
                )
            if meta.get("page_size") != page_size:
                raise StorageError(
                    f"page file uses page_size={meta.get('page_size')},"
                    f" opened with {page_size}"
                )
            self._checkpoint_id = int(meta["checkpoint_id"])
            self._free = [int(p) for p in meta.get("free", [])]
            self._retired = [
                {"ckpt": int(ckpt), "pids": [int(p) for p in pids],
                 "gen": None}
                for ckpt, pids in meta.get("retired", [])
            ]
            self.db = self._load(int(meta["root"]))
        else:
            self._checkpoint_id = 0
            self.db = Database(name)
            self._generation = Generation(0, {})
            self._attach_table(self.db, {}, {}, set())
            if setup is not None:
                setup(self.db)
        # Dirty tracking must see journal replay (replayed operations
        # are in the tail and must land in the next checkpoint), so
        # subscribe before replaying.
        self.db.events.subscribe(self._on_commit_event)
        if meta is not None:
            # The journal tail: everything committed after the
            # checkpoint. Replay is bounded by the tail, not history.
            self.replayed_on_open = replay_journal(
                self.journal_store, self.db
            )
        self.pages_read_on_open = self.disk.page_reads - reads_before
        # The manager is created only now: replay must not re-journal
        # the operations it applies.
        self.journal = JournalWriter(
            self.journal_store,
            sync_on_commit=sync_on_commit,
            on_batch=self._on_journal_batch,
        )
        self.transactions = TransactionManager(self.db, self.journal)
        # Stats discovery: `.stats`, the server `stats` op and the
        # Prometheus export find the storage engine through the scope.
        self.db.storage = self
        if meta is None:
            self.checkpoint()

    # ------------------------------------------------------------------
    # Open path
    # ------------------------------------------------------------------

    def _load(self, root: int) -> Database:
        """Rebuild the engine from a manifest chain: schema plus the
        directory plus delta-resident objects — base segments stay on
        disk until faulted."""
        name: Optional[str] = None
        classes = None
        for raw in read_chain(self.buffer, root):
            record = decode_value(raw)
            if not isinstance(record, dict):
                raise StorageError(f"malformed manifest record: {record!r}")
            kind = record.get("kind")
            if kind == "database":
                name = record["name"]
            elif kind == "schema":
                classes = record["classes"]
            elif kind == "segment":
                self._segments[(record["space"], record["block"])] = {
                    "head": int(record["head"]),
                    "count": int(record["count"]),
                    "pids": None,
                }
            elif kind == "dir":
                self._dir_head = int(record["head"])
                self._dir_pids = None
            elif kind == "delta":
                self._deltas.append(
                    {
                        "head": int(record["head"]),
                        "count": int(record["count"]),
                        "pids": None,
                    }
                )
            else:
                raise StorageError(f"unknown manifest record kind: {kind!r}")
        if name is None or classes is None:
            raise StorageError("manifest chain lacks database/schema records")
        self._manifest_head = root
        self._manifest_pids = None
        self._delta_records = sum(d["count"] for d in self._deltas)

        db = Database(name)
        _restore_schema(db, classes)
        directory: Dict[Oid, str] = {}
        if self._dir_head:
            for raw in read_chain(self.buffer, self._dir_head):
                record = decode_value(raw)
                for oid in record["oids"]:
                    directory[oid] = record["class"]
        # Delta replay, oldest chain first: the latest image (or
        # tombstone) of each dirtied object wins. Delta objects stay
        # resident and fault-protected until the next full checkpoint.
        entries: Dict[Oid, DatabaseObject] = {}
        for delta in self._deltas:
            for raw in read_chain(self.buffer, delta["head"]):
                oid, class_name, value = decode_object_record(raw)
                if class_name is None:
                    directory.pop(oid, None)
                    entries.pop(oid, None)
                else:
                    directory[oid] = class_name
                    entries[oid] = DatabaseObject(oid, class_name, value)
        self._generation = Generation(
            self._checkpoint_id,
            {key: seg["head"] for key, seg in self._segments.items()},
        )
        self._attach_table(db, directory, entries, set(entries))
        return db

    def _attach_table(
        self,
        db: Database,
        directory: Dict[Oid, str],
        entries: Dict[Oid, DatabaseObject],
        unfaultable: Set[Oid],
    ) -> None:
        extents: Dict[str, set] = {
            class_name: set() for class_name in db.schema.class_names()
        }
        for oid, class_name in directory.items():
            extents.setdefault(class_name, set()).add(oid)
        table = PagedObjectTable(
            self.buffer,
            self._generation,
            directory,
            entries,
            unfaultable,
            resident_limit=self._resident_limit,
            stats=self._table_stats,
        )
        db.attach_object_table(table, extents)

    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def checkpoint_id(self) -> int:
        return self._checkpoint_id

    @property
    def gc_horizon(self) -> int:
        return self._gc_horizon

    def _meta_slots_nonzero(self) -> bool:
        from .pages import META_SLOTS

        return any(
            slot < self.disk.num_pages
            and any(self.disk.read_page(slot))
            for slot in META_SLOTS
        )

    def journal_tail_batches(self) -> int:
        """Batches currently in the redo tail (replay bound)."""
        return sum(1 for _ in self.journal_store.records())

    def _on_commit_event(self, event) -> None:
        oid = getattr(event, "oid", None)
        if oid is not None:
            self._dirty.add(oid)

    def _on_journal_batch(self, _ops: int) -> None:
        self._batches_since_checkpoint += 1
        if (
            self._checkpoint_every is not None
            and self._batches_since_checkpoint >= self._checkpoint_every
            and not self._checkpointing
        ):
            self.checkpoint()

    def _allocate_page(self) -> int:
        if self._free:
            pid = self._free.pop()
            self.buffer.seed_page(pid)
            return pid
        return self.buffer.allocate_page()

    def _live_table(self) -> Optional[PagedObjectTable]:
        """The engine's object map, if it is still one of ours.

        ``restore_objects`` (plain-dict restore) would silently bypass
        dirty tracking; checkpoints fall back to full rewrites when
        the table has been replaced.
        """
        table = self.db._objects
        if (
            isinstance(table, PagedObjectTable)
            and table.stats is self._table_stats
        ):
            return table
        return None

    def _chain_pids(self, head: int, cached: Optional[List[int]]) -> List[int]:
        if not head:
            return []
        if cached is not None:
            return cached
        return chain_pages(self.buffer, head)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, full: Optional[bool] = None) -> Dict[str, object]:
        """Write a checkpoint and cut the journal to its redo tail.

        ``full=None`` lets the compaction policy decide; ``True``
        forces a full rewrite, ``False`` forces an incremental delta
        (where one is possible). Returns ``{"checkpoint_id", "kind",
        "pages", "bytes", "tail_batches"}``. Safe to call from the
        journal's post-batch hook (the commit lock is re-entrant);
        concurrent readers are never blocked, writers only during the
        two short locked phases.
        """
        if self._checkpointing:
            raise StorageError("checkpoint already in progress")
        self._checkpointing = True
        started = time.perf_counter()
        try:
            lock = self.db._commit_lock
            with _trace.span("checkpoint.snapshot_cut") as cut_sp:
                with lock:
                    snap = self.db.capture_snapshot()
                    cut = sum(1 for _ in self.journal_store.records())
                    dirty, self._dirty = self._dirty, set()
                cut_sp.set(batches=cut, dirty=len(dirty))
            kind = self._decide_kind(full, snap, dirty)
            with _trace.span("checkpoint.chain_stream", kind=kind) as st_sp:
                try:
                    if kind == "full":
                        state = self._write_full(snap)
                    else:
                        state = self._write_incremental(snap, dirty)
                except BaseException:
                    # The dirty set must survive a failed checkpoint:
                    # put it back (merged with whatever committed
                    # meanwhile).
                    with lock:
                        self._dirty |= dirty
                    raise
                self.buffer.flush_all()
                self.disk.sync()
                st_sp.set(pages=state["pages"])
            with _trace.span("checkpoint.meta_write"), lock:
                new_id = self._checkpoint_id + 1
                for batch in state["retired"]:
                    if batch["pids"]:
                        batch["ckpt"] = new_id
                        self._retired.append(batch)
                freed = self._promote_retired(new_id)
                free = self._free + freed
                self._write_meta(new_id, state["manifest_head"], free)
                tail = list(self.journal_store.records())[cut:]
                self.journal_store.replace_records(tail)
                self.journal_store.sync()
                self._checkpoint_id = new_id
                self._free = free
                self._manifest_head = state["manifest_head"]
                self._manifest_pids = state["manifest_pids"]
                if kind == "full":
                    self._segments = state["segments"]
                    self._dir_head = state["dir_head"]
                    self._dir_pids = state["dir_pids"]
                    self._deltas = []
                    self._delta_records = 0
                    self._generation = state["generation"]
                    table = self._live_table()
                    if table is not None:
                        # Post-cut mutations live in the journal tail,
                        # not the new segments: they stay protected.
                        table.swap_generation(
                            self._generation, set(self._dirty)
                        )
                elif state["delta"] is not None:
                    self._deltas.append(state["delta"])
                    self._delta_records += state["delta"]["count"]
                self._batches_since_checkpoint = len(tail)
            for pid in freed:
                try:
                    self.buffer.drop(pid)
                except StorageError:  # pragma: no cover - defensive
                    pass
            self.checkpoints_taken += 1
            if kind == "full":
                self.full_checkpoints += 1
            else:
                self.incremental_checkpoints += 1
            self.last_checkpoint_pages = state["pages"]
            self.last_checkpoint_bytes = state["pages"] * self.disk.page_size
            self.last_checkpoint_kind = kind
            self.checkpoint_pages_total += state["pages"]
            self.last_checkpoint_seconds = time.perf_counter() - started
            return {
                "checkpoint_id": self._checkpoint_id,
                "kind": kind,
                "pages": state["pages"],
                "bytes": self.last_checkpoint_bytes,
                "tail_batches": len(tail),
            }
        finally:
            self._checkpointing = False

    def _decide_kind(self, full, snap, dirty: Set[Oid]) -> str:
        if full is True or not self._incremental:
            return "full"
        if not self._manifest_head:
            return "full"  # nothing durable to delta against
        if self._live_table() is None:
            return "full"  # object map replaced; dirty set untrustworthy
        if full is False:
            return "incremental"
        if len(self._deltas) >= self.max_delta_chains:
            return "full"
        pending = self._delta_records + len(dirty)
        threshold = max(
            self.compact_min_records,
            int(self.compact_ratio * max(1, snap.object_count())),
        )
        if pending >= threshold:
            return "full"
        return "incremental"

    def _write_full(self, snap) -> dict:
        """Rewrite segments + directory + manifest from the snapshot.

        Retires every chain of the previous checkpoint: the old
        segments (generation-gated) and the old manifest, directory
        and delta chains (horizon-gated only)."""
        old_plain = (
            self._chain_pids(self._manifest_head, self._manifest_pids)
            + self._chain_pids(self._dir_head, self._dir_pids)
        )
        for delta in self._deltas:
            old_plain += self._chain_pids(delta["head"], delta["pids"])
        old_segment_pids: List[int] = []
        for seg in self._segments.values():
            old_segment_pids += self._chain_pids(seg["head"], seg["pids"])
        old_generation = self._generation

        pages = 0
        segments: Dict[Tuple[str, int], dict] = {}
        extent_lists: Dict[str, List[Oid]] = {}
        writer: Optional[ChainWriter] = None
        current_key: Optional[Tuple[str, int]] = None
        count = 0

        def close_segment() -> None:
            nonlocal pages, writer, count
            if writer is None:
                return
            head, seg_pages = writer.finish()
            segments[current_key] = {
                "head": head,
                "count": count,
                "pids": writer.pids,
            }
            pages += seg_pages
            writer = None
            count = 0

        # snap.all_oids() is sorted by (space, number), so each
        # segment's oids are contiguous: one streaming pass writes
        # every segment chain without holding objects back.
        for oid in snap.all_oids():
            key = segment_key(oid)
            if key != current_key:
                close_segment()
                current_key = key
                writer = ChainWriter(
                    self.buffer, allocate=self._allocate_page
                )
            class_name = snap.class_of(oid)
            writer.append(
                encode_object_record(
                    oid, class_name, snap.raw_value(oid)
                )
            )
            extent_lists.setdefault(class_name, []).append(oid)
            count += 1
        close_segment()

        dir_head, dir_pids = 0, []
        if extent_lists:
            dir_writer = ChainWriter(
                self.buffer, allocate=self._allocate_page
            )
            for class_name in sorted(extent_lists):
                oids = extent_lists[class_name]
                for start in range(0, len(oids), SNAPSHOT_CHUNK):
                    dir_writer.append(
                        encode_value(
                            {
                                "kind": "extent",
                                "class": class_name,
                                "oids": oids[start:start + SNAPSHOT_CHUNK],
                            }
                        )
                    )
            dir_head, dir_pages = dir_writer.finish()
            dir_pids = dir_writer.pids
            pages += dir_pages

        manifest_head, manifest_pids, manifest_pages = self._write_manifest(
            snap, segments, dir_head, deltas=[]
        )
        pages += manifest_pages
        return {
            "manifest_head": manifest_head,
            "manifest_pids": manifest_pids,
            "segments": segments,
            "dir_head": dir_head,
            "dir_pids": dir_pids,
            "delta": None,
            "generation": Generation(
                self._checkpoint_id + 1,
                {key: seg["head"] for key, seg in segments.items()},
            ),
            "pages": pages,
            "retired": [
                {"pids": old_plain, "gen": None},
                {
                    "pids": old_segment_pids,
                    "gen": weakref.ref(old_generation),
                },
            ],
        }

    def _write_incremental(self, snap, dirty: Set[Oid]) -> dict:
        """Write one delta chain for the dirty set plus a manifest
        linking every unchanged chain by reference. Retires only the
        old manifest."""
        old_manifest = self._chain_pids(
            self._manifest_head, self._manifest_pids
        )
        pages = 0
        delta: Optional[dict] = None
        if dirty:
            writer = ChainWriter(self.buffer, allocate=self._allocate_page)
            count = 0
            for oid in sorted(dirty):
                if snap.contains_oid(oid):
                    writer.append(
                        encode_object_record(
                            oid, snap.class_of(oid), snap.raw_value(oid)
                        )
                    )
                else:
                    writer.append(encode_tombstone_record(oid))
                count += 1
            head, delta_pages = writer.finish()
            delta = {"head": head, "count": count, "pids": writer.pids}
            pages += delta_pages
        deltas = self._deltas + ([delta] if delta is not None else [])
        manifest_head, manifest_pids, manifest_pages = self._write_manifest(
            snap, self._segments, self._dir_head, deltas
        )
        pages += manifest_pages
        return {
            "manifest_head": manifest_head,
            "manifest_pids": manifest_pids,
            "delta": delta,
            "pages": pages,
            "retired": [{"pids": old_manifest, "gen": None}],
        }

    def _write_manifest(
        self, snap, segments, dir_head: int, deltas: List[dict]
    ) -> Tuple[int, List[int], int]:
        writer = ChainWriter(self.buffer, allocate=self._allocate_page)
        # snapshot_records' first two records are exactly the
        # database-name and schema records the manifest carries.
        for record in islice(snapshot_records(snap), 2):
            writer.append(record)
        for (space, block), seg in sorted(segments.items()):
            writer.append(
                encode_value(
                    {
                        "kind": "segment",
                        "space": space,
                        "block": block,
                        "head": seg["head"],
                        "count": seg["count"],
                    }
                )
            )
        writer.append(encode_value({"kind": "dir", "head": dir_head}))
        for delta in deltas:
            writer.append(
                encode_value(
                    {
                        "kind": "delta",
                        "head": delta["head"],
                        "count": delta["count"],
                    }
                )
            )
        head, pages = writer.finish()
        return head, writer.pids, pages

    def _promote_retired(self, current_id: int) -> List[int]:
        """Move recyclable retired batches to the free list.

        A batch retired while writing checkpoint R recycles once
        ``current_id >= R + gc_horizon - 1`` — i.e. it has survived
        ``gc_horizon`` metas — and, for segment batches, once its
        generation object is dead (no table can fault from it)."""
        kept: List[dict] = []
        freed: List[int] = []
        for batch in self._retired:
            gen_ref = batch.get("gen")
            gen_alive = gen_ref is not None and gen_ref() is not None
            if (
                not gen_alive
                and current_id >= batch["ckpt"] + self._gc_horizon - 1
            ):
                freed.extend(batch["pids"])
            else:
                kept.append(batch)
        self._retired = kept
        return freed

    def _write_meta(self, checkpoint_id: int, root: int,
                    free: List[int]) -> None:
        """Write the meta record, shedding free-list entries and then
        retired batches if they overflow the page (leaked pages, never
        corruption). The in-memory lists stay complete — shedding only
        affects what a restart can recycle."""
        keep_free = list(free)
        keep_retired = list(self._retired)
        while True:
            meta = {
                "format": FORMAT_VERSION,
                "name": self.db.name,
                "page_size": self.disk.page_size,
                "checkpoint_id": checkpoint_id,
                "root": root,
                "free": keep_free,
                "retired": [
                    [batch["ckpt"], batch["pids"]]
                    for batch in keep_retired
                ],
            }
            try:
                write_meta(self.disk, meta)
                return
            except StorageError:
                if keep_free:
                    keep_free = keep_free[: len(keep_free) // 2]
                elif keep_retired:
                    keep_retired = keep_retired[1:]
                else:
                    raise

    # ------------------------------------------------------------------

    def storage_stats(self) -> Dict[str, Dict[str, object]]:
        """Counters of every storage layer, for the stats surfaces."""
        table = self._live_table()
        retired_pages = sum(len(b["pids"]) for b in self._retired)
        return {
            "buffer": self.buffer.snapshot(),
            "disk": {
                "page_reads": self.disk.page_reads,
                "page_writes": self.disk.page_writes,
                "pages_allocated": self.disk.pages_allocated,
                "file_pages": self.disk.num_pages,
                "free_pages": len(self._free),
                "retired_pages": retired_pages,
            },
            "checkpoint": {
                "checkpoints_taken": self.checkpoints_taken,
                "full_checkpoints": self.full_checkpoints,
                "incremental_checkpoints": self.incremental_checkpoints,
                "checkpoint_id": self._checkpoint_id,
                "last_checkpoint_pages": self.last_checkpoint_pages,
                "last_checkpoint_bytes": self.last_checkpoint_bytes,
                "last_checkpoint_kind": self.last_checkpoint_kind,
                "checkpoint_pages_total": self.checkpoint_pages_total,
                "snapshot_pages": self.last_checkpoint_pages,
                "delta_chains": len(self._deltas),
                "delta_records": self._delta_records,
                "replayed_on_open": self.replayed_on_open,
                "journal_tail_batches": self.journal_tail_batches(),
            },
            "table": {
                "directory_objects": len(self.db._objects),
                "resident_objects": (
                    table.resident_count() if table is not None else
                    len(self.db._objects)
                ),
                "protected_objects": (
                    table.protected_count() if table is not None else 0
                ),
                "faults": self._table_stats.faults,
                "faulted_objects": self._table_stats.fault_objects,
                "evicted_objects": self._table_stats.evictions,
                "resident_limit": self._resident_limit,
            },
        }

    def close(self) -> None:
        self.buffer.flush_all()
        self.disk.close()
        self.journal_store.close()

    def __enter__(self) -> "PagedDatabase":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def open_paged(path: str, name: str = "db", setup=None, **kwargs):
    """Open (or initialize) a checkpointed paged database.

    Returns the :class:`PagedDatabase`; its ``db`` and ``transactions``
    attributes mirror :func:`repro.storage.persistence.open_persistent`
    's return values.
    """
    return PagedDatabase(path, name, setup, **kwargs)
