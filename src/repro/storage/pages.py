"""Fixed-size pages over a single file: the bottom of the storage
engine.

A page file is an array of ``page_size`` slots addressed by page id.
:class:`DiskManager` is the only object that touches the file; it
reads, writes and allocates whole pages and keeps I/O counters. Layout:

- **pages 0 and 1** are *meta slots*: two alternating copies of the
  database's metadata record (checkpoint id, snapshot root page, free
  list). A checkpoint writes the slot its predecessor did **not** use,
  so a crash mid-write leaves the previous meta intact; on open the
  valid slot with the highest checkpoint id wins (see
  :func:`read_meta` / :func:`write_meta`);
- **data pages** hold record chains (below).

A *record chain* is a singly linked list of pages carrying a sequence
of length-prefixed records — the on-page format of a database
snapshot. Chains are written once (at checkpoint time) and read
sequentially (at restart), always through a
:class:`~repro.storage.buffer.BufferManager`, so a chain larger than
the buffer pool streams through a bounded number of frames instead of
living wholly in memory.

Data page layout: ``next_pid (8 bytes BE) + used (4 bytes BE) +
payload``. Records are ``varint length + bytes`` and may span pages
(the chain is a byte stream; page boundaries are invisible to the
record framing).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from ..errors import StorageError
from .serializer import decode_value, encode_value

DEFAULT_PAGE_SIZE = 4096
META_SLOTS = (0, 1)
FIRST_DATA_PID = 2

_MAGIC = b"RPPG"
_META_HEADER = struct.Struct(">4sII")  # magic, crc32, payload length
_PAGE_HEADER = struct.Struct(">QI")  # next pid, used bytes


class DiskManager:
    """Page-granular I/O over one file.

    Pages are allocated by extending the file; freeing is the caller's
    business (the meta record carries a free list). All methods are
    whole-page: partial writes never happen above the OS layer.
    """

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 256:
            raise StorageError(f"page size too small: {page_size}")
        self._path = path
        self._page_size = page_size
        self._file = open(path, "r+b" if os.path.exists(path) else "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            # A crash mid-extension can leave a ragged tail; pad it to
            # a page boundary so page addressing stays exact.
            self._file.write(b"\x00" * (page_size - size % page_size))
            size = self._file.tell()
        self._num_pages = size // page_size
        self.page_reads = 0
        self.page_writes = 0
        self.pages_allocated = 0

    @property
    def path(self) -> str:
        return self._path

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def read_page(self, pid: int) -> bytes:
        if not 0 <= pid < self._num_pages:
            raise StorageError(f"page {pid} out of range")
        self._file.seek(pid * self._page_size)
        data = self._file.read(self._page_size)
        if len(data) < self._page_size:
            data = data + b"\x00" * (self._page_size - len(data))
        self.page_reads += 1
        return data

    def write_page(self, pid: int, data: bytes) -> None:
        if len(data) > self._page_size:
            raise StorageError(
                f"page payload of {len(data)} bytes exceeds page size"
            )
        if not 0 <= pid < self._num_pages:
            raise StorageError(f"page {pid} out of range")
        if len(data) < self._page_size:
            data = bytes(data) + b"\x00" * (self._page_size - len(data))
        self._file.seek(pid * self._page_size)
        self._file.write(data)
        self.page_writes += 1

    def allocate(self) -> int:
        """Extend the file by one zeroed page; returns its pid."""
        pid = self._num_pages
        self._file.seek(pid * self._page_size)
        self._file.write(b"\x00" * self._page_size)
        self._num_pages += 1
        self.pages_allocated += 1
        return pid

    def ensure_pages(self, count: int) -> None:
        """Grow the file to at least ``count`` pages (used to reserve
        the meta slots on a fresh file)."""
        while self._num_pages < count:
            self.allocate()

    def sync(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# Meta pages


def write_meta(disk: DiskManager, meta: dict) -> None:
    """Write ``meta`` to the slot its ``checkpoint_id`` selects.

    Slot choice alternates with the checkpoint id, so this write never
    overwrites the newest *valid* meta: a crash mid-write is detected
    by the crc and falls back to the other slot.
    """
    disk.ensure_pages(FIRST_DATA_PID)
    payload = encode_value(meta)
    if _META_HEADER.size + len(payload) > disk.page_size:
        raise StorageError("meta record exceeds one page")
    slot = META_SLOTS[int(meta.get("checkpoint_id", 0)) % 2]
    framed = _META_HEADER.pack(_MAGIC, zlib.crc32(payload), len(payload))
    disk.write_page(slot, framed + payload)
    disk.sync()


def read_meta(disk: DiskManager) -> Optional[dict]:
    """The valid meta record with the highest checkpoint id, or
    ``None`` on a fresh (or unrecognizable) file."""
    best: Optional[dict] = None
    for slot in META_SLOTS:
        if slot >= disk.num_pages:
            continue
        page = disk.read_page(slot)
        magic, crc, length = _META_HEADER.unpack_from(page)
        if magic != _MAGIC or _META_HEADER.size + length > len(page):
            continue
        payload = page[_META_HEADER.size:_META_HEADER.size + length]
        if zlib.crc32(payload) != crc:
            continue
        try:
            meta = decode_value(payload)
        except Exception:
            continue
        if not isinstance(meta, dict):
            continue
        if best is None or meta.get("checkpoint_id", 0) > best.get(
            "checkpoint_id", 0
        ):
            best = meta
    return best


# ----------------------------------------------------------------------
# Record chains


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class ChainWriter:
    """Streams length-prefixed records into a fresh page chain.

    Pages come from the buffer manager (``allocate_page``), are filled
    sequentially and unpinned dirty as soon as the stream moves past
    them — so a snapshot bigger than the pool spills to disk behind
    the writer instead of accumulating in memory. ``finish()`` seals
    the tail page and returns ``(head_pid, page_count)``.
    """

    def __init__(self, buffer, allocate=None) -> None:
        self._buffer = buffer
        self._allocate = allocate or buffer.allocate_page
        self._head: Optional[int] = None
        self._pid: Optional[int] = None
        self._frame = None
        self._offset = 0
        self._pages = 0
        # Every pid this writer filled, in chain order: the page-level
        # accounting incremental checkpoints need to retire a chain
        # later without re-walking it from disk.
        self.pids: List[int] = []
        payload = buffer.disk.page_size - _PAGE_HEADER.size
        if payload <= 0:
            raise StorageError("page size leaves no payload room")
        self._payload = payload

    @property
    def pages_written(self) -> int:
        return self._pages

    def _open_page(self) -> None:
        pid = self._allocate()
        self.pids.append(pid)
        frame = self._buffer.pin(pid)
        _PAGE_HEADER.pack_into(frame.data, 0, 0, 0)
        if self._frame is not None:
            # Link the previous page forward and release it.
            _PAGE_HEADER.pack_into(
                self._frame.data, 0, pid, self._offset
            )
            self._buffer.unpin(self._pid, dirty=True)
        else:
            self._head = pid
        self._pid = pid
        self._frame = frame
        self._offset = 0
        self._pages += 1

    def _write_bytes(self, data: bytes) -> None:
        view = memoryview(data)
        while view:
            if self._frame is None or self._offset >= self._payload:
                self._open_page()
            room = self._payload - self._offset
            piece = view[:room]
            start = _PAGE_HEADER.size + self._offset
            self._frame.data[start:start + len(piece)] = piece
            self._offset += len(piece)
            view = view[len(piece):]

    def append(self, record: bytes) -> None:
        prefix = bytearray()
        _write_varint(prefix, len(record))
        self._write_bytes(bytes(prefix))
        self._write_bytes(record)

    def finish(self) -> Tuple[int, int]:
        if self._head is None:
            self._open_page()
        _PAGE_HEADER.pack_into(self._frame.data, 0, 0, self._offset)
        self._buffer.unpin(self._pid, dirty=True)
        head, self._frame, self._pid = self._head, None, None
        return head, self._pages


def read_chain(buffer, head_pid: int) -> Iterator[bytes]:
    """Yield the records of a chain, one page pinned at a time."""
    stream = _chain_bytes(buffer, head_pid)
    carry = b""
    while True:
        length, carry, exhausted = _read_varint_stream(stream, carry)
        if exhausted:
            return
        while len(carry) < length:
            piece = next(stream, None)
            if piece is None:
                raise StorageError("record chain ends mid-record")
            carry += piece
        yield carry[:length]
        carry = carry[length:]


def chain_pages(buffer, head_pid: int) -> List[int]:
    """The pids of a chain, in order (for free-list accounting)."""
    pids: List[int] = []
    pid = head_pid
    while pid:
        pids.append(pid)
        frame = buffer.pin(pid)
        try:
            next_pid, _used = _PAGE_HEADER.unpack_from(frame.data)
        finally:
            buffer.unpin(pid)
        if next_pid in pids and next_pid:
            raise StorageError("record chain contains a cycle")
        pid = next_pid
    return pids


def _chain_bytes(buffer, head_pid: int) -> Iterator[bytes]:
    pid = head_pid
    seen = 0
    while pid:
        frame = buffer.pin(pid)
        try:
            next_pid, used = _PAGE_HEADER.unpack_from(frame.data)
            payload = bytes(
                frame.data[_PAGE_HEADER.size:_PAGE_HEADER.size + used]
            )
        finally:
            buffer.unpin(pid)
        yield payload
        pid = next_pid
        seen += 1
        if seen > buffer.disk.num_pages:
            raise StorageError("record chain contains a cycle")


def _read_varint_stream(stream, carry: bytes):
    """Decode one varint from ``carry`` + ``stream``; returns
    ``(value, remaining_carry, exhausted)``."""
    result = 0
    shift = 0
    pos = 0
    while True:
        while pos >= len(carry):
            piece = next(stream, None)
            if piece is None:
                if pos == 0 and shift == 0:
                    return 0, b"", True  # clean end of chain
                raise StorageError("record chain ends mid-length")
            carry = carry[pos:] + piece
            pos = 0
            if not carry:
                continue
        byte = carry[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, carry[pos:], False
        shift += 7
        if shift > 70:
            raise StorageError("record length varint too long")
