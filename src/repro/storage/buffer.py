"""The buffer pool: a bounded page cache between the engine and disk.

:class:`BufferManager` keeps up to ``capacity`` page frames in memory.
Callers *pin* a page to work on it (fetching it from disk on a miss)
and *unpin* it when done, flagging whether they dirtied it. Unpinned
frames are eviction candidates in LRU order; evicting a dirty frame
writes it back first. Pinned frames are never evicted — a caller
holding a pin can rely on the frame's buffer staying put.

This is what lets checkpoints and restarts stream snapshots bigger
than memory: a record chain of N pages passes through a pool of K << N
frames, and the counters (:class:`BufferStats`) make the traffic
visible in ``.stats``, the server ``stats`` op and the Prometheus
export.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Optional

from ..errors import StorageError
from ..obs import trace as _trace
from .pages import DiskManager

DEFAULT_POOL_PAGES = 64


class Frame:
    """One in-memory page: its buffer plus pin/dirty bookkeeping."""

    __slots__ = ("pid", "data", "pin_count", "dirty")

    def __init__(self, pid: int, data: bytearray):
        self.pid = pid
        self.data = data
        self.pin_count = 0
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Frame(pid={self.pid}, pins={self.pin_count},"
            f" dirty={self.dirty})"
        )


class BufferStats:
    """Thread-safe counters for one buffer pool."""

    _FIELDS = ("hits", "misses", "evictions", "dirty_flushes")

    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_flushes = 0

    def record(self, field: str, count: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + count)

    def reset(self) -> None:
        with self._lock:
            for field in self._FIELDS:
                setattr(self, field, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {field: getattr(self, field) for field in self._FIELDS}


class BufferManager:
    """A pinned-page table with LRU eviction of unpinned frames."""

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_POOL_PAGES):
        if capacity < 2:
            raise StorageError(
                f"buffer pool needs at least 2 frames, got {capacity}"
            )
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferStats()
        self._lock = threading.RLock()
        # pid -> Frame, in LRU order (least recently used first).
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()

    # ------------------------------------------------------------------

    def pin(self, pid: int) -> Frame:
        """Fetch the page into the pool (if absent) and pin it."""
        with self._lock:
            frame = self._frames.get(pid)
            if frame is not None:
                self.stats.record("hits")
            else:
                self.stats.record("misses")
                self._make_room()
                frame = Frame(pid, bytearray(self.disk.read_page(pid)))
                self._frames[pid] = frame
            frame.pin_count += 1
            self._frames.move_to_end(pid)
            return frame

    def unpin(self, pid: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frames.get(pid)
            if frame is None or frame.pin_count <= 0:
                raise StorageError(f"page {pid} is not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True

    def allocate_page(self) -> int:
        """Allocate a fresh page and seed a zeroed frame for it (no
        disk read — the page has no meaningful contents yet)."""
        with self._lock:
            pid = self.disk.allocate()
            self.seed_page(pid)
            return pid

    def seed_page(self, pid: int) -> None:
        """Install a zeroed frame for ``pid`` without reading disk —
        for recycled free-list pages whose old bytes are garbage. The
        frame is born dirty: if it is evicted before being filled, the
        zeros (not the stale on-disk bytes) must win the next read."""
        with self._lock:
            frame = self._frames.get(pid)
            if frame is None:
                self._make_room()
                frame = Frame(pid, bytearray(self.disk.page_size))
                self._frames[pid] = frame
            else:
                if frame.pin_count:
                    raise StorageError(
                        f"page {pid} is pinned; cannot reseed"
                    )
                frame.data[:] = b"\x00" * self.disk.page_size
            frame.dirty = True

    def page(self, pid: int):
        """``with buffer.page(pid) as frame`` — pin for the block.

        Mark the frame dirty via ``frame.dirty = True`` before the
        block exits (the exit unpin preserves the flag)."""
        return _PinGuard(self, pid)

    # ------------------------------------------------------------------

    def _make_room(self) -> None:
        """Evict LRU unpinned frames until a new frame fits."""
        if len(self._frames) < self.capacity:
            return
        started = time.perf_counter() if _trace.ENABLED else 0.0
        evicted = 0
        while len(self._frames) >= self.capacity:
            victim = None
            for frame in self._frames.values():
                if frame.pin_count == 0:
                    victim = frame
                    break
            if victim is None:
                raise StorageError(
                    "buffer pool exhausted: all"
                    f" {len(self._frames)} frames are pinned"
                )
            if victim.dirty:
                self.disk.write_page(victim.pid, bytes(victim.data))
                self.stats.record("dirty_flushes")
            del self._frames[victim.pid]
            self.stats.record("evictions")
            evicted += 1
        if _trace.ENABLED and evicted:
            _trace.add_span(
                "storage.buffer_evict",
                time.perf_counter() - started,
                frames=evicted,
            )

    def flush_page(self, pid: int) -> bool:
        """Write one dirty frame back; returns whether it wrote."""
        with self._lock:
            frame = self._frames.get(pid)
            if frame is None or not frame.dirty:
                return False
            self.disk.write_page(pid, bytes(frame.data))
            frame.dirty = False
            self.stats.record("dirty_flushes")
            return True

    def flush_all(self) -> int:
        """Write every dirty frame back; returns the count written."""
        written = 0
        with self._lock:
            for frame in self._frames.values():
                if frame.dirty:
                    self.disk.write_page(frame.pid, bytes(frame.data))
                    frame.dirty = False
                    self.stats.record("dirty_flushes")
                    written += 1
        return written

    def drop(self, pid: int) -> None:
        """Forget a frame without writing it (freed pages)."""
        with self._lock:
            frame = self._frames.get(pid)
            if frame is None:
                return
            if frame.pin_count:
                raise StorageError(f"page {pid} is pinned; cannot drop")
            del self._frames[pid]

    def pool_size(self) -> int:
        with self._lock:
            return len(self._frames)

    def pinned_count(self) -> int:
        with self._lock:
            return sum(1 for f in self._frames.values() if f.pin_count)

    def snapshot(self) -> Dict[str, int]:
        """Counters plus pool occupancy, for the stats surfaces."""
        snap = self.stats.snapshot()
        accesses = snap["hits"] + snap["misses"]
        # A ratio, not a counter: the one derived value every stats
        # surface wants (CLI, server stats op, Prometheus gauge).
        snap["hit_ratio"] = (
            snap["hits"] / accesses if accesses else 0.0
        )
        with self._lock:
            snap["capacity"] = self.capacity
            snap["pages_in_pool"] = len(self._frames)
            snap["pinned"] = sum(
                1 for f in self._frames.values() if f.pin_count
            )
        return snap


class _PinGuard:
    __slots__ = ("_buffer", "_pid", "_frame")

    def __init__(self, buffer: BufferManager, pid: int):
        self._buffer = buffer
        self._pid = pid
        self._frame: Optional[Frame] = None

    def __enter__(self) -> Frame:
        self._frame = self._buffer.pin(self._pid)
        return self._frame

    def __exit__(self, *exc) -> bool:
        self._buffer.unpin(self._pid)
        return False
