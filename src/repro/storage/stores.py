"""Record stores: append-only logs of serialized records.

A store is the durability primitive under persistent databases: an
ordered sequence of byte records with atomic append. Two
implementations share the interface:

- :class:`MemoryStore` — in-process, for tests and benchmarks;
- :class:`FileStore` — a single append-only file. Each record is
  framed as ``length (4 bytes BE) + crc32 (4 bytes BE) + payload``.
  Opening a file store *recovers the tail*: the file is scanned for
  its longest valid frame prefix and truncated there, so a
  half-written or corrupt tail (crash during append) is physically
  removed before any new append — later records always land on a
  frame boundary and are readable on the next open. ``close()``
  fsyncs before closing, so a cleanly closed store is durable.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterable, Iterator, List

from ..errors import StorageError

_HEADER = struct.Struct(">II")


class RecordStore:
    """Interface of an append-only record store."""

    def append(self, record: bytes) -> None:
        raise NotImplementedError

    def records(self) -> Iterator[bytes]:
        raise NotImplementedError

    def sync(self) -> None:
        """Flush to durable media (no-op for memory stores)."""

    def close(self) -> None:
        """Release resources."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class MemoryStore(RecordStore):
    """An in-memory record store."""

    def __init__(self):
        self._records: List[bytes] = []

    def append(self, record: bytes) -> None:
        self._records.append(bytes(record))

    def records(self) -> Iterator[bytes]:
        return iter(list(self._records))

    def truncate(self) -> None:
        """Drop every record (journal reset after a checkpoint)."""
        self._records = []

    def replace_records(self, records: Iterable[bytes]) -> None:
        """Atomically replace the contents with ``records``."""
        self._records = [bytes(r) for r in records]

    def __len__(self) -> int:
        return len(self._records)


class FileStore(RecordStore):
    """An append-only file of checksummed records."""

    def __init__(self, path: str):
        self._path = path
        self._file = open(path, "ab")
        self._recover_tail()

    @property
    def path(self) -> str:
        return self._path

    def _recover_tail(self) -> None:
        """Truncate the file to its longest valid frame prefix.

        Replay already stopped at the first torn frame; without the
        truncation, the garbage tail stayed on disk and subsequent
        appends landed *after* it — unreachable on the next open. The
        scan runs once per open, before any append is accepted.
        """
        self._file.flush()
        size = os.path.getsize(self._path)
        valid = valid_prefix(self._path)
        if valid < size:
            self._file.close()
            with open(self._path, "r+b") as fixer:
                fixer.truncate(valid)
                fixer.flush()
                os.fsync(fixer.fileno())
            self._file = open(self._path, "ab")

    def append(self, record: bytes) -> None:
        if self._file.closed:
            raise StorageError("store is closed")
        frame = _HEADER.pack(len(record), zlib.crc32(record)) + record
        self._file.write(frame)

    def sync(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            # fsync before closing: a committed transaction must not
            # evaporate because the process exited right after close.
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()

    def truncate(self) -> None:
        """Drop every record (journal reset after a checkpoint)."""
        if self._file.closed:
            raise StorageError("store is closed")
        self._file.close()
        with open(self._path, "r+b") as fixer:
            fixer.truncate(0)
            fixer.flush()
            os.fsync(fixer.fileno())
        self._file = open(self._path, "ab")

    def replace_records(self, records: Iterable[bytes]) -> None:
        """Atomically replace the file's contents with ``records``.

        Used by checkpointing to cut the journal down to its redo
        tail: the replacement is written to a sibling temp file,
        fsynced, and swapped in with ``os.replace`` so a crash leaves
        either the old journal or the new one — never a mix.
        """
        if self._file.closed:
            raise StorageError("store is closed")
        temp_path = self._path + ".swap"
        with open(temp_path, "wb") as temp:
            for record in records:
                temp.write(
                    _HEADER.pack(len(record), zlib.crc32(record)) + record
                )
            temp.flush()
            os.fsync(temp.fileno())
        self._file.close()
        os.replace(temp_path, self._path)
        self._file = open(self._path, "ab")

    def records(self) -> Iterator[bytes]:
        self._file.flush()
        with open(self._path, "rb") as reader:
            while True:
                header = reader.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return  # clean end or torn header: stop
                length, crc = _HEADER.unpack(header)
                payload = reader.read(length)
                if len(payload) < length:
                    return  # torn record: ignore the tail
                if zlib.crc32(payload) != crc:
                    return  # corrupt record: stop replay here
                yield payload

    def __len__(self) -> int:
        return sum(1 for _ in self.records())


def valid_prefix(path: str) -> int:
    """The byte length of the longest valid frame prefix of ``path``."""
    valid = 0
    with open(path, "rb") as reader:
        while True:
            header = reader.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return valid
            length, crc = _HEADER.unpack(header)
            payload = reader.read(length)
            if len(payload) < length:
                return valid
            if zlib.crc32(payload) != crc:
                return valid
            valid += _HEADER.size + length
