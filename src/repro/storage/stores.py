"""Record stores: append-only logs of serialized records.

A store is the durability primitive under persistent databases: an
ordered sequence of byte records with atomic append. Two
implementations share the interface:

- :class:`MemoryStore` — in-process, for tests and benchmarks;
- :class:`FileStore` — a single append-only file. Each record is
  framed as ``length (4 bytes BE) + crc32 (4 bytes BE) + payload``;
  on open, replay stops at the first torn or corrupt frame, which
  makes a half-written tail (crash during append) harmless.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, List

from ..errors import StorageError

_HEADER = struct.Struct(">II")


class RecordStore:
    """Interface of an append-only record store."""

    def append(self, record: bytes) -> None:
        raise NotImplementedError

    def records(self) -> Iterator[bytes]:
        raise NotImplementedError

    def sync(self) -> None:
        """Flush to durable media (no-op for memory stores)."""

    def close(self) -> None:
        """Release resources."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class MemoryStore(RecordStore):
    """An in-memory record store."""

    def __init__(self):
        self._records: List[bytes] = []

    def append(self, record: bytes) -> None:
        self._records.append(bytes(record))

    def records(self) -> Iterator[bytes]:
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)


class FileStore(RecordStore):
    """An append-only file of checksummed records."""

    def __init__(self, path: str):
        self._path = path
        self._file = open(path, "ab")

    @property
    def path(self) -> str:
        return self._path

    def append(self, record: bytes) -> None:
        if self._file.closed:
            raise StorageError("store is closed")
        frame = _HEADER.pack(len(record), zlib.crc32(record)) + record
        self._file.write(frame)

    def sync(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def records(self) -> Iterator[bytes]:
        self._file.flush()
        with open(self._path, "rb") as reader:
            while True:
                header = reader.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return  # clean end or torn header: stop
                length, crc = _HEADER.unpack(header)
                payload = reader.read(length)
                if len(payload) < length:
                    return  # torn record: ignore the tail
                if zlib.crc32(payload) != crc:
                    return  # corrupt record: stop replay here
                yield payload

    def __len__(self) -> int:
        return sum(1 for _ in self.records())
