"""A compact self-describing binary codec for model values and types.

No pickle: records written by one process are readable by any other,
and malformed bytes raise :class:`SerializationError` rather than
executing anything. The format is tag-prefixed:

==== ======================= =====================================
tag  value                   payload
==== ======================= =====================================
``z`` None                   —
``t``/``f`` booleans         —
``i`` int                    zigzag varint
``d`` float                  8-byte IEEE-754 big-endian
``s`` str                    varint length + UTF-8
``o`` Oid                    str space + varint number
``u`` tuple value (dict)     varint count + (str key, value)*
``e`` set                    varint count + value*
``l`` list                   varint count + value*
``b`` bytes                  varint length + raw
==== ======================= =====================================

Types serialize through :func:`type_to_data` / :func:`type_from_data`
as ordinary values, so one codec covers both.
"""

from __future__ import annotations

import struct
from typing import Tuple

from ..engine.oid import Oid
from ..engine.types import (
    ANY,
    NOTHING,
    AnyType,
    AtomType,
    ClassType,
    ListType,
    NothingType,
    SetType,
    TupleType,
    Type,
)
from ..engine.values import canonicalize
from ..errors import SerializationError


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _write_str(out: bytearray, text: str) -> None:
    encoded = text.encode("utf-8")
    _write_varint(out, len(encoded))
    out.extend(encoded)


def _read_str(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _read_varint(data, pos)
    end = pos + length
    if end > len(data):
        raise SerializationError("truncated string")
    return data[pos:end].decode("utf-8"), end


def encode_value(value) -> bytes:
    """Encode a model value to bytes."""
    out = bytearray()
    _encode(out, value)
    return bytes(out)


def _encode(out: bytearray, value) -> None:
    if value is None:
        out.append(ord("z"))
    elif value is True:
        out.append(ord("t"))
    elif value is False:
        out.append(ord("f"))
    elif isinstance(value, int):
        out.append(ord("i"))
        _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(ord("d"))
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        out.append(ord("s"))
        _write_str(out, value)
    elif isinstance(value, Oid):
        out.append(ord("o"))
        _write_str(out, value.space)
        _write_varint(out, value.number)
    elif isinstance(value, dict):
        out.append(ord("u"))
        _write_varint(out, len(value))
        for key in sorted(value):
            if not isinstance(key, str):
                raise SerializationError(
                    f"tuple keys must be strings, got {key!r}"
                )
            _write_str(out, key)
            _encode(out, value[key])
    elif isinstance(value, (set, frozenset)):
        out.append(ord("e"))
        _write_varint(out, len(value))
        # Deterministic element order via canonical form.
        for item in sorted(value, key=lambda v: canonicalize(v)):
            _encode(out, item)
    elif isinstance(value, (list, tuple)):
        out.append(ord("l"))
        _write_varint(out, len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, (bytes, bytearray)):
        out.append(ord("b"))
        _write_varint(out, len(value))
        out.extend(value)
    else:
        raise SerializationError(
            f"cannot serialize {type(value).__name__}: {value!r}"
        )


def decode_value(data: bytes):
    """Decode bytes produced by :func:`encode_value`."""
    value, pos = _decode(data, 0)
    if pos != len(data):
        raise SerializationError(
            f"{len(data) - pos} trailing bytes after value"
        )
    return value


def _decode(data: bytes, pos: int):
    if pos >= len(data):
        raise SerializationError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == ord("z"):
        return None, pos
    if tag == ord("t"):
        return True, pos
    if tag == ord("f"):
        return False, pos
    if tag == ord("i"):
        raw, pos = _read_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == ord("d"):
        end = pos + 8
        if end > len(data):
            raise SerializationError("truncated float")
        return struct.unpack(">d", data[pos:end])[0], end
    if tag == ord("s"):
        return _read_str(data, pos)
    if tag == ord("o"):
        space, pos = _read_str(data, pos)
        number, pos = _read_varint(data, pos)
        return Oid(space, number), pos
    if tag == ord("u"):
        count, pos = _read_varint(data, pos)
        result = {}
        for _ in range(count):
            key, pos = _read_str(data, pos)
            result[key], pos = _decode(data, pos)
        return result, pos
    if tag == ord("e"):
        count, pos = _read_varint(data, pos)
        items = set()
        for _ in range(count):
            item, pos = _decode(data, pos)
            items.add(item)
        return items, pos
    if tag == ord("l"):
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(data, pos)
            items.append(item)
        return items, pos
    if tag == ord("b"):
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise SerializationError("truncated bytes")
        return bytes(data[pos:end]), end
    raise SerializationError(f"unknown tag byte: {tag!r}")


# ----------------------------------------------------------------------
# Object records (chain-segment payloads)
# ----------------------------------------------------------------------


def encode_object_record(oid: Oid, class_name: str, value: dict) -> bytes:
    """One stored object as a chain-segment record.

    The record is an ordinary codec value, so segments written by one
    process are readable by any other; :func:`decode_object_record` is
    the exact inverse regardless of how the chain split the record
    across pages (records larger than a page span pages transparently
    — see :mod:`repro.storage.pages`).
    """
    return encode_value(
        {"kind": "obj", "oid": oid, "class": class_name, "value": value}
    )


def encode_tombstone_record(oid: Oid) -> bytes:
    """A delta-chain deletion marker for ``oid``."""
    return encode_value({"kind": "del", "oid": oid})


def decode_object_record(raw: bytes):
    """Decode a segment/delta record.

    Returns ``(oid, class_name, value)`` for an object record or
    ``(oid, None, None)`` for a tombstone.
    """
    record = decode_value(raw)
    if not isinstance(record, dict):
        raise SerializationError(f"malformed object record: {record!r}")
    kind = record.get("kind")
    if kind == "obj":
        return record["oid"], record["class"], record["value"]
    if kind == "del":
        return record["oid"], None, None
    raise SerializationError(f"unknown object record kind: {kind!r}")


# ----------------------------------------------------------------------
# Types as data
# ----------------------------------------------------------------------


def type_to_data(t: Type):
    """Render a type as a plain value the codec can carry."""
    if isinstance(t, AnyType):
        return {"!": "any"}
    if isinstance(t, NothingType):
        return {"!": "nothing"}
    if isinstance(t, AtomType):
        return {"!": "atom", "name": t.name}
    if isinstance(t, ClassType):
        return {"!": "class", "name": t.class_name}
    if isinstance(t, SetType):
        return {"!": "set", "element": type_to_data(t.element)}
    if isinstance(t, ListType):
        return {"!": "list", "element": type_to_data(t.element)}
    if isinstance(t, TupleType):
        return {
            "!": "tuple",
            "fields": {
                name: type_to_data(ftype) for name, ftype in t.fields
            },
        }
    raise SerializationError(f"cannot serialize type: {t!r}")


def type_from_data(data) -> Type:
    """Inverse of :func:`type_to_data`."""
    if not isinstance(data, dict) or "!" not in data:
        raise SerializationError(f"not a type description: {data!r}")
    kind = data["!"]
    if kind == "any":
        return ANY
    if kind == "nothing":
        return NOTHING
    if kind == "atom":
        return AtomType(data["name"])
    if kind == "class":
        return ClassType(data["name"])
    if kind == "set":
        return SetType(type_from_data(data["element"]))
    if kind == "list":
        return ListType(type_from_data(data["element"]))
    if kind == "tuple":
        return TupleType(
            {
                name: type_from_data(ftype)
                for name, ftype in data["fields"].items()
            }
        )
    raise SerializationError(f"unknown type kind: {kind!r}")
