"""The TCP server: accept loop, connection threads, lifecycle.

:class:`ViewServer` owns the shared database scopes, the catalog lock
and the metrics. Each accepted connection gets a daemon thread running
:meth:`ViewServer._serve_connection`: read one frame, classify it,
dispatch through the connection's private
:class:`~repro.server.session.ServerSession`, and answer with exactly
one frame. Every failure mode answers with a *structured error frame*
— parse errors, oversized frames, unknown ops, engine errors, lock
timeouts — the connection is only dropped when the transport itself
dies.

Concurrency (``mvcc=True``, the default):

- **reads** (queries, introspection) never touch the catalog lock.
  The request pins an immutable snapshot of every served database
  (:meth:`Database.read_view`) and evaluates against it — concurrent
  commits are invisible for the duration of the request, and any
  number of readers run truly in parallel with writers;
- **data writes** (``create`` / ``update`` / ``delete`` / ``batch``)
  funnel through a :class:`GroupCommitter`: writes arriving within
  ``batch_window`` seconds coalesce into one batch, executed under the
  catalog write lock and installed as **one** database version
  (``begin_batch`` / ``end_batch``), amortizing snapshot invalidation
  and version maintenance across the batch;
- **DDL** (view definitions, imports, hides — anything that rewires
  the catalog) still takes the write lock directly.

With ``mvcc=False`` the server behaves exactly as before: the
PR 2 writer-preference reader-writer lock guards every request (the
baseline the E16 bench measures against).

Robustness limits:

- ``max_frame`` bounds one request's size (oversized payloads are
  drained and refused, the connection survives);
- ``max_connections`` bounds concurrent clients; excess connections
  receive a ``server_busy`` error frame and are closed (backpressure
  instead of an unbounded thread pile-up);
- ``request_timeout`` bounds lock acquisition, so one long writer
  cannot wedge every reader silently;
- :meth:`stop` drains gracefully: the listener closes first, in-flight
  requests finish, then idle connections are torn down.
  :meth:`serve_forever` installs a ``SIGTERM``/``SIGINT`` handler that
  triggers exactly that drain.
"""

from __future__ import annotations

import selectors
import signal
import socket
import threading
import time
from contextlib import ExitStack, contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from ..obs import stats as _stats
from ..obs import trace as _trace
from ..obs.collect import Observability
from .locks import LockTimeoutError, ReadWriteLock
from .metrics import ServerMetrics
from .protocol import (
    ERR_INTERNAL,
    ERR_SERVER_BUSY,
    ERR_SHUTTING_DOWN,
    ERR_TIMEOUT,
    MAX_FRAME,
    ConnectionClosed,
    ProtocolError,
    error_code_for,
    error_frame,
    recv_frame,
    result_frame,
    send_frame,
)
from .session import ServerSession

# How often an idle connection thread re-checks the stop flag.
_POLL_INTERVAL = 0.2

# Ops that mutate base data only (no catalog rewiring): eligible for
# group commit under MVCC. ``txn`` runs a whole scripted transaction
# (begin to commit) inside one leader-thread frame.
_DATA_WRITE_OPS = frozenset({"create", "update", "delete", "batch", "txn"})


class _Batch:
    """One group-commit batch: entry slots plus a completion event."""

    __slots__ = ("entries", "closed", "done")

    def __init__(self):
        # Each entry is [thunk, result, exception]; the leader fills
        # slots 1/2 while followers wait on `done`.
        self.entries: List[list] = []
        self.closed = False
        self.done = threading.Event()


class GroupCommitter:
    """Leader/follower write batching over the catalog write lock.

    The first writer to arrive becomes the batch *leader*: it waits
    ``window`` seconds for companions, closes the batch, takes the
    write lock once, brackets every served database in
    ``begin_batch``/``end_batch`` (one version install for the whole
    batch) and runs each entry's thunk. Followers block on the batch's
    completion event and pick up their slot's result or exception —
    one entry failing never poisons its neighbours.
    """

    def __init__(self, server: "ViewServer", window: float):
        self._server = server
        self._window = window
        self._mutex = threading.Lock()
        self._open: Optional[_Batch] = None

    def submit(self, thunk, timeout: Optional[float]):
        entry = [thunk, None, None]
        with self._mutex:
            batch = self._open
            if batch is not None and not batch.closed:
                batch.entries.append(entry)
                leader = False
            else:
                batch = _Batch()
                batch.entries.append(entry)
                self._open = batch
                leader = True
        if leader:
            self._lead(batch, timeout)
        else:
            budget = (timeout or 0.0) + self._window + 5.0
            waited = time.perf_counter()
            if not batch.done.wait(timeout=budget):
                raise LockTimeoutError("write", budget)
            if _trace.ENABLED:
                _trace.add_span(
                    "group_commit.wait",
                    time.perf_counter() - waited,
                    role="follower",
                )
        if entry[2] is not None:
            raise entry[2]
        return entry[1]

    def _lead(self, batch: _Batch, timeout: Optional[float]) -> None:
        try:
            waited = time.perf_counter()
            if self._window > 0:
                time.sleep(self._window)
            with self._mutex:
                batch.closed = True
                if self._open is batch:
                    self._open = None
            lock = self._server.lock
            acquired = lock.acquire_write(timeout)
            if not acquired:
                # One bounded retry; the databases count it as a
                # commit-path conflict.
                self._server._record_conflict_retry()
                acquired = lock.acquire_write(timeout)
            if not acquired:
                error = LockTimeoutError("write", timeout or 0.0)
                for entry in batch.entries:
                    entry[2] = error
                return
            if _trace.ENABLED:
                # Window sleep + write-lock wait, on the leader's trace.
                _trace.add_span(
                    "group_commit.wait",
                    time.perf_counter() - waited,
                    role="leader",
                    batch=len(batch.entries),
                )
            try:
                self._run(batch)
            finally:
                lock.release_write()
            self._server.metrics.record_group_batch(len(batch.entries))
        finally:
            batch.done.set()

    def _run(self, batch: _Batch) -> None:
        databases = [
            scope
            for scope in self._server.scopes
            if hasattr(scope, "begin_batch")
        ]
        for db in databases:
            db.begin_batch()
        try:
            for entry in batch.entries:
                try:
                    entry[1] = entry[0]()
                except Exception as error:
                    entry[2] = error
        finally:
            for db in reversed(databases):
                db.end_batch()


class ViewServer:
    """Serves a catalog of shared scopes to many clients over TCP."""

    def __init__(
        self,
        scopes: Sequence,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        max_frame: int = MAX_FRAME,
        request_timeout: float = 10.0,
        lock=None,
        mvcc: bool = True,
        batch_window: float = 0.001,
        tracing: bool = True,
        trace_ring: int = 256,
        slow_query_threshold: Optional[float] = None,
        metrics_port: Optional[int] = None,
    ):
        self._scopes = list(scopes)
        self._host = host
        self._port = port
        self._max_connections = max_connections
        self._max_frame = max_frame
        self._request_timeout = request_timeout
        self.lock = lock if lock is not None else ReadWriteLock()
        self.metrics = ServerMetrics()
        self._mvcc = mvcc
        self._committer = GroupCommitter(self, batch_window)
        self._tracing = tracing
        # The collectors exist even with tracing off: the ``traces`` /
        # ``metrics`` ops still answer (with empty rings) and the
        # Prometheus page still exposes the engine counters.
        self.obs = Observability(
            ring_capacity=trace_ring, slow_threshold=slow_query_threshold
        )
        self._metrics_port = metrics_port
        self._metrics_http = None
        self._trace_activated = False
        self._statements_enabled = False
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._started = False

    @property
    def scopes(self) -> List:
        return self._scopes

    def _record_conflict_retry(self) -> None:
        for scope in self._scopes:
            stats = getattr(scope, "mvcc", None)
            if stats is not None:
                stats.record_conflict_retry()

    @contextmanager
    def _pinned_reads(self) -> Iterator[None]:
        """Pin a consistent snapshot of every served database for the
        calling thread (the MVCC lock-free read path)."""
        with ExitStack() as stack:
            for scope in self._scopes:
                read_view = getattr(scope, "read_view", None)
                if read_view is not None:
                    stack.enter_context(read_view())
            yield

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> Tuple[str, int]:
        """Bind, start the accept thread, return ``(host, port)``."""
        if self._started:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        self._listener = listener
        self._started = True
        if self._tracing and not self._trace_activated:
            _trace.activate()
            self._trace_activated = True
        if not self._statements_enabled:
            _stats.enable()
            self._statements_enabled = True
        if self._metrics_port is not None and self._metrics_http is None:
            from ..obs.export import MetricsHTTPServer, render_prometheus

            self._metrics_http = MetricsHTTPServer(
                self._host,
                self._metrics_port,
                lambda: render_prometheus(
                    self._scopes, self.metrics, self.obs.histograms
                ),
            )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful drain: stop accepting, finish in-flight requests,
        close connections."""
        if not self._started or self._stopping.is_set():
            return
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_timeout)
        deadline = time.monotonic() + drain_timeout
        for thread in list(self._threads):
            remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
        # Anything still alive is past the drain budget: cut transport.
        with self._conn_lock:
            leftovers = list(self._connections)
        for conn in leftovers:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in list(self._threads):
            thread.join(timeout=1.0)
        if self._metrics_http is not None:
            self._metrics_http.close()
            self._metrics_http = None
        if self._trace_activated:
            _trace.deactivate()
            self._trace_activated = False
        if self._statements_enabled:
            _stats.disable()
            self._statements_enabled = False

    def serve_forever(self) -> None:
        """Start (if needed) and block until ``SIGTERM``/``SIGINT``."""
        if not self._started:
            self.start()
        stop_requested = threading.Event()

        def _handler(signum, frame):
            stop_requested.set()

        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((signum, signal.signal(signum, _handler)))
            except ValueError:  # not the main thread
                pass
        try:
            while not stop_requested.wait(timeout=0.5):
                pass
        finally:
            for signum, previous in installed:
                signal.signal(signum, previous)
            self.stop()

    def __enter__(self) -> "ViewServer":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Accept loop

    def _accept_loop(self) -> None:
        # selectors (epoll/kqueue underneath) rather than select():
        # select.select rejects any fd >= FD_SETSIZE (1024), which
        # silently capped the server around a thousand connections.
        listener = self._listener
        poller = selectors.DefaultSelector()
        poller.register(listener, selectors.EVENT_READ)
        try:
            while not self._stopping.is_set():
                try:
                    ready = poller.select(_POLL_INTERVAL)
                except (OSError, ValueError):
                    return
                if not ready:
                    continue
                try:
                    conn, _peer = listener.accept()
                except OSError:
                    return
                self._admit(conn)
        finally:
            poller.close()

    def _admit(self, conn: socket.socket) -> None:
        if self._active_connections() >= self._max_connections:
            self.metrics.record_connection("rejected")
            self._refuse(conn)
            return
        self.metrics.record_connection("opened")
        self._threads = [t for t in self._threads if t.is_alive()]
        with self._conn_lock:
            self._connections.append(conn)
        thread = threading.Thread(
            target=self._serve_connection,
            args=(conn,),
            name="repro-conn",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def _active_connections(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    def _refuse(self, conn: socket.socket) -> None:
        try:
            send_frame(
                conn,
                error_frame(
                    None,
                    ERR_SERVER_BUSY,
                    f"connection limit of {self._max_connections} reached",
                ),
            )
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Connection handling

    def _serve_connection(self, conn: socket.socket) -> None:
        session = ServerSession(
            self._scopes, metrics=self.metrics, obs=self.obs
        )
        poller = selectors.DefaultSelector()
        try:
            poller.register(conn, selectors.EVENT_READ)
            while not self._stopping.is_set():
                try:
                    ready = poller.select(_POLL_INTERVAL)
                except (OSError, ValueError):
                    return
                if not ready:
                    continue
                if not self._serve_one(conn, session):
                    return
        except (OSError, ValueError):
            return  # register() on an already-dead socket
        finally:
            poller.close()
            self._close_connection(conn)

    def _serve_one(
        self, conn: socket.socket, session: ServerSession
    ) -> bool:
        """Handle one request; False ends the connection."""
        request_id = None
        read_start = time.perf_counter()
        try:
            request = recv_frame(conn, self._max_frame)
        except ProtocolError as error:
            # Oversized or malformed frame: refuse it, keep the
            # connection (the stream is still framed).
            return self._answer(
                conn, error_frame(None, error_code_for(error), str(error))
            )
        except (ConnectionClosed, OSError):
            return False
        if request is None:  # clean EOF
            return False
        read_elapsed = time.perf_counter() - read_start
        request_id = request.get("id")
        if self._stopping.is_set():
            return self._answer(
                conn,
                error_frame(
                    request_id, ERR_SHUTTING_DOWN, "server is draining"
                ),
            )
        op = str(request.get("op"))
        kind = session.classify(request)
        if not self._tracing:
            return self._dispatch_and_answer(
                conn, session, request, request_id, op, kind, traced=False
            )
        trace_id = request.get("trace")
        attrs = {"op": op, "kind": kind}
        line = request.get("line")
        if isinstance(line, str):
            attrs["line"] = line
        with _trace.trace_context(
            "request",
            trace_id=trace_id if isinstance(trace_id, str) else None,
            **attrs,
        ) as t:
            _trace.add_span("wire.read", read_elapsed)
            ok = self._dispatch_and_answer(
                conn, session, request, request_id, op, kind, traced=True
            )
        self.obs.record(t)
        return ok

    def _dispatch_and_answer(
        self, conn, session, request, request_id, op, kind, traced
    ) -> bool:
        start = time.perf_counter()
        error_code = None
        try:
            if self._mvcc and kind == "read":
                # Lock-free: evaluate against pinned snapshots.
                with self._pinned_reads():
                    result = session.handle(request)
                self.metrics.record_snapshot_read()
            elif self._mvcc and op in _DATA_WRITE_OPS:
                # The thunk may run on another writer's (leader) thread;
                # adopting the requester's trace keeps the commit spans
                # in the requester's tree.
                parent = _trace.current_trace()
                result = self._committer.submit(
                    lambda: self._handle_adopted(session, request, parent),
                    self._request_timeout,
                )
            else:
                with self.lock.locked(kind, timeout=self._request_timeout):
                    result = session.handle(request)
            frame = result_frame(request_id, result)
        except LockTimeoutError as error:
            error_code = ERR_TIMEOUT
            frame = error_frame(request_id, ERR_TIMEOUT, str(error))
        except ProtocolError as error:
            error_code = error_code_for(error)
            frame = error_frame(request_id, error_code, str(error))
        except Exception as error:  # engine errors -> structured frames
            error_code = error_code_for(error)
            message = (
                str(error)
                if error_code != ERR_INTERNAL
                else f"{type(error).__name__}: {error}"
            )
            frame = error_frame(request_id, error_code, message)
        elapsed = time.perf_counter() - start
        self.metrics.record_request(op, kind, elapsed, error_code)
        if not traced:
            return self._answer(conn, frame)
        write_start = time.perf_counter()
        ok = self._answer(conn, frame)
        _trace.add_span("wire.write", time.perf_counter() - write_start)
        return ok

    @staticmethod
    def _handle_adopted(session, request, parent) -> object:
        with _trace.adopt(parent):
            return session.handle(request)

    def _answer(self, conn: socket.socket, frame: dict) -> bool:
        try:
            send_frame(conn, frame)
            return True
        except OSError:
            return False

    def _close_connection(self, conn: socket.socket) -> None:
        with self._conn_lock:
            if conn in self._connections:
                self._connections.remove(conn)
                self.metrics.record_connection("closed")
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# CLI entry point (``repro serve``)


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``repro serve [--demo] [--store PATH] [--host H] [--port P]``.

    ``--demo`` serves the paper's demo workloads; ``--store PATH``
    serves a persistent database journaled to ``PATH`` (created empty
    if absent) so mutations survive restarts; ``--paged PATH`` serves
    a checkpointed page-file database instead (restart cost bounded by
    the redo tail — see ``--checkpoint-every`` and ``--pool-pages``).
    With none of these, an empty catalog is served (clients can still
    create views over nothing — mostly useful for smoke tests).

    ``--async`` serves the event-loop pipelined server
    (``repro.server.aio``) instead of the thread-per-connection one:
    thousands of connections, multiple in-flight requests each,
    binary framing negotiated next to JSON (``--no-binary`` disables),
    and per-connection backpressure (``--max-inflight``).

    ``--shards N`` attaches the multi-process scatter–gather executor
    to every served database: eligible whole-extent scans fan out to
    N worker processes and merge back (``docs/sharding.md``), with
    ``repro_shard_*`` counters on the metrics endpoint.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve", description=serve_main.__doc__
    )
    parser.add_argument("--demo", action="store_true")
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve the asyncio pipelined server instead of a thread"
        " per connection",
    )
    parser.add_argument(
        "--binary",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="accept the RBP1 binary framing next to JSON"
        " (async server only; --no-binary refuses it)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        metavar="N",
        dest="max_inflight",
        help="async server: per-connection in-flight request cap;"
        " past it the connection's read loop pauses (backpressure)",
    )
    parser.add_argument(
        "--executor-threads",
        type=int,
        default=None,
        metavar="N",
        dest="executor_threads",
        help="async server: worker threads executing engine work",
    )
    parser.add_argument("--store", default=None, metavar="PATH")
    parser.add_argument(
        "--paged",
        default=None,
        metavar="PATH",
        help="serve a checkpointed page-file database stored at PATH"
        " (journal redo tail at PATH.journal)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        metavar="N",
        dest="checkpoint_every",
        help="checkpoint the paged database every N committed batches",
    )
    parser.add_argument(
        "--pool-pages",
        type=int,
        default=None,
        metavar="N",
        dest="pool_pages",
        help="buffer-pool capacity of the paged database, in pages",
    )
    parser.add_argument(
        "--incremental-checkpoints",
        action=argparse.BooleanOptionalAction,
        default=True,
        dest="incremental_checkpoints",
        help="let checkpoints write only objects dirtied since the"
        " previous one (--no-incremental-checkpoints forces every"
        " checkpoint to rewrite the full database)",
    )
    parser.add_argument(
        "--resident-limit",
        type=int,
        default=None,
        metavar="N",
        dest="resident_limit",
        help="paged database: drop clean demand-faulted objects past"
        " N resident (default: keep everything faulted in)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        dest="max_connections",
        help="concurrent-connection cap (default: 64 threaded,"
        " 10000 async)",
    )
    parser.add_argument(
        "--no-mvcc",
        action="store_true",
        help="serve reads under the reader-writer lock instead of"
        " lock-free snapshots (the PR 2 behaviour)",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.001,
        metavar="SECONDS",
        help="group-commit coalescing window for data writes",
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable request tracing (trace ring, slow-query log,"
        " span histograms)",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log the span tree of any request slower than MS"
        " milliseconds (0 logs everything)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus-style GET /metrics endpoint on PORT",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="attach an N-way scatter-gather executor to every served"
        " database: big extent scans fan out to N worker processes"
        " (see docs/sharding.md)",
    )
    args = parser.parse_args(argv)

    scopes = []
    store = None
    if args.demo:
        from ..workloads import build_navy_db, build_people_db

        scopes = [build_people_db(40, seed=1), build_navy_db(4, seed=2)]
    if args.store:
        from ..storage.persistence import open_persistent
        from ..storage.stores import FileStore

        store = FileStore(args.store)
        db, _manager = open_persistent(store, name="db")
        scopes.append(db)
    paged = None
    if args.paged:
        from ..storage.checkpoint import PagedDatabase

        kwargs = {
            "checkpoint_every": args.checkpoint_every or None,
            "incremental_checkpoints": args.incremental_checkpoints,
            "resident_limit": args.resident_limit,
        }
        if args.pool_pages:
            kwargs["pool_pages"] = args.pool_pages
        paged = PagedDatabase(args.paged, name="db", **kwargs)
        scopes.append(paged.db)

    executors = []
    if args.shards and args.shards > 1:
        from ..engine import Database
        from ..exec import attach_executor

        for scope in scopes:
            if isinstance(scope, Database):
                executors.append(attach_executor(scope, args.shards))

    common = dict(
        host=args.host,
        port=args.port,
        mvcc=not args.no_mvcc,
        batch_window=args.batch_window,
        tracing=not args.no_tracing,
        slow_query_threshold=(
            args.slow_query_ms / 1e3
            if args.slow_query_ms is not None
            else None
        ),
        metrics_port=args.metrics_port,
    )
    if args.use_async:
        from .aio import AsyncViewServer

        server = AsyncViewServer(
            scopes,
            max_connections=args.max_connections or 10_000,
            max_inflight=args.max_inflight,
            executor_threads=args.executor_threads,
            binary=args.binary,
            **common,
        )
    else:
        server = ViewServer(
            scopes,
            max_connections=args.max_connections or 64,
            **common,
        )
    host, port = server.start()
    names = ", ".join(s.scope_name for s in scopes) or "(empty catalog)"
    flavor = "async" if args.use_async else "threaded"
    print(f"repro server ({flavor}) on {host}:{port} serving {names}")
    if executors:
        print(
            f"sharded execution: {args.shards} worker shards per"
            f" database ({len(executors)} database(s))"
        )
    if args.metrics_port is not None:
        print(f"metrics on http://{host}:{args.metrics_port}/metrics")
    try:
        server.serve_forever()
    finally:
        for executor in executors:
            executor.close()
        if store is not None:
            store.close()
        if paged is not None:
            paged.close()
    return 0
