"""The wire protocol: length-prefixed JSON frames.

A frame is ``length (4 bytes, big-endian, unsigned) + payload``, where
the payload is a UTF-8 JSON object. Requests carry::

    {"id": <int>, "op": "<operation>", ...operation fields...}

and every request gets exactly one response, in order::

    {"id": <int>, "ok": true,  "result": <value>}
    {"id": <int>, "ok": false, "error": {"code": "...", "message": "..."}}

``id`` is chosen by the client and echoed back verbatim (``None`` in
error responses to frames whose id could not be parsed). Error codes
are stable strings (see ``docs/server.md``); :func:`error_code_for`
maps the library's exception hierarchy onto them.

Requests may additionally carry a ``trace`` field: a client-chosen
trace id string. A tracing server adopts it as the id of the request's
server-side span tree, so the trace is later retrievable by that id
via the ``traces`` op and correlated with the client's own records
(see ``docs/observability.md``).

JSON cannot carry :class:`~repro.engine.oid.Oid` values or sets, so
operation fields holding engine values are passed through
:func:`wire_encode` / :func:`wire_decode`, which tag them::

    Oid("Staff", 7)  <->  {"$oid": ["Staff", 7]}
    {1, 2}           <->  {"$set": [1, 2]}

Oversized frames are a protocol error, not a transport failure: the
reader skips exactly the declared length, so the connection stays
usable and the peer receives a structured ``frame_too_large`` error.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from ..engine.oid import Oid
from ..errors import ReproError

_LENGTH = struct.Struct(">I")

# Default cap on one frame's payload. Large enough for any realistic
# statement or result page, small enough that a misbehaving client
# cannot make the server buffer unbounded input.
MAX_FRAME = 1 << 20

# Preamble of the async server's binary framing
# (:mod:`repro.server.aio.framing`). The JSON reader recognizes it so
# a binary client reaching a JSON-only server gets a structured
# refusal instead of a connection that silently hangs: interpreted as
# a length prefix these bytes would declare a ~1.4 GB frame, and the
# old reader would block draining input that never comes.
BINARY_MAGIC = b"RBP1"

# Stable error codes carried in error frames.
ERR_BAD_REQUEST = "bad_request"
ERR_FRAME_TOO_LARGE = "frame_too_large"
ERR_INTERNAL = "internal"
ERR_PARSE = "parse_error"
ERR_SERVER_BUSY = "server_busy"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_TIMEOUT = "timeout"
ERR_UNKNOWN_OP = "unknown_op"


class ProtocolError(ReproError):
    """A malformed or oversized frame, or an invalid request shape."""

    def __init__(self, message: str, code: str = ERR_BAD_REQUEST):
        super().__init__(message)
        self.code = code


class ConnectionClosed(ReproError):
    """The peer closed the connection mid-frame."""


def error_code_for(error: Exception) -> str:
    """Map an exception to a stable wire error code.

    Library errors keep their class identity (``QuerySyntaxError`` ->
    ``query_syntax_error``) so clients can dispatch on them; anything
    else is ``internal``.
    """
    if isinstance(error, ProtocolError):
        return error.code
    if isinstance(error, ReproError):
        name = type(error).__name__
        out = [name[0].lower()]
        for ch in name[1:]:
            if ch.isupper():
                out.append("_")
                out.append(ch.lower())
            else:
                out.append(ch)
        return "".join(out)
    return ERR_INTERNAL


# ----------------------------------------------------------------------
# Value codec


def wire_encode(value):
    """Encode an engine value into JSON-able data (tagging oids/sets)."""
    if isinstance(value, Oid):
        return {"$oid": [value.space, value.number]}
    if isinstance(value, (set, frozenset)):
        return {"$set": [wire_encode(v) for v in sorted(value, key=repr)]}
    if isinstance(value, dict):
        return {str(k): wire_encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [wire_encode(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ProtocolError(
        f"value of type {type(value).__name__} cannot cross the wire"
    )


def wire_decode(value):
    """Invert :func:`wire_encode`."""
    if isinstance(value, dict):
        if set(value) == {"$oid"}:
            space, number = value["$oid"]
            return Oid(str(space), int(number))
        if set(value) == {"$set"}:
            return {wire_decode(v) for v in value["$set"]}
        return {k: wire_decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [wire_decode(v) for v in value]
    return value


# ----------------------------------------------------------------------
# Framing


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialize ``payload`` and write one frame."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_frame(
    sock: socket.socket, max_frame: int = MAX_FRAME
) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`ProtocolError` (code ``frame_too_large``) after
    *discarding* an oversized payload — the stream stays framed, so the
    caller can answer with an error frame and keep the connection.
    Raises :class:`ConnectionClosed` on EOF inside a frame.
    """
    header = _recv_exact(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    if header == BINARY_MAGIC:
        raise ProtocolError(
            "binary framing (RBP1) is not supported on this"
            " connection; use the JSON protocol or an async server"
        )
    (length,) = _LENGTH.unpack(header)
    if length > max_frame:
        _discard_exact(sock, length)
        raise ProtocolError(
            f"frame of {length} bytes exceeds limit of {max_frame}",
            code=ERR_FRAME_TOO_LARGE,
        )
    data = _recv_exact(sock, length)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def result_frame(request_id, result) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_frame(request_id, code: str, message: str) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def _recv_exact(sock, count: int, allow_eof: bool = False):
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ConnectionClosed("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _discard_exact(sock, count: int) -> None:
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise ConnectionClosed("connection closed mid-frame")
        remaining -= len(chunk)
