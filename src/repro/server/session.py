"""Per-connection sessions: request dispatch over a private view stack.

Each client connection owns one :class:`ServerSession`. It wraps the
shell's :class:`repro.cli.Session` with a *fresh catalog over the
shared database scopes*: the databases themselves are the server's
single shared copies, but every view a connection defines is private
to it — exactly the paper's §2 scenario of different users holding
different restructured views of one database.

The session also classifies each request as a read or a write for the
server's reader-writer lock:

- ``select`` queries and introspection dot-commands only read shared
  state — they run under the shared read lock;
- view DDL (``import``, ``hide``, ``class … includes``, ``attribute``)
  mutates only the private view, but *subscribes to the shared event
  bus* and reads schema that a concurrent writer may be redefining, so
  it serializes as a write;
- ``create`` / ``update`` / ``delete`` mutate the shared databases and
  fan events out to every connection's views: writes.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..cli import Session
from ..engine.oid import Oid
from ..engine.versions import (
    aggregate_commit_stats,
    aggregate_version_stats,
    describe_commit_totals,
)
from ..query.planner import aggregate_plan_stats
from ..storage.transactions import TxState
from .protocol import ERR_UNKNOWN_OP, ProtocolError, wire_decode, wire_encode

READ = "read"
WRITE = "write"

# Dot-commands that only read (``.use`` and ``.stats reset`` touch
# connection-private state only, so they are reads for lock purposes).
_READ_COMMANDS = {
    ".help",
    ".databases",
    ".use",
    ".classes",
    ".schema",
    ".extent",
    ".explain",
    ".stats",
    ".statements",
}


class ServerSession:
    """One connection's state: a private shell session plus dispatch."""

    def __init__(self, shared_scopes, metrics=None, obs=None):
        self.session = Session(list(shared_scopes))
        self._metrics = metrics
        self._obs = obs

    # ------------------------------------------------------------------
    # Classification

    def classify(self, request: dict) -> str:
        """``read`` or ``write`` — which side of the RW lock this op
        needs."""
        op = request.get("op")
        if op in ("create", "update", "delete", "batch", "txn"):
            return WRITE
        if op != "execute":
            return READ
        line = str(request.get("line", "")).strip()
        if line.rstrip(";").lstrip().lower().startswith("select"):
            return READ
        if line.startswith("."):
            command = line.split(None, 1)[0]
            return READ if command in _READ_COMMANDS else WRITE
        return WRITE

    # ------------------------------------------------------------------
    # Dispatch

    def handle(self, request: dict):
        """Execute one request dict, returning a JSON-able result.

        Raises :class:`ProtocolError` for malformed requests and lets
        :class:`ReproError` escape for the server to turn into an
        error frame.
        """
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            raise ProtocolError(
                f"unknown op: {op!r}", code=ERR_UNKNOWN_OP
            )
        return handler(self, request)

    # -- operations ----------------------------------------------------

    def _op_ping(self, request: dict):
        return "pong"

    # Interactive transaction commands would leave the database's
    # commit lock held by whichever thread ran the frame — and the
    # server executes each write frame on a group-commit leader thread,
    # so the matching .commit could run on a different thread. Scripted
    # transactions (the ``txn`` op) run begin-to-commit in one frame.
    _TXN_COMMANDS = {
        ".begin", ".commit", ".abort",
        ".savepoint", ".rollback", ".release",
    }

    def _op_execute(self, request: dict):
        line = request.get("line")
        if not isinstance(line, str):
            raise ProtocolError("execute requires a string 'line'")
        command = line.strip().split(None, 1)[0] if line.strip() else ""
        if command in self._TXN_COMMANDS:
            raise ProtocolError(
                f"{command} is not available over the wire; send a"
                " scripted transaction with the 'txn' op instead"
            )
        output = self.session.execute(line)
        if self._metrics is not None and line.strip() == ".stats":
            plans = self._plan_cache_totals()
            plan_line = (
                "plan cache (all scopes): "
                f"{plans['plans_compiled']} compiled,"
                f" {plans['plan_cache_hits']} hits,"
                f" {plans['index_probes']} index probes,"
                f" {plans['range_probes']} range probes"
            )
            commit_block = describe_commit_totals(self._commit_totals())
            output = (
                f"{output}\n-- server --\n{self._metrics.describe()}"
                f"\n{plan_line}"
                f"\n-- commits (all scopes) --\n{commit_block}"
            )
        return {"output": output}

    def _op_databases(self, request: dict):
        return {"names": self.session.catalog.names()}

    def _op_stats(self, request: dict):
        snapshot = (
            self._metrics.snapshot() if self._metrics is not None else {}
        )
        snapshot["plan_cache"] = self._plan_cache_totals()
        snapshot["commits"] = self._commit_totals()
        snapshot["views"] = self._view_stats()
        snapshot["versions"] = self._version_totals()
        snapshot["storage"] = self._storage_stats()
        return snapshot

    def _op_traces(self, request: dict):
        """Recent traces from the server's ring (``slow`` selects the
        slow-query log instead; ``trace_id`` fetches one trace)."""
        if self._obs is None:
            return {"traces": []}
        limit = request.get("limit")
        limit = limit if isinstance(limit, int) and limit >= 0 else 20
        if request.get("slow"):
            return {"slow": self._obs.slow_log.entries(limit)}
        trace_id = request.get("trace_id")
        if isinstance(trace_id, str):
            found = self._obs.ring.find(trace_id)
            return {"traces": [found] if found is not None else []}
        return {"traces": self._obs.ring.recent(limit)}

    def _op_metrics(self, request: dict):
        """The Prometheus-style text exposition, in a JSON frame."""
        from ..obs.export import render_prometheus

        catalog = self.session.catalog
        return {
            "text": render_prometheus(
                [catalog.get(name) for name in catalog.names()],
                self._metrics,
                self._obs.histograms if self._obs is not None else None,
            )
        }

    def _op_statements(self, request: dict):
        """The statement-statistics registry, top-N by total time.

        ``limit`` bounds the list (default 20); ``reset`` clears the
        registry after snapshotting it.
        """
        from ..obs import stats as _stats

        limit = request.get("limit")
        limit = limit if isinstance(limit, int) and limit > 0 else 20
        snapshot = _stats.REGISTRY.snapshot(top=limit)
        result = {
            "enabled": _stats.ENABLED,
            "statements": snapshot,
            "tracked": len(_stats.REGISTRY),
            "evictions": _stats.REGISTRY.evictions,
        }
        if request.get("reset"):
            _stats.REGISTRY.reset()
        return result

    def _op_explain(self, request: dict):
        """EXPLAIN ANALYZE a query server-side (its spans land in the
        session's scope, its text report in the reply)."""
        from ..obs.explain import explain_analyze

        query = request.get("query")
        if not isinstance(query, str):
            raise ProtocolError("explain requires a string 'query'")
        name = request.get("database")
        if name is not None:
            if not isinstance(name, str):
                raise ProtocolError("'database' must be a string")
            scope = self.session.catalog.get(name)
        else:
            scope = self.session.current
            if scope is None:
                raise ProtocolError(
                    "explain requires a 'database' (no current scope)"
                )
        return {"output": explain_analyze(query, scope)}

    def _plan_cache_totals(self) -> dict:
        """Plan-cache counters summed over this connection's scopes
        (the shared databases plus any private views)."""
        catalog = self.session.catalog
        return aggregate_plan_stats(
            catalog.get(name) for name in catalog.names()
        )

    def _commit_totals(self) -> dict:
        """MVCC commit-path counters summed over the shared databases
        (reached transitively through any private views)."""
        catalog = self.session.catalog
        return aggregate_commit_stats(
            catalog.get(name) for name in catalog.names()
        )

    def _version_totals(self) -> dict:
        """Version-GC counters summed over the shared databases."""
        catalog = self.session.catalog
        return aggregate_version_stats(
            catalog.get(name) for name in catalog.names()
        )

    def _storage_stats(self) -> dict:
        """Per-database storage-engine counters (paged databases
        only), keyed by scope name."""
        catalog = self.session.catalog
        out = {}
        for name in catalog.names():
            storage = getattr(catalog.get(name), "storage", None)
            if storage is not None:
                out[name] = storage.storage_stats()
        return out

    def _view_stats(self) -> dict:
        """Per-scope :class:`~repro.core.stats.ViewStats` snapshots
        (including ``invalidations_by_class``), keyed by scope name."""
        catalog = self.session.catalog
        out = {}
        for name in catalog.names():
            stats = getattr(catalog.get(name), "stats", None)
            if stats is not None and hasattr(stats, "invalidations_by_class"):
                out[name] = stats.snapshot()
        return out

    def _op_create(self, request: dict):
        scope, cls = self._mutable_scope(request, need_class=True)
        value = wire_decode(request.get("value") or {})
        if not isinstance(value, dict):
            raise ProtocolError("create 'value' must be an object")
        handle = scope.create(cls, value)
        return {"oid": wire_encode(handle.oid), "class": cls}

    def _op_update(self, request: dict):
        scope, _ = self._mutable_scope(request)
        oid = self._oid_of(request)
        attribute = request.get("attribute")
        if not isinstance(attribute, str):
            raise ProtocolError("update requires a string 'attribute'")
        scope.update(oid, attribute, wire_decode(request.get("value")))
        return {"updated": wire_encode(oid)}

    def _op_delete(self, request: dict):
        scope, _ = self._mutable_scope(request)
        oid = self._oid_of(request)
        scope.delete(oid)
        return {"deleted": wire_encode(oid)}

    def _op_batch(self, request: dict):
        """Apply a list of mutation descriptors atomically as one
        version install (``Database.apply_batch``)."""
        scope, _ = self._mutable_scope(request)
        operations = request.get("operations")
        if not isinstance(operations, list) or not operations:
            raise ProtocolError(
                "batch requires a non-empty list 'operations'"
            )
        decoded = []
        for descriptor in operations:
            if not isinstance(descriptor, dict):
                raise ProtocolError(
                    "each batch operation must be an object"
                )
            entry = dict(descriptor)
            if "value" in entry:
                entry["value"] = wire_decode(entry["value"])
            if "oid" in entry:
                oid = wire_decode(entry["oid"])
                if not isinstance(oid, Oid):
                    raise ProtocolError(
                        "batch operation 'oid' must be"
                        " {\"$oid\": [space, number]}"
                    )
                entry["oid"] = oid
            decoded.append(entry)
        apply_batch = getattr(scope, "apply_batch", None)
        if apply_batch is None:
            raise ProtocolError(
                f"scope {getattr(scope, 'scope_name', '?')!r} does not"
                " accept batches (views have no proper data)"
            )
        applied = apply_batch(decoded)
        return {"applied": [wire_encode(oid) for oid in applied]}

    def _op_txn(self, request: dict):
        """Execute a scripted transaction — begin to commit in one
        frame, with savepoint operations in between.

        ``operations`` entries: ``create`` (optionally with a ``ref``
        label; later entries may reference the created object with
        ``{"oid": {"$ref": label}}``), ``update``, ``delete``,
        ``savepoint``/``rollback_to``/``release`` (with ``name``), and
        ``abort`` (undo everything and stop). Returns the committed
        flag and the oids of labelled creates.
        """
        scope, _ = self._mutable_scope(request)
        operations = request.get("operations")
        if not isinstance(operations, list) or not operations:
            raise ProtocolError(
                "txn requires a non-empty list 'operations'"
            )
        if not hasattr(scope, "begin_batch"):
            raise ProtocolError(
                f"scope {getattr(scope, 'scope_name', '?')!r} does not"
                " accept transactions (views have no proper data)"
            )
        manager = getattr(scope, "txn_manager", None)
        if manager is None:
            from ..storage.transactions import TransactionManager

            manager = TransactionManager(scope)
        refs: Dict[str, Oid] = {}
        txn = manager.begin()
        committed = True
        try:
            for entry in operations:
                if not isinstance(entry, dict):
                    raise ProtocolError(
                        "each txn operation must be an object"
                    )
                kind = entry.get("op")
                if kind == "create":
                    cls = entry.get("class")
                    if not isinstance(cls, str):
                        raise ProtocolError(
                            "txn create requires a 'class' name"
                        )
                    value = wire_decode(entry.get("value") or {})
                    handle = scope.create(cls, value)
                    ref = entry.get("ref")
                    if isinstance(ref, str):
                        refs[ref] = handle.oid
                elif kind == "update":
                    scope.update(
                        self._txn_oid(entry, refs),
                        entry.get("attribute"),
                        wire_decode(entry.get("value")),
                    )
                elif kind == "delete":
                    scope.delete(self._txn_oid(entry, refs))
                elif kind == "savepoint":
                    txn.savepoint(self._txn_name(entry))
                elif kind == "rollback_to":
                    txn.rollback_to(self._txn_name(entry))
                elif kind == "release":
                    txn.release(self._txn_name(entry))
                elif kind == "abort":
                    committed = False
                    break
                else:
                    raise ProtocolError(f"unknown txn op: {kind!r}")
            if committed:
                txn.commit()
            else:
                txn.abort()
        except BaseException:
            if txn.state is TxState.ACTIVE:
                txn.abort()
            raise
        return {
            "committed": committed,
            "oids": {ref: wire_encode(oid) for ref, oid in refs.items()},
        }

    @staticmethod
    def _txn_name(entry: dict) -> str:
        name = entry.get("name")
        if not isinstance(name, str):
            raise ProtocolError(
                f"txn {entry.get('op')} requires a savepoint 'name'"
            )
        return name

    def _txn_oid(self, entry: dict, refs: Dict[str, Oid]) -> Oid:
        raw = entry.get("oid")
        if isinstance(raw, dict) and isinstance(raw.get("$ref"), str):
            label = raw["$ref"]
            if label not in refs:
                raise ProtocolError(f"unknown txn ref: {label!r}")
            return refs[label]
        oid = wire_decode(raw)
        if not isinstance(oid, Oid):
            raise ProtocolError(
                "txn operation 'oid' must be {\"$oid\": [space, number]}"
                " or {\"$ref\": label}"
            )
        return oid

    # -- helpers -------------------------------------------------------

    def _mutable_scope(
        self, request: dict, need_class: bool = False
    ) -> Tuple[object, str]:
        name = request.get("database")
        if not isinstance(name, str):
            raise ProtocolError("a 'database' name is required")
        scope = self.session.catalog.get(name)
        cls = request.get("class")
        if need_class and not isinstance(cls, str):
            raise ProtocolError("a 'class' name is required")
        return scope, cls

    def _oid_of(self, request: dict) -> Oid:
        oid = wire_decode(request.get("oid"))
        if not isinstance(oid, Oid):
            raise ProtocolError(
                "an 'oid' of the form {\"$oid\": [space, number]}"
                " is required"
            )
        return oid

    _HANDLERS: Dict[str, Callable] = {
        "ping": _op_ping,
        "execute": _op_execute,
        "databases": _op_databases,
        "stats": _op_stats,
        "traces": _op_traces,
        "metrics": _op_metrics,
        "statements": _op_statements,
        "explain": _op_explain,
        "create": _op_create,
        "update": _op_update,
        "delete": _op_delete,
        "batch": _op_batch,
        "txn": _op_txn,
    }
