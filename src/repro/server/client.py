"""A blocking client for the view server.

:class:`Client` speaks the length-prefixed JSON protocol over one TCP
connection. Requests are answered strictly in order, so the client is
a straightforward call/response wrapper; it is *not* thread-safe — use
one client per thread (the E14 bench does exactly that). For multiple
in-flight requests on one connection, use
:class:`repro.server.aio.PipelinedClient`.

Connecting is bounded and typed: ``connect_timeout`` caps one attempt,
``connect_retries`` retries a refused connection (a server still
binding its socket), and failure surfaces as :class:`ConnectError` —
a :class:`~repro.errors.ReproError` — instead of a raw ``OSError``,
so callers and test helpers no longer hand-roll sleep loops around
``ConnectionRefusedError``.

Error frames surface as :class:`ServerError`, carrying the stable wire
``code`` so callers can dispatch (``timeout``, ``query_syntax_error``,
``server_busy``, …).
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import List, Optional

from ..engine.oid import Oid
from ..errors import ReproError
from .protocol import (
    MAX_FRAME,
    ConnectionClosed,
    recv_frame,
    send_frame,
    wire_decode,
    wire_encode,
)


class ServerError(ReproError):
    """An error frame from the server."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.wire_message = message


class ConnectError(ReproError):
    """The server could not be reached (refused, unreachable, timed
    out), after any configured retries."""

    def __init__(self, host: str, port: int, attempts: int, cause: OSError):
        tries = f" after {attempts} attempts" if attempts > 1 else ""
        super().__init__(
            f"cannot connect to {host}:{port}{tries}: {cause}"
        )
        self.host = host
        self.port = port
        self.attempts = attempts
        self.cause = cause


def connect_with_retry(
    host: str,
    port: int,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_delay: float = 0.05,
) -> socket.socket:
    """Open a TCP connection, retrying refused/unreachable attempts.

    ``retries`` is the number of *additional* attempts after the first
    (so ``retries=0`` keeps the old single-shot behaviour); failures
    raise :class:`ConnectError` carrying the last ``OSError``.
    """
    attempts = max(0, int(retries)) + 1
    last_error: Optional[OSError] = None
    for attempt in range(attempts):
        try:
            return socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            last_error = error
            if attempt + 1 < attempts:
                time.sleep(retry_delay)
    raise ConnectError(host, port, attempts, last_error)


class CallApi:
    """Convenience wrappers over a ``call(op, **fields)`` method.

    Shared by the blocking :class:`Client` and the async server's
    :class:`~repro.server.aio.PipelinedClient`: both expose the same
    operation surface, differing only in how ``call`` reaches the
    server.
    """

    def call(self, op: str, **fields):  # pragma: no cover - interface
        raise NotImplementedError

    def ping(self) -> str:
        return self.call("ping")

    def execute(self, line: str) -> str:
        """Run one shell line (statement, query or dot-command) in this
        connection's private session; returns its printable output."""
        return self.call("execute", line=line)["output"]

    def query(self, text: str) -> str:
        return self.execute(text)

    def databases(self) -> List[str]:
        return self.call("databases")["names"]

    def stats(self) -> dict:
        return self.call("stats")

    def explain(self, query: str, database: Optional[str] = None) -> str:
        """EXPLAIN ANALYZE ``query`` server-side; the text report."""
        fields = {"query": query}
        if database is not None:
            fields["database"] = database
        return self.call("explain", **fields)["output"]

    def traces(self, limit: int = 20, trace_id: Optional[str] = None,
               slow: bool = False):
        """Recent traces from the server's ring (or its slow-query
        log with ``slow=True``), newest last."""
        fields = {"limit": limit}
        if trace_id is not None:
            fields["trace_id"] = trace_id
        if slow:
            fields["slow"] = True
        result = self.call("traces", **fields)
        return result["slow"] if slow else result["traces"]

    def metrics_text(self) -> str:
        """The server's Prometheus-style metrics exposition."""
        return self.call("metrics")["text"]

    def create(self, database: str, class_name: str, value: dict) -> Oid:
        result = self.call(
            "create",
            database=database,
            **{"class": class_name},
            value=wire_encode(value),
        )
        return wire_decode(result["oid"])

    def update(self, database: str, oid: Oid, attribute: str, value) -> None:
        self.call(
            "update",
            database=database,
            oid=wire_encode(oid),
            attribute=attribute,
            value=wire_encode(value),
        )

    def delete(self, database: str, oid: Oid) -> None:
        self.call("delete", database=database, oid=wire_encode(oid))

    def batch(self, database: str, operations: List[dict]) -> List[Oid]:
        """Apply a list of mutation descriptors atomically — one
        version install on the server, one event flush.

        Each descriptor is ``{"op": "create", "class": C, "value": V}``,
        ``{"op": "update", "oid": O, "attribute": A, "value": V}`` or
        ``{"op": "delete", "oid": O}``; oids/values may be given as
        engine objects (they are wire-encoded here). Returns the oid
        each operation touched, in order.
        """
        encoded = []
        for descriptor in operations:
            entry = dict(descriptor)
            if "value" in entry:
                entry["value"] = wire_encode(entry["value"])
            if "oid" in entry:
                entry["oid"] = wire_encode(entry["oid"])
            encoded.append(entry)
        result = self.call("batch", database=database, operations=encoded)
        return [wire_decode(oid) for oid in result["applied"]]

    def txn(self, database: str, operations: List[dict]) -> dict:
        """Run a scripted transaction — begin to commit in one request.

        Descriptors are the ``batch`` shapes plus ``{"op":
        "savepoint"/"rollback_to"/"release", "name": N}`` and ``{"op":
        "abort"}``. A ``create`` may carry ``"ref": label``; later
        operations may then pass ``"oid": {"$ref": label}``. Returns
        ``{"committed": bool, "oids": {label: Oid}}``.
        """
        encoded = []
        for descriptor in operations:
            entry = dict(descriptor)
            if "value" in entry:
                entry["value"] = wire_encode(entry["value"])
            oid = entry.get("oid")
            if isinstance(oid, Oid):
                entry["oid"] = wire_encode(oid)
            encoded.append(entry)
        result = self.call("txn", database=database, operations=encoded)
        return {
            "committed": result["committed"],
            "oids": {
                ref: wire_decode(oid)
                for ref, oid in result["oids"].items()
            },
        }


class Client(CallApi):
    """One blocking connection to a :class:`~repro.server.ViewServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = None,
        connect_retries: int = 0,
        retry_delay: float = 0.05,
        max_frame: int = MAX_FRAME,
        trace: Optional[str] = None,
    ):
        self._sock = connect_with_retry(
            host,
            port,
            timeout=connect_timeout if connect_timeout is not None
            else timeout,
            retries=connect_retries,
            retry_delay=retry_delay,
        )
        self._sock.settimeout(timeout)
        self._max_frame = max_frame
        self._ids = itertools.count(1)
        self._closed = False
        # When set, every request carries this id in its ``trace``
        # field so the server's span tree attaches to *our* trace id
        # (queryable back via ``traces``).
        self.trace = trace

    # ------------------------------------------------------------------

    def call(self, op: str, **fields):
        """Send one request, wait for its response, return the result.

        A per-call ``trace`` field (or the client-level :attr:`trace`)
        propagates a trace id to the server. Raises
        :class:`ServerError` on an error frame and
        :class:`ConnectionClosed` if the transport dies.
        """
        if self._closed:
            raise ConnectionClosed("client is closed")
        request_id = next(self._ids)
        if self.trace is not None and "trace" not in fields:
            fields["trace"] = self.trace
        send_frame(self._sock, {"id": request_id, "op": op, **fields})
        response = recv_frame(self._sock, self._max_frame)
        if response is None:
            self._closed = True
            raise ConnectionClosed("server closed the connection")
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServerError(
            str(error.get("code", "internal")),
            str(error.get("message", "unknown error")),
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# CLI entry point (``repro connect``)


def connect_main(argv: Optional[List[str]] = None) -> int:
    """``repro connect [HOST] [PORT] [--binary]`` — an interactive
    shell whose every line is executed by the server (default
    127.0.0.1:7474; ``--binary`` negotiates the binary framing of
    :mod:`repro.server.aio` instead of JSON)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro connect", description=connect_main.__doc__
    )
    parser.add_argument("host", nargs="?", default="127.0.0.1")
    parser.add_argument("port", nargs="?", type=int, default=7474)
    parser.add_argument(
        "--binary",
        action="store_true",
        help="speak the binary framing (async servers only)",
    )
    args = parser.parse_args(argv)

    try:
        if args.binary:
            from .aio.client import PipelinedClient

            client = PipelinedClient(args.host, args.port, binary=True)
        else:
            client = Client(args.host, args.port)
    except ReproError as error:
        print(str(error))
        return 1
    codec = "binary" if args.binary else "json"
    print(
        f"connected to {args.host}:{args.port} ({codec} framing) —"
        " lines are executed remotely; '.quit' to leave."
    )
    with client:
        buffer = ""
        while True:
            try:
                prompt = "....> " if buffer else "repro> "
                line = input(prompt)
            except (EOFError, KeyboardInterrupt):
                print()
                return 0
            if line.strip() == ".quit":
                return 0
            if line.strip().startswith("."):
                _print_remote(client, line)
                continue
            buffer += line + "\n"
            if ";" in line or line.strip().lower().startswith("select"):
                _print_remote(client, buffer)
                buffer = ""


def _print_remote(client: CallApi, text: str) -> None:
    try:
        output = client.execute(text)
    except ServerError as error:
        output = f"error: {error}"
    except ConnectionClosed:
        print("connection lost")
        raise SystemExit(1)
    if output:
        print(output)
