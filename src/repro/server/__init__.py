"""``repro.server`` — a multi-client network service for the view engine.

The paper's motivating scenario (§2) is inherently multi-tenant:
different users see different restructured views of one shared
database. This package serves that scenario over TCP:

- one process holds the shared :class:`~repro.engine.database.Database`
  scopes;
- each connection gets its own :class:`~repro.server.session.ServerSession`
  (a private catalog and view stack over the shared databases), handled
  by a dedicated thread;
- a reader-writer lock (:mod:`~repro.server.locks`) lets read-only
  queries from different connections run in parallel while mutations
  and view DDL serialize;
- requests and responses travel as length-prefixed JSON frames
  (:mod:`~repro.server.protocol`);
- :mod:`~repro.server.metrics` counts requests, errors and latencies,
  surfaced through ``.stats`` and the bench harness.

See ``docs/server.md`` for the wire protocol and concurrency model.
"""

from .client import Client, ServerError
from .locks import LockTimeoutError, ReadWriteLock
from .metrics import ServerMetrics
from .protocol import MAX_FRAME, ProtocolError
from .server import ViewServer
from .session import ServerSession

__all__ = [
    "Client",
    "LockTimeoutError",
    "MAX_FRAME",
    "ProtocolError",
    "ReadWriteLock",
    "ServerError",
    "ServerMetrics",
    "ServerSession",
    "ViewServer",
]
