"""``repro.server`` — a multi-client network service for the view engine.

The paper's motivating scenario (§2) is inherently multi-tenant:
different users see different restructured views of one shared
database. This package serves that scenario over TCP:

- one process holds the shared :class:`~repro.engine.database.Database`
  scopes;
- each connection gets its own :class:`~repro.server.session.ServerSession`
  (a private catalog and view stack over the shared databases), handled
  by a dedicated thread;
- a reader-writer lock (:mod:`~repro.server.locks`) lets read-only
  queries from different connections run in parallel while mutations
  and view DDL serialize;
- requests and responses travel as length-prefixed JSON frames
  (:mod:`~repro.server.protocol`);
- :mod:`~repro.server.metrics` counts requests, errors and latencies,
  surfaced through ``.stats`` and the bench harness;
- :mod:`~repro.server.aio` is the **async pipelined serving layer**:
  one event loop multiplexing thousands of connections, multiple
  in-flight requests per connection completing out of order, a binary
  framing option negotiated next to JSON, and backpressure that
  pauses reading instead of dropping connections
  (:class:`AsyncViewServer` / :class:`PipelinedClient`,
  ``repro serve --async``).

See ``docs/server.md`` for the wire protocols, the concurrency model,
and when to choose the threaded vs the async server.
"""

from .aio import AsyncViewServer, PipelinedClient
from .client import Client, ConnectError, ServerError
from .locks import LockTimeoutError, ReadWriteLock
from .metrics import ServerMetrics
from .protocol import MAX_FRAME, ProtocolError
from .server import ViewServer
from .session import ServerSession

__all__ = [
    "AsyncViewServer",
    "Client",
    "ConnectError",
    "LockTimeoutError",
    "MAX_FRAME",
    "PipelinedClient",
    "ProtocolError",
    "ReadWriteLock",
    "ServerError",
    "ServerMetrics",
    "ServerSession",
    "ViewServer",
]
