"""Server observability: request, error and latency counters.

:class:`ServerMetrics` is the server-side sibling of the view engine's
:class:`~repro.core.stats.ViewStats`: where ``ViewStats`` counts how a
view's caches served its queries, ``ServerMetrics`` counts how the
server served its clients. Both surface the same way — ``.stats`` in a
connected shell prints the server snapshot next to the view counters,
and :func:`repro.bench.server_metrics_table` renders one as a bench
table.

Latencies are kept in a bounded reservoir per request class
(read/write), so a long-running server reports stable percentiles in
constant memory.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from typing import Dict, List, Optional

_RESERVOIR_CAP = 4096


class LatencyReservoir:
    """Bounded uniform sample of request latencies (seconds)."""

    # Deterministic but *distinct* per instance: with one shared seed
    # the read and write reservoirs would draw identical slot
    # sequences and evict in lockstep, correlating their samples.
    _seeds = itertools.count(1)

    def __init__(self, cap: int = _RESERVOIR_CAP, seed: Optional[int] = None):
        self._cap = cap
        self._sample: List[float] = []
        self._count = 0
        self._total = 0.0
        self._rng = random.Random(
            seed if seed is not None else next(self._seeds)
        )

    def record(self, seconds: float) -> None:
        self._count += 1
        self._total += seconds
        if len(self._sample) < self._cap:
            self._sample.append(seconds)
            return
        slot = self._rng.randrange(self._count)
        if slot < self._cap:
            self._sample[slot] = seconds

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (0..1) of the sampled latencies."""
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        index = min(
            len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5)
        )
        return ordered[index]


class ServerMetrics:
    """Thread-safe counters for one server instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.requests_by_op: Dict[str, int] = {}
        self.errors_by_code: Dict[str, int] = {}
        self.connections_opened = 0
        self.connections_closed = 0
        self.connections_rejected = 0
        # MVCC read path / group-commit write path.
        self.snapshot_reads = 0
        self.group_batches = 0
        self.group_batched_ops = 0
        self.group_max_batch = 0
        # Async serving layer: pipelined in-flight depth and
        # backpressure pauses (zero on a threaded server).
        self.inflight_current = 0
        self.inflight_peak_connection = 0
        self.backpressure_pauses: Dict[str, int] = {}
        self._latency = {
            "read": LatencyReservoir(),
            "write": LatencyReservoir(),
        }

    # ------------------------------------------------------------------

    def record_request(
        self,
        op: str,
        kind: str,
        seconds: float,
        error_code: Optional[str] = None,
    ) -> None:
        with self._lock:
            self.requests_by_op[op] = self.requests_by_op.get(op, 0) + 1
            if error_code is not None:
                self.errors_by_code[error_code] = (
                    self.errors_by_code.get(error_code, 0) + 1
                )
            self._latency.get(kind, self._latency["read"]).record(seconds)

    def record_connection(self, event: str) -> None:
        """``event`` is ``opened``, ``closed`` or ``rejected``."""
        with self._lock:
            if event == "opened":
                self.connections_opened += 1
            elif event == "closed":
                self.connections_closed += 1
            elif event == "rejected":
                self.connections_rejected += 1

    def record_snapshot_read(self) -> None:
        """A read request served from pinned snapshots, lock-free."""
        with self._lock:
            self.snapshot_reads += 1

    def record_group_batch(self, size: int) -> None:
        """One group-commit batch flushed, covering ``size`` writes."""
        with self._lock:
            self.group_batches += 1
            self.group_batched_ops += size
            if size > self.group_max_batch:
                self.group_max_batch = size

    def inflight_started(self, connection_depth: int) -> None:
        """A pipelined request was admitted; ``connection_depth`` is
        its connection's in-flight count including it."""
        with self._lock:
            self.inflight_current += 1
            if connection_depth > self.inflight_peak_connection:
                self.inflight_peak_connection = connection_depth

    def inflight_finished(self) -> None:
        with self._lock:
            self.inflight_current -= 1

    def record_backpressure(self, kind: str) -> None:
        """A connection paused: ``kind`` is ``inflight`` (read loop hit
        the in-flight cap) or ``write`` (outbound buffer crossed the
        high-water mark)."""
        with self._lock:
            self.backpressure_pauses[kind] = (
                self.backpressure_pauses.get(kind, 0) + 1
            )

    # ------------------------------------------------------------------

    @property
    def total_requests(self) -> int:
        return sum(self.requests_by_op.values())

    @property
    def total_errors(self) -> int:
        return sum(self.errors_by_code.values())

    def snapshot(self) -> dict:
        """A JSON-able summary (served to clients by the ``stats`` op)."""
        with self._lock:
            uptime = time.monotonic() - self._started
            reads = self._latency["read"]
            writes = self._latency["write"]
            return {
                "uptime_s": round(uptime, 3),
                "requests": dict(self.requests_by_op),
                "errors": dict(self.errors_by_code),
                "connections": {
                    "opened": self.connections_opened,
                    "closed": self.connections_closed,
                    "rejected": self.connections_rejected,
                },
                "latency": {
                    "read": _latency_summary(reads),
                    "write": _latency_summary(writes),
                },
                "mvcc": {
                    "snapshot_reads": self.snapshot_reads,
                    "group_batches": self.group_batches,
                    "group_batched_ops": self.group_batched_ops,
                    "group_max_batch": self.group_max_batch,
                },
                "pipeline": {
                    "inflight_current": self.inflight_current,
                    "inflight_peak_connection": (
                        self.inflight_peak_connection
                    ),
                    "backpressure_pauses": dict(self.backpressure_pauses),
                },
                "requests_per_s": (
                    round((reads.count + writes.count) / uptime, 2)
                    if uptime > 0
                    else 0.0
                ),
            }

    def describe(self) -> str:
        """Human-readable counters, in the style of ViewStats.describe."""
        snap = self.snapshot()
        lines = [
            f"requests:        {sum(snap['requests'].values())}",
            f"errors:          {sum(snap['errors'].values())}",
            f"connections:     {snap['connections']['opened']} opened,"
            f" {snap['connections']['closed']} closed,"
            f" {snap['connections']['rejected']} rejected",
            f"throughput:      {snap['requests_per_s']} req/s",
        ]
        for kind in ("read", "write"):
            summary = snap["latency"][kind]
            if summary["count"]:
                lines.append(
                    f"{kind} latency:    p50 {summary['p50_ms']}ms"
                    f"  p99 {summary['p99_ms']}ms"
                    f"  mean {summary['mean_ms']}ms"
                    f"  ({summary['count']} reqs)"
                )
        pipeline = snap["pipeline"]
        if pipeline["inflight_peak_connection"]:
            pauses = pipeline["backpressure_pauses"]
            lines.append(
                f"pipelining:      {pipeline['inflight_current']} in"
                " flight now, peak"
                f" {pipeline['inflight_peak_connection']}/connection;"
                f" backpressure pauses: "
                + (
                    ", ".join(
                        f"{k}={v}" for k, v in sorted(pauses.items())
                    )
                    or "none"
                )
            )
        mvcc = snap["mvcc"]
        if mvcc["snapshot_reads"] or mvcc["group_batches"]:
            lines.append(
                f"snapshot reads:  {mvcc['snapshot_reads']}"
            )
            lines.append(
                f"group commits:   {mvcc['group_batches']} batches"
                f" ({mvcc['group_batched_ops']} writes,"
                f" max {mvcc['group_max_batch']})"
            )
        if snap["requests"]:
            lines.append("requests by op:")
            for op in sorted(snap["requests"]):
                lines.append(f"  {op}: {snap['requests'][op]}")
        if snap["errors"]:
            lines.append("errors by code:")
            for code in sorted(snap["errors"]):
                lines.append(f"  {code}: {snap['errors'][code]}")
        return "\n".join(lines)


def _latency_summary(reservoir: LatencyReservoir) -> dict:
    return {
        "count": reservoir.count,
        "mean_ms": round(reservoir.mean() * 1e3, 3),
        "p50_ms": round(reservoir.percentile(0.50) * 1e3, 3),
        "p99_ms": round(reservoir.percentile(0.99) * 1e3, 3),
    }
