"""A reader-writer lock for the shared catalog.

Concurrency model of the server: any number of read-only requests
(queries, schema listings) may evaluate at once, while a write request
(a base-data mutation, or view DDL such as ``hide`` / ``class …
includes`` — which subscribes to the shared event bus) holds the
catalog exclusively. Writers take preference: once a writer is
waiting, new readers queue behind it, so a steady stream of queries
cannot starve mutations.

Exclusivity is what makes the single-process engine safe to share:
mutation events fan out synchronously to every connection's views, and
those callbacks touch per-view caches that concurrent readers would
otherwise be traversing.

Acquisition takes an optional timeout so a request can fail with a
structured ``timeout`` error frame instead of stalling its connection
forever behind a long writer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import ReproError


class LockTimeoutError(ReproError):
    """Lock acquisition did not succeed within the allotted time."""

    def __init__(self, mode: str, timeout: float):
        super().__init__(
            f"could not acquire {mode} lock within {timeout:.3g}s"
        )
        self.mode = mode
        self.timeout = timeout


class ReadWriteLock:
    """A writer-preference reader-writer lock.

    Not reentrant: a thread must not acquire the lock again (in either
    mode) while holding it — the server takes it exactly once per
    request.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._readers_waiting = 0

    @property
    def waiting_readers(self) -> int:
        """Readers currently blocked behind a writer (observability;
        a leak here would eventually misreport contention forever)."""
        with self._cond:
            return self._readers_waiting

    @property
    def waiting_writers(self) -> int:
        with self._cond:
            return self._writers_waiting

    # ------------------------------------------------------------------

    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            self._readers_waiting += 1
            try:
                # The waiting count must be decremented on *every* exit
                # path — timeout, interrupt, or success — or a timed-out
                # reader under contention leaks a phantom waiter.
                ok = self._cond.wait_for(
                    lambda: not self._writer and not self._writers_waiting,
                    timeout,
                )
                if not ok:
                    return False
                self._readers += 1
                return True
            finally:
                self._readers_waiting -= 1

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            self._writers_waiting += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer and self._readers == 0,
                    timeout,
                )
                if not ok:
                    return False
                self._writer = True
                return True
            finally:
                self._writers_waiting -= 1
                if not self._writer:
                    # A timed-out writer may have been the only thing
                    # holding queued readers back.
                    self._cond.notify_all()

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without acquire_write")
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------------------

    @contextmanager
    def read_locked(
        self, timeout: Optional[float] = None
    ) -> Iterator[None]:
        if not self.acquire_read(timeout):
            raise LockTimeoutError("read", timeout or 0.0)
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(
        self, timeout: Optional[float] = None
    ) -> Iterator[None]:
        if not self.acquire_write(timeout):
            raise LockTimeoutError("write", timeout or 0.0)
        try:
            yield
        finally:
            self.release_write()

    @contextmanager
    def locked(
        self, mode: str, timeout: Optional[float] = None
    ) -> Iterator[None]:
        """``mode`` is ``"read"`` or ``"write"``."""
        ctx = self.read_locked if mode == "read" else self.write_locked
        with ctx(timeout):
            yield


class ExclusiveLock:
    """A drop-in replacement serializing *all* requests.

    The baseline for the E14 bench: same interface as
    :class:`ReadWriteLock`, but readers exclude each other too.
    """

    def __init__(self):
        self._lock = threading.Lock()

    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        return self._lock.acquire(timeout=-1 if timeout is None else timeout)

    acquire_write = acquire_read

    def release_read(self) -> None:
        self._lock.release()

    release_write = release_read

    @contextmanager
    def read_locked(
        self, timeout: Optional[float] = None
    ) -> Iterator[None]:
        if not self.acquire_read(timeout):
            raise LockTimeoutError("read", timeout or 0.0)
        try:
            yield
        finally:
            self.release_read()

    write_locked = read_locked

    @contextmanager
    def locked(
        self, mode: str, timeout: Optional[float] = None
    ) -> Iterator[None]:
        with self.read_locked(timeout):
            yield
