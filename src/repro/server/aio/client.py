"""A pipelining client: many in-flight requests on one connection.

:class:`PipelinedClient` speaks either wire format (JSON framing, or
the binary framing of :mod:`.framing` when ``binary=True`` — the
``RBP1`` preamble is sent at connect time). Unlike the blocking
:class:`~repro.server.client.Client`, it separates *submitting* a
request from *collecting* its response:

    with PipelinedClient(host, port, binary=True) as c:
        replies = [c.submit("execute", line=q) for q in queries]
        outputs = [r.result()["output"] for r in replies]

``submit`` assigns the request id, writes the frame and returns a
:class:`PendingReply` immediately; a background reader thread matches
response frames to replies *by request id*, so responses may arrive in
any order (the async server completes cheap requests past expensive
ones). ``call`` is the blocking convenience (submit + wait), which
also powers the shared :class:`~repro.server.client.CallApi`
wrappers (``execute``, ``create``, ``batch``, ``txn``, …).

``max_inflight`` is client-side flow control: ``submit`` blocks while
that many requests are outstanding, complementing the server's own
per-connection in-flight cap (which pauses *reading* instead of
failing requests).

The client is thread-safe: any thread may submit; any thread may wait
on any reply.
"""

from __future__ import annotations

import itertools
import json
import struct
import threading
from typing import Optional

from ..protocol import MAX_FRAME, ConnectionClosed, ProtocolError
from ..client import CallApi, ServerError, connect_with_retry
from . import framing

_LENGTH = struct.Struct(">I")


class PendingReply:
    """One outstanding request's future result."""

    __slots__ = ("_event", "_result", "_error", "request_id")

    def __init__(self, request_id: int):
        self.request_id = request_id
        self._event = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until the response arrives; raise its error if it was
        an error frame (or the connection died)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"no response to request {self.request_id} within"
                f" {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, result=None, error: BaseException = None) -> None:
        self._result = result
        self._error = error
        self._event.set()


class PipelinedClient(CallApi):
    """One connection, many in-flight requests, either wire format."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        binary: bool = False,
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = None,
        connect_retries: int = 0,
        retry_delay: float = 0.05,
        max_inflight: Optional[int] = None,
        max_frame: int = MAX_FRAME,
        trace: Optional[str] = None,
    ):
        self._sock = connect_with_retry(
            host,
            port,
            timeout=connect_timeout if connect_timeout is not None
            else timeout,
            retries=connect_retries,
            retry_delay=retry_delay,
        )
        # The reader thread owns receiving; it blocks in recv until the
        # socket dies, so the socket itself carries no timeout (waits
        # are bounded per-reply instead).
        self._sock.settimeout(None)
        self._binary = binary
        self._timeout = timeout
        self._max_frame = max_frame
        self._ids = itertools.count(1)
        self._pending = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._slots = (
            threading.BoundedSemaphore(max_inflight)
            if max_inflight
            else None
        )
        self._closed = False
        self.trace = trace
        if binary:
            self._sock.sendall(framing.MAGIC)
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-pipeline-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------

    def submit(self, op: str, **fields) -> PendingReply:
        """Write one request frame and return its pending reply."""
        if self._closed:
            raise ConnectionClosed("client is closed")
        if self.trace is not None and "trace" not in fields:
            fields["trace"] = self.trace
        if self._slots is not None:
            self._slots.acquire()
        with self._lock:
            request_id = next(self._ids)
            reply = PendingReply(request_id)
            self._pending[request_id] = reply
        request = {"id": request_id, "op": op, **fields}
        if self._binary:
            data = framing.encode_request(request)
        else:
            payload = json.dumps(
                request, separators=(",", ":")
            ).encode("utf-8")
            data = _LENGTH.pack(len(payload)) + payload
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except OSError as error:
            self._forget(request_id)
            raise ConnectionClosed(
                f"connection lost while sending: {error}"
            )
        return reply

    def call(self, op: str, **fields):
        """Submit one request and block for its result (the in-order
        convenience the shared :class:`CallApi` wrappers build on)."""
        return self.submit(op, **fields).result(self._timeout)

    @property
    def inflight(self) -> int:
        """Requests submitted but not yet answered."""
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------

    def _forget(self, request_id: int) -> None:
        with self._lock:
            self._pending.pop(request_id, None)
        if self._slots is not None:
            try:
                self._slots.release()
            except ValueError:
                pass

    def _read_loop(self) -> None:
        error: BaseException = ConnectionClosed(
            "server closed the connection"
        )
        try:
            while True:
                frame = self._read_frame()
                if frame is None:
                    break
                self._dispatch(frame)
        except (OSError, ConnectionClosed):
            pass
        except ProtocolError as pe:
            error = pe
        finally:
            self._closed = True
            with self._lock:
                pending = list(self._pending.values())
                self._pending.clear()
            for reply in pending:
                if self._slots is not None:
                    try:
                        self._slots.release()
                    except ValueError:
                        pass
                reply._resolve(error=error)

    def _dispatch(self, frame: dict) -> None:
        request_id = frame.get("id")
        with self._lock:
            reply = self._pending.pop(request_id, None)
        if reply is None:
            return  # unsolicited (e.g. shutdown notice): drop
        if self._slots is not None:
            try:
                self._slots.release()
            except ValueError:
                pass
        if frame.get("ok"):
            reply._resolve(result=frame.get("result"))
        else:
            err = frame.get("error") or {}
            reply._resolve(
                error=ServerError(
                    str(err.get("code", "internal")),
                    str(err.get("message", "unknown error")),
                )
            )

    def _read_frame(self) -> Optional[dict]:
        header = self._recv_exact(_LENGTH.size, eof_ok=True)
        if header is None:
            return None
        (length,) = _LENGTH.unpack(header)
        if length > self._max_frame:
            raise ProtocolError(
                f"response frame of {length} bytes exceeds"
                f" {self._max_frame}"
            )
        body = self._recv_exact(length)
        if self._binary:
            return framing.decode_response(body)
        try:
            frame = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ProtocolError(f"response frame is not valid JSON: {err}")
        if not isinstance(frame, dict):
            raise ProtocolError("response frame must be a JSON object")
        return frame

    def _recv_exact(self, count: int, eof_ok: bool = False):
        chunks = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(min(remaining, 65536))
            if not chunk:
                if eof_ok and remaining == count:
                    return None
                raise ConnectionClosed("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(2)  # SHUT_RDWR: wakes the reader
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader.join(timeout=2.0)

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
