"""``repro.server.aio`` — the async pipelined serving layer.

A second serving layer next to the threaded
:class:`~repro.server.ViewServer`, built for many thousands of
concurrent connections:

- :class:`AsyncViewServer` (:mod:`.server`): one event loop
  multiplexing every connection, engine work on a bounded executor,
  pipelined out-of-order request completion, per-connection
  backpressure (in-flight caps and write high-water marks that pause
  reading instead of dropping connections);
- :mod:`.framing`: the compact binary wire format (length + type +
  request id + tagged-value payload), negotiated per connection by the
  ``RBP1`` preamble next to the JSON protocol;
- :class:`PipelinedClient` (:mod:`.client`): a thread-safe client that
  keeps many requests in flight on one connection and matches
  responses by request id.

``repro serve --async`` serves this layer from the CLI; see
``docs/server.md`` for wire formats and semantics.
"""

from .client import PendingReply, PipelinedClient
from .framing import MAGIC
from .server import AsyncViewServer

__all__ = [
    "AsyncViewServer",
    "MAGIC",
    "PendingReply",
    "PipelinedClient",
]
