"""The async pipelined server: one event loop, thousands of connections.

:class:`AsyncViewServer` is a second serving layer next to the
threaded :class:`~repro.server.server.ViewServer` — same shared
scopes, same per-connection :class:`ServerSession`, same ops, same
MVCC discipline — built for the deployment shape the threaded server
cannot reach: *tens of thousands* of concurrent connections, each a
cheap coroutine on one event loop instead of an OS thread.

**Pipelining.** A connection may have many requests in flight at once
(frames are tagged with client-assigned request ids), and responses
complete **out of order**: each request runs as its own task, so a
cheap ``ping`` overtakes an expensive scan submitted just before it.
Per-connection ordering is preserved exactly where semantics need it —

- *snapshot reads* (``select`` queries, ``ping``, introspection ops)
  run concurrently with each other: each pins its own MVCC snapshot,
  so they cannot observe torn state;
- everything else (mutations, view DDL, session dot-commands) is a
  **barrier**: it waits for every previously submitted request on the
  connection, and later requests wait for it. A read submitted after a
  write therefore sees that write — read-your-writes through group
  commit — while reads among themselves still overtake each other.

**Event loop never blocks.** Engine work (plan execution, commits,
DDL under the catalog lock) runs on a bounded thread-pool executor;
the loop only parses frames, schedules tasks and moves bytes. Writes
ride the same leader/follower :class:`GroupCommitter` as the threaded
server — and because pipelining keeps many write frames in flight per
connection, far more of them coalesce into each commit window.

**Backpressure, not failure.** Two mechanisms pause instead of drop:

- *in-flight cap*: past ``max_inflight`` outstanding requests the
  connection's read loop stops reading — TCP flow control pushes back
  to the client — and resumes when a slot frees;
- *write high-water*: when a connection's outbound buffer exceeds
  ``write_high_water`` the responding task awaits ``drain()``; its
  in-flight slot stays occupied, so a slow reader throttles its own
  request stream rather than ballooning server memory.

Both are counted (``ServerMetrics`` ``backpressure_pauses``) and
exported (``repro_server_backpressure_pauses_total``).

**Framing.** Connections open in the JSON protocol; a client whose
first four bytes are the :data:`~.framing.MAGIC` preamble switches the
connection to the compact binary framing of :mod:`.framing`
(negotiation is per-connection, both formats served concurrently).

The public lifecycle mirrors the threaded server (``start`` /
``stop`` / ``serve_forever`` / context manager): the event loop runs
on a dedicated background thread, so tests, benches and the CLI drive
both servers identically.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack, contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from ...obs import stats as _stats
from ...obs import trace as _trace
from ...obs.collect import Observability
from ..locks import LockTimeoutError, ReadWriteLock
from ..metrics import ServerMetrics
from ..protocol import (
    ERR_BAD_REQUEST,
    ERR_FRAME_TOO_LARGE,
    ERR_INTERNAL,
    ERR_SERVER_BUSY,
    ERR_SHUTTING_DOWN,
    ERR_TIMEOUT,
    MAX_FRAME,
    ProtocolError,
    error_code_for,
    error_frame,
    result_frame,
)
from ..server import _DATA_WRITE_OPS, GroupCommitter
from ..session import ServerSession
from . import framing

import json

# Ops cheap and non-blocking enough to answer on the loop thread
# itself — an executor hop costs more than the handler.
_INLINE_OPS = frozenset({"ping"})

# Read-classified ops that may run concurrently with each other on one
# connection. ``execute`` needs a second look (dot-commands like
# ``.use`` mutate private session state even though they classify as
# reads for the *server* lock): only ``select`` lines join this set.
_CONCURRENT_OPS = frozenset(
    {
        "ping",
        "databases",
        "stats",
        "traces",
        "metrics",
        "statements",
        "explain",
    }
)


class _FrameError(Exception):
    """A per-frame failure the connection survives: answer an error
    frame carrying whatever request id could be recovered."""

    def __init__(self, request_id, code: str, message: str):
        super().__init__(message)
        self.request_id = request_id
        self.code = code


class _Connection:
    """Per-connection state: codec, session, ordering and flow control."""

    __slots__ = (
        "reader",
        "writer",
        "binary",
        "session",
        "inflight",
        "peak_inflight",
        "resume",
        "barrier",
        "outstanding",
        "write_lock",
    )

    def __init__(self, reader, writer, session):
        self.reader = reader
        self.writer = writer
        self.binary = False
        self.session = session
        self.inflight = 0
        self.peak_inflight = 0
        self.resume = asyncio.Event()
        self.barrier: Optional[asyncio.Task] = None
        self.outstanding: set = set()
        self.write_lock = asyncio.Lock()


class AsyncViewServer:
    """Event-loop sibling of :class:`~repro.server.ViewServer`."""

    def __init__(
        self,
        scopes: Sequence,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 10_000,
        max_frame: int = MAX_FRAME,
        request_timeout: float = 10.0,
        lock=None,
        mvcc: bool = True,
        batch_window: float = 0.001,
        tracing: bool = True,
        trace_ring: int = 256,
        slow_query_threshold: Optional[float] = None,
        metrics_port: Optional[int] = None,
        max_inflight: int = 32,
        executor_threads: Optional[int] = None,
        binary: bool = True,
        write_high_water: int = 1 << 18,
    ):
        self._scopes = list(scopes)
        self._host = host
        self._port = port
        self._max_connections = max_connections
        self._max_frame = max_frame
        self._request_timeout = request_timeout
        self.lock = lock if lock is not None else ReadWriteLock()
        self.metrics = ServerMetrics()
        self._mvcc = mvcc
        self._committer = GroupCommitter(self, batch_window)
        self._tracing = tracing
        self.obs = Observability(
            ring_capacity=trace_ring, slow_threshold=slow_query_threshold
        )
        self._metrics_port = metrics_port
        self._metrics_http = None
        self._trace_activated = False
        self._statements_enabled = False
        self._max_inflight = max(1, max_inflight)
        self._executor_threads = executor_threads
        self._binary_enabled = binary
        self._write_high_water = write_high_water
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._conn_tasks: set = set()
        self._stopping = threading.Event()
        self._started = False
        self._address: Optional[Tuple[str, int]] = None

    # -- shared-surface properties (GroupCommitter relies on these) ----

    @property
    def scopes(self) -> List:
        return self._scopes

    def _record_conflict_retry(self) -> None:
        for scope in self._scopes:
            stats = getattr(scope, "mvcc", None)
            if stats is not None:
                stats.record_conflict_retry()

    @contextmanager
    def _pinned_reads(self) -> Iterator[None]:
        """Pin a consistent snapshot of every served database for the
        calling (executor) thread — the MVCC lock-free read path."""
        with ExitStack() as stack:
            for scope in self._scopes:
                read_view = getattr(scope, "read_view", None)
                if read_view is not None:
                    stack.enter_context(read_view())
            yield

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    def start(self) -> Tuple[str, int]:
        """Spin up the loop thread, bind, return ``(host, port)``."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self._tracing and not self._trace_activated:
            _trace.activate()
            self._trace_activated = True
        if not self._statements_enabled:
            _stats.enable()
            self._statements_enabled = True
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_threads,
            thread_name_prefix="repro-aio-worker",
        )
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-aio-loop", daemon=True
        )
        self._loop_thread.start()
        future = asyncio.run_coroutine_threadsafe(self._bind(), self._loop)
        self._address = future.result(timeout=10.0)[:2]
        if self._metrics_port is not None and self._metrics_http is None:
            from ...obs.export import MetricsHTTPServer, render_prometheus

            self._metrics_http = MetricsHTTPServer(
                self._host,
                self._metrics_port,
                lambda: render_prometheus(
                    self._scopes, self.metrics, self.obs.histograms
                ),
            )
        return self._address

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    async def _bind(self):
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            backlog=1024,
        )
        return self._server.sockets[0].getsockname()

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful drain: stop accepting, let in-flight requests
        finish and be answered, then close transports and the loop."""
        if not self._started or self._stopping.is_set():
            return
        self._stopping.set()
        if self._loop is not None and self._loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown(drain_timeout), self._loop
            )
            try:
                future.result(timeout=drain_timeout + 5.0)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=drain_timeout + 5.0)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._metrics_http is not None:
            self._metrics_http.close()
            self._metrics_http = None
        if self._trace_activated:
            _trace.deactivate()
            self._trace_activated = False
        if self._statements_enabled:
            _stats.disable()
            self._statements_enabled = False

    async def _shutdown(self, drain_timeout: float) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [
            task
            for conn in list(self._connections)
            for task in conn.outstanding
            if not task.done()
        ]
        if pending:
            await asyncio.wait(pending, timeout=drain_timeout)
        for conn in list(self._connections):
            try:
                conn.writer.close()
            except Exception:
                pass
        if self._conn_tasks:
            done, still_running = await asyncio.wait(
                list(self._conn_tasks), timeout=2.0
            )
            for task in still_running:
                task.cancel()
            if still_running:
                await asyncio.gather(
                    *still_running, return_exceptions=True
                )

    def serve_forever(self) -> None:
        """Start (if needed) and block until ``SIGTERM``/``SIGINT``."""
        import signal

        if not self._started:
            self.start()
        stop_requested = threading.Event()

        def _handler(signum, frame):
            stop_requested.set()

        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((signum, signal.signal(signum, _handler)))
            except ValueError:  # not the main thread
                pass
        try:
            while not stop_requested.wait(timeout=0.5):
                pass
        finally:
            for signum, previous in installed:
                signal.signal(signum, previous)
            self.stop()

    def __enter__(self) -> "AsyncViewServer":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        if self._stopping.is_set() or (
            len(self._connections) >= self._max_connections
        ):
            code = (
                ERR_SHUTTING_DOWN
                if self._stopping.is_set()
                else ERR_SERVER_BUSY
            )
            message = (
                "server is draining"
                if code == ERR_SHUTTING_DOWN
                else f"connection limit of {self._max_connections} reached"
            )
            if code == ERR_SERVER_BUSY:
                self.metrics.record_connection("rejected")
            try:
                # Codec not negotiated yet: refusals are JSON.
                writer.write(_encode_json(error_frame(None, code, message)))
                await writer.drain()
            except (OSError, ConnectionError):
                pass
            finally:
                writer.close()
            return
        self.metrics.record_connection("opened")
        session = ServerSession(
            self._scopes, metrics=self.metrics, obs=self.obs
        )
        conn = _Connection(reader, writer, session)
        self._connections.add(conn)
        writer.transport.set_write_buffer_limits(
            high=self._write_high_water
        )
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            pass
        except (OSError, ConnectionError):
            pass
        finally:
            self._connections.discard(conn)
            self.metrics.record_connection("closed")
            if conn.outstanding:
                await asyncio.gather(
                    *conn.outstanding, return_exceptions=True
                )
            try:
                writer.close()
            except Exception:
                pass

    async def _read_loop(self, conn: _Connection) -> None:
        # Codec negotiation: the first four bytes are either the binary
        # magic or the first JSON frame's length prefix.
        try:
            first = await conn.reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        pending_header: Optional[bytes] = first
        if first == framing.MAGIC:
            if not self._binary_enabled:
                await self._send(
                    conn,
                    _encode_json(
                        error_frame(
                            None,
                            ERR_BAD_REQUEST,
                            "binary framing is disabled on this server",
                        )
                    ),
                )
                return
            conn.binary = True
            pending_header = None
        while True:
            try:
                request, read_elapsed = await self._read_request(
                    conn, pending_header
                )
            except _FrameError as error:
                pending_header = None
                frame = error_frame(
                    error.request_id, error.code, str(error)
                )
                await self._send(conn, self._encode(conn, frame))
                continue
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ):
                return
            pending_header = None
            if request is None:  # clean EOF
                return
            await self._dispatch(conn, request, read_elapsed)

    async def _read_request(
        self, conn: _Connection, pending_header: Optional[bytes]
    ):
        """Read one request frame; ``(None, _)`` on clean EOF. Raises
        :class:`_FrameError` for per-frame failures the connection
        survives."""
        reader = conn.reader
        started = time.perf_counter()
        if pending_header is None:
            try:
                header = await reader.readexactly(4)
            except asyncio.IncompleteReadError as error:
                if not error.partial:
                    return None, 0.0
                raise
        else:
            header = pending_header
        (length,) = framing.LENGTH.unpack(header)
        if conn.binary:
            if length > self._max_frame:
                # Salvage the request id from the 9-byte body header
                # before discarding, so the error frame is matchable.
                request_id = None
                if length >= framing.HEADER.size:
                    head = await reader.readexactly(framing.HEADER.size)
                    try:
                        _, rid = framing.decode_header(head)
                        request_id = rid or None
                    except ProtocolError:
                        pass
                    await _discard(reader, length - framing.HEADER.size)
                else:
                    await _discard(reader, length)
                raise _FrameError(
                    request_id,
                    ERR_FRAME_TOO_LARGE,
                    f"frame of {length} bytes exceeds limit of"
                    f" {self._max_frame}",
                )
            body = await reader.readexactly(length)
            try:
                request = framing.decode_request(body)
            except ProtocolError as error:
                request_id = None
                try:
                    _, rid = framing.decode_header(body)
                    request_id = rid or None
                except ProtocolError:
                    pass
                raise _FrameError(request_id, error.code, str(error))
            return request, time.perf_counter() - started
        if length > self._max_frame:
            await _discard(reader, length)
            raise _FrameError(
                None,
                ERR_FRAME_TOO_LARGE,
                f"frame of {length} bytes exceeds limit of"
                f" {self._max_frame}",
            )
        data = await reader.readexactly(length)
        try:
            request = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _FrameError(
                None, ERR_BAD_REQUEST, f"frame is not valid JSON: {error}"
            )
        if not isinstance(request, dict):
            raise _FrameError(
                None, ERR_BAD_REQUEST, "frame payload must be a JSON object"
            )
        return request, time.perf_counter() - started

    # ------------------------------------------------------------------
    # Dispatch

    async def _dispatch(
        self, conn: _Connection, request: dict, read_elapsed: float
    ) -> None:
        request_id = request.get("id")
        if self._stopping.is_set():
            frame = error_frame(
                request_id, ERR_SHUTTING_DOWN, "server is draining"
            )
            await self._send(conn, self._encode(conn, frame))
            return
        op = str(request.get("op"))
        kind = conn.session.classify(request)
        concurrent = self._is_concurrent(op, kind, request)
        # Backpressure: past the in-flight cap, stop reading (the
        # caller — the read loop — awaits here, so TCP pushes back).
        if conn.inflight >= self._max_inflight:
            self.metrics.record_backpressure("inflight")
            while conn.inflight >= self._max_inflight:
                conn.resume.clear()
                await conn.resume.wait()
        if concurrent:
            deps = (
                [conn.barrier]
                if conn.barrier is not None and not conn.barrier.done()
                else []
            )
        else:
            deps = [t for t in conn.outstanding if not t.done()]
        conn.inflight += 1
        if conn.inflight > conn.peak_inflight:
            conn.peak_inflight = conn.inflight
        self.metrics.inflight_started(conn.inflight)
        if op in _INLINE_OPS and not deps:
            # Fast path: an inline op with nothing to wait on is
            # answered right here on the loop — no task object, no
            # outstanding-set bookkeeping. At a 4:1 ping:select mix
            # this is most of the request stream.
            try:
                data = self._execute_request(
                    conn, request, op, kind, read_elapsed
                )
                await self._send(conn, data)
            except (OSError, ConnectionError):
                pass
            finally:
                conn.inflight -= 1
                self.metrics.inflight_finished()
                conn.resume.set()
            return
        task = asyncio.get_running_loop().create_task(
            self._process(conn, request, op, kind, deps, read_elapsed)
        )
        conn.outstanding.add(task)
        task.add_done_callback(conn.outstanding.discard)
        if not concurrent:
            conn.barrier = task

    @staticmethod
    def _is_concurrent(op: str, kind: str, request: dict) -> bool:
        if op in _CONCURRENT_OPS:
            return True
        if op == "execute" and kind == "read":
            line = str(request.get("line", "")).strip()
            return line.rstrip(";").lstrip().lower().startswith("select")
        return False

    async def _process(
        self, conn, request, op, kind, deps, read_elapsed
    ) -> None:
        try:
            if deps:
                await asyncio.gather(*deps, return_exceptions=True)
            if op in _INLINE_OPS:
                data = self._execute_request(
                    conn, request, op, kind, read_elapsed
                )
            else:
                data = await asyncio.get_running_loop().run_in_executor(
                    self._executor,
                    self._execute_request,
                    conn,
                    request,
                    op,
                    kind,
                    read_elapsed,
                )
            await self._send(conn, data)
        except asyncio.CancelledError:
            pass
        except (OSError, ConnectionError):
            pass
        finally:
            conn.inflight -= 1
            self.metrics.inflight_finished()
            conn.resume.set()

    def _execute_request(
        self, conn, request: dict, op: str, kind: str, read_elapsed: float
    ) -> bytes:
        """Runs on an executor thread (or inline for ``_INLINE_OPS``):
        trace, dispatch through the session, encode the response."""
        if not self._tracing:
            frame = self._handle(conn.session, request, op, kind)
            return self._encode(conn, frame)
        trace_id = request.get("trace")
        attrs = {"op": op, "kind": kind}
        line = request.get("line")
        if isinstance(line, str):
            attrs["line"] = line
        with _trace.trace_context(
            "request",
            trace_id=trace_id if isinstance(trace_id, str) else None,
            **attrs,
        ) as t:
            _trace.add_span("wire.read", read_elapsed)
            frame = self._handle(conn.session, request, op, kind)
            # Response serialization is the write-side CPU cost; the
            # actual transport write is buffered on the loop.
            write_start = time.perf_counter()
            data = self._encode(conn, frame)
            _trace.add_span(
                "wire.write", time.perf_counter() - write_start
            )
        self.obs.record(t)
        return data

    def _handle(
        self, session: ServerSession, request: dict, op: str, kind: str
    ) -> dict:
        request_id = request.get("id")
        start = time.perf_counter()
        error_code = None
        try:
            if op == "ping":
                # Touches no data: a snapshot pin (and the snapshot-
                # read counter) would be pure overhead on the single
                # hottest op.
                result = session.handle(request)
            elif self._mvcc and kind == "read":
                with self._pinned_reads():
                    result = session.handle(request)
                self.metrics.record_snapshot_read()
            elif self._mvcc and op in _DATA_WRITE_OPS:
                parent = _trace.current_trace()
                result = self._committer.submit(
                    lambda: self._handle_adopted(session, request, parent),
                    self._request_timeout,
                )
            else:
                with self.lock.locked(kind, timeout=self._request_timeout):
                    result = session.handle(request)
            frame = result_frame(request_id, result)
        except LockTimeoutError as error:
            error_code = ERR_TIMEOUT
            frame = error_frame(request_id, ERR_TIMEOUT, str(error))
        except ProtocolError as error:
            error_code = error_code_for(error)
            frame = error_frame(request_id, error_code, str(error))
        except Exception as error:  # engine errors -> structured frames
            error_code = error_code_for(error)
            message = (
                str(error)
                if error_code != ERR_INTERNAL
                else f"{type(error).__name__}: {error}"
            )
            frame = error_frame(request_id, error_code, message)
        self.metrics.record_request(
            op, kind, time.perf_counter() - start, error_code
        )
        return frame

    @staticmethod
    def _handle_adopted(session, request, parent) -> object:
        with _trace.adopt(parent):
            return session.handle(request)

    # ------------------------------------------------------------------
    # Writing

    def _encode(self, conn: _Connection, frame: dict) -> bytes:
        if conn.binary:
            try:
                return framing.encode_response(frame)
            except ProtocolError:
                # A result the binary codec cannot carry: degrade to a
                # structured error rather than killing the connection.
                return framing.encode_response(
                    error_frame(
                        frame.get("id"),
                        ERR_INTERNAL,
                        "result not encodable in binary framing",
                    )
                )
        return _encode_json(frame)

    async def _send(self, conn: _Connection, data: bytes) -> None:
        # ``write()`` is synchronous and ``data`` is one complete
        # frame, so concurrent senders cannot interleave mid-frame;
        # the transport flushes buffered frames from the loop. Only a
        # buffer past the high-water mark costs an awaited drain.
        transport = conn.writer.transport
        if transport.is_closing():
            return
        conn.writer.write(data)
        if transport.get_write_buffer_size() > self._write_high_water:
            self.metrics.record_backpressure("write")
            async with conn.write_lock:
                await conn.writer.drain()


def _encode_json(frame: dict) -> bytes:
    payload = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    return framing.LENGTH.pack(len(payload)) + payload


async def _discard(reader, count: int) -> None:
    remaining = count
    while remaining > 0:
        chunk = await reader.read(min(remaining, 65536))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        remaining -= len(chunk)
