"""The binary wire format of the async server (negotiated next to JSON).

A connection opens in the JSON protocol of :mod:`repro.server.protocol`
unless the client's first four bytes are the magic preamble ``RBP1``
("repro binary protocol 1"), in which case every subsequent frame —
both directions — uses the compact binary framing defined here::

    frame := u32 length (big-endian) | body (exactly `length` bytes)
    body  := u8 type | u64 request_id (big-endian) | payload

Frame types are :data:`TYPE_REQUEST` (client to server),
:data:`TYPE_RESULT` and :data:`TYPE_ERROR` (server to client). The
request id lives in the fixed header, not the payload: the server can
echo it on *any* failure — even one where the payload is garbage it
could read only nine bytes of — and a pipelining client can match
responses without decoding payloads it no longer cares about. Id ``0``
is reserved for "no id" (error frames answering frames whose body was
undecodable); clients assign ids from 1.

The payload is one *value* in a tagged, length-prefixed binary codec
(no external dependency — msgpack is not assumed):

    ========  ==========================================================
    tag       encoding
    ========  ==========================================================
    ``N``     none
    ``T``     true
    ``F``     false
    ``i``     int: zigzag varint
    ``f``     float: 8-byte IEEE 754 big-endian
    ``s``     str: varint byte length + UTF-8 bytes
    ``l``     list: varint count + that many values
    ``m``     map: varint count + (varint key length + UTF-8 key, value)
    ``e``     set: varint count + that many values
    ``o``     oid: varint space length + UTF-8 space + zigzag number
    ========  ==========================================================

A request payload is the map of request fields (everything the JSON
frame would carry except ``id``); a result payload is the result
value; an error payload is the map ``{"code": …, "message": …}``.
Oids and sets have native tags, so the codec can carry any value the
JSON protocol can (including its ``$oid``/``$set`` tagging, which the
session layer still applies) as well as raw engine values. Map keys
are strings, as in JSON; encoding refuses non-string keys rather than
stringifying them, so whatever round-trips does so as an *identity*
(modulo the canonical-form normalizations: tuples come back as lists,
frozensets as sets). The sharded execution engine
(:mod:`repro.exec`) rides on this codec for its task/delta/reply
wire format, so the property test in ``tests/test_shard_codec.py``
pins the round trip over every engine value type.

Decoding is defensive by construction — every length is bounds-checked
against the remaining buffer, unknown tags, truncated values, trailing
bytes and over-deep nesting raise :class:`ProtocolError` — because the
async server answers a bad frame with an error frame and *keeps the
connection*; a decoder crash would kill the read loop instead (the
fuzz suite in ``tests/test_protocol_fuzz.py`` feeds this module
garbage to hold it to that).
"""

from __future__ import annotations

import struct
from typing import Tuple

from ...engine.oid import Oid
from ..protocol import BINARY_MAGIC, ERR_BAD_REQUEST, ProtocolError

# Preamble a client sends immediately after connect to switch the
# connection to binary framing. The first byte (0x52, "R") can never
# open a JSON frame: it would declare a length far above any sane
# max_frame, so the two protocols are distinguishable from byte one.
MAGIC = BINARY_MAGIC

TYPE_REQUEST = 1
TYPE_RESULT = 2
TYPE_ERROR = 3

# length prefix | type + request id.
LENGTH = struct.Struct(">I")
HEADER = struct.Struct(">BQ")
_FLOAT = struct.Struct(">d")

# Nesting bound for the value decoder (and encoder, for symmetry): a
# hostile payload of 1M open-list tags must not recurse the server
# into a RecursionError.
MAX_DEPTH = 100


# ----------------------------------------------------------------------
# Value codec


def _pack_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _encode_int(out: bytearray, value: int) -> None:
    # Zigzag maps small negatives to small varints; arbitrary-precision
    # ints (Python's) are carried exactly.
    encoded = (value << 1) if value >= 0 else ((-value << 1) - 1)
    _pack_varint(out, encoded)


def encode_value(value, out: bytearray = None, _depth: int = 0) -> bytes:
    """Encode one value; raises :class:`ProtocolError` on types that
    cannot cross the wire (mirroring :func:`protocol.wire_encode`)."""
    if out is None:
        out = bytearray()
    if _depth > MAX_DEPTH:
        raise ProtocolError("value nests deeper than the wire allows")
    if value is None:
        out.append(0x4E)  # N
    elif value is True:
        out.append(0x54)  # T
    elif value is False:
        out.append(0x46)  # F
    elif isinstance(value, int):
        out.append(0x69)  # i
        _encode_int(out, value)
    elif isinstance(value, float):
        out.append(0x66)  # f
        out.extend(_FLOAT.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(0x73)  # s
        _pack_varint(out, len(data))
        out.extend(data)
    elif isinstance(value, Oid):
        space = value.space.encode("utf-8")
        out.append(0x6F)  # o
        _pack_varint(out, len(space))
        out.extend(space)
        _encode_int(out, value.number)
    elif isinstance(value, (list, tuple)):
        out.append(0x6C)  # l
        _pack_varint(out, len(value))
        for item in value:
            encode_value(item, out, _depth + 1)
    elif isinstance(value, (set, frozenset)):
        out.append(0x65)  # e
        _pack_varint(out, len(value))
        for item in sorted(value, key=repr):
            encode_value(item, out, _depth + 1)
    elif isinstance(value, dict):
        out.append(0x6D)  # m
        _pack_varint(out, len(value))
        for key, item in value.items():
            # Keys are strings on the wire. Stringifying other key
            # types here would *silently* mangle the value (the decoder
            # hands back str keys, so the round trip would not be
            # identity); refuse instead, like any other unencodable
            # value.
            if not isinstance(key, str):
                raise ProtocolError(
                    f"map key of type {type(key).__name__} cannot"
                    " cross the wire (keys must be strings)"
                )
            data = key.encode("utf-8")
            _pack_varint(out, len(data))
            out.extend(data)
            encode_value(item, out, _depth + 1)
    else:
        raise ProtocolError(
            f"value of type {type(value).__name__} cannot cross the wire"
        )
    return bytes(out)


def _read_varint(
    data: bytes, offset: int, max_shift: int = 70
) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ProtocolError("truncated varint in binary payload")
        if shift > max_shift:
            raise ProtocolError("varint in binary payload is too long")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _read_int(data: bytes, offset: int) -> Tuple[int, int]:
    # Lengths get the 10-byte sanity cap; *values* are Python ints of
    # arbitrary precision, bounded only by the (already size-capped)
    # frame they arrive in.
    encoded, offset = _read_varint(data, offset, max_shift=7 * len(data))
    return (encoded >> 1) if not encoded & 1 else -((encoded + 1) >> 1), offset


def _read_bytes(data: bytes, offset: int, why: str) -> Tuple[bytes, int]:
    length, offset = _read_varint(data, offset)
    if length > len(data) - offset:
        raise ProtocolError(f"truncated {why} in binary payload")
    return data[offset : offset + length], offset + length


def _decode_value(data: bytes, offset: int, depth: int):
    if depth > MAX_DEPTH:
        raise ProtocolError("binary payload nests deeper than allowed")
    if offset >= len(data):
        raise ProtocolError("truncated binary payload")
    tag = data[offset]
    offset += 1
    if tag == 0x4E:  # N
        return None, offset
    if tag == 0x54:  # T
        return True, offset
    if tag == 0x46:  # F
        return False, offset
    if tag == 0x69:  # i
        return _read_int(data, offset)
    if tag == 0x66:  # f
        if len(data) - offset < 8:
            raise ProtocolError("truncated float in binary payload")
        return _FLOAT.unpack_from(data, offset)[0], offset + 8
    if tag == 0x73:  # s
        raw, offset = _read_bytes(data, offset, "string")
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as error:
            raise ProtocolError(f"invalid UTF-8 in binary payload: {error}")
    if tag == 0x6F:  # o
        raw, offset = _read_bytes(data, offset, "oid space")
        try:
            space = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"invalid UTF-8 in binary payload: {error}")
        number, offset = _read_int(data, offset)
        return Oid(space, number), offset
    if tag in (0x6C, 0x65):  # l / e
        count, offset = _read_varint(data, offset)
        # Each element takes at least one byte: a count beyond the
        # remaining buffer is a lie (and would pre-allocate unbounded).
        if count > len(data) - offset:
            raise ProtocolError("collection count exceeds payload size")
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset, depth + 1)
            items.append(item)
        if tag == 0x65:
            try:
                return set(items), offset
            except TypeError:
                raise ProtocolError("unhashable element in wire set")
        return items, offset
    if tag == 0x6D:  # m
        count, offset = _read_varint(data, offset)
        if count > len(data) - offset:
            raise ProtocolError("map count exceeds payload size")
        result = {}
        for _ in range(count):
            raw, offset = _read_bytes(data, offset, "map key")
            try:
                key = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise ProtocolError(
                    f"invalid UTF-8 in binary payload: {error}"
                )
            result[key], offset = _decode_value(data, offset, depth + 1)
        return result, offset
    raise ProtocolError(f"unknown binary value tag 0x{tag:02x}")


def decode_value(data: bytes):
    """Decode exactly one value; trailing bytes are a protocol error."""
    value, offset = _decode_value(data, 0, 0)
    if offset != len(data):
        raise ProtocolError(
            f"{len(data) - offset} trailing bytes after binary value"
        )
    return value


# ----------------------------------------------------------------------
# Frames


def encode_request(request: dict) -> bytes:
    """One request frame; ``request`` is the JSON-protocol request dict
    (its ``id`` moves into the fixed header and must be an int >= 1)."""
    request_id = request.get("id")
    if not isinstance(request_id, int) or request_id < 1:
        raise ProtocolError(
            "binary requests need an integer id >= 1, got"
            f" {request_id!r}"
        )
    fields = {k: v for k, v in request.items() if k != "id"}
    body = HEADER.pack(TYPE_REQUEST, request_id) + encode_value(fields)
    return LENGTH.pack(len(body)) + body


def encode_response(frame: dict) -> bytes:
    """One response frame from a JSON-protocol response dict
    (``{"id": …, "ok": …, "result"/"error": …}``)."""
    request_id = frame.get("id")
    if not isinstance(request_id, int) or request_id < 0:
        request_id = 0
    if frame.get("ok"):
        body = HEADER.pack(TYPE_RESULT, request_id) + encode_value(
            frame.get("result")
        )
    else:
        body = HEADER.pack(TYPE_ERROR, request_id) + encode_value(
            frame.get("error") or {}
        )
    return LENGTH.pack(len(body)) + body


def decode_header(body: bytes) -> Tuple[int, int]:
    """``(type, request_id)`` from the first 9 body bytes."""
    if len(body) < HEADER.size:
        raise ProtocolError(
            f"binary frame body of {len(body)} bytes is shorter than"
            f" the {HEADER.size}-byte header"
        )
    return HEADER.unpack_from(body)


def decode_request(body: bytes) -> dict:
    """A server-side request dict (with ``id``) from one frame body."""
    frame_type, request_id = decode_header(body)
    if frame_type != TYPE_REQUEST:
        raise ProtocolError(
            f"expected a request frame, got type {frame_type}",
            code=ERR_BAD_REQUEST,
        )
    payload = decode_value(body[HEADER.size :])
    if not isinstance(payload, dict):
        raise ProtocolError("binary request payload must be a map")
    payload["id"] = request_id if request_id else None
    return payload


def decode_response(body: bytes) -> dict:
    """A client-side response dict (JSON-protocol shape) from one
    frame body."""
    frame_type, request_id = decode_header(body)
    payload = decode_value(body[HEADER.size :])
    if frame_type == TYPE_RESULT:
        return {"id": request_id or None, "ok": True, "result": payload}
    if frame_type == TYPE_ERROR:
        if not isinstance(payload, dict):
            raise ProtocolError("binary error payload must be a map")
        return {"id": request_id or None, "ok": False, "error": payload}
    raise ProtocolError(f"unexpected binary frame type {frame_type}")
