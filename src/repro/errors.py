"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. Subsystems add narrower classes:
schema errors, type errors, query errors, view errors, storage errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class SchemaError(ReproError):
    """Invalid schema operation: unknown class, duplicate class, cycle."""


class UnknownClassError(SchemaError):
    """A class name was referenced but is not defined in the schema."""

    def __init__(self, name: str):
        super().__init__(f"unknown class: {name!r}")
        self.name = name


class DuplicateClassError(SchemaError):
    """A class with the same name is already defined."""

    def __init__(self, name: str):
        super().__init__(f"class already defined: {name!r}")
        self.name = name


class HierarchyCycleError(SchemaError):
    """A subclass declaration would create a cycle in the class DAG."""


class UnknownAttributeError(SchemaError):
    """An attribute was referenced but is not defined for the class."""

    def __init__(self, class_name: str, attribute: str):
        super().__init__(
            f"class {class_name!r} has no attribute {attribute!r}"
        )
        self.class_name = class_name
        self.attribute = attribute


class TypeSystemError(ReproError):
    """Type mismatch, failed inference, or invalid type construction."""


class NoLeastUpperBoundError(TypeSystemError):
    """Two types have no least upper bound in the lattice."""


class ValueTypeError(TypeSystemError):
    """A value does not conform to its declared type."""


class ObjectError(ReproError):
    """Invalid object operation."""


class UnknownOidError(ObjectError):
    """An oid was dereferenced but no object carries it."""

    def __init__(self, oid):
        super().__init__(f"unknown oid: {oid}")
        self.oid = oid


class UniqueRootViolationError(ObjectError):
    """An operation would make an object real in more than one class."""


class QueryError(ReproError):
    """Error while parsing, type-checking, or evaluating a query."""


class QuerySyntaxError(QueryError):
    """The query text failed to parse."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class QueryTypeError(QueryError):
    """The query failed static type checking."""


class NonUniqueResultError(QueryError):
    """``select the`` found zero or more than one result."""

    def __init__(self, count: int):
        super().__init__(
            f"'select the' expected exactly one result, found {count}"
        )
        self.count = count


class ViewError(ReproError):
    """Invalid view definition or use."""


class HiddenAttributeError(ViewError):
    """A hidden attribute was accessed through a view."""

    def __init__(self, class_name: str, attribute: str):
        super().__init__(
            f"attribute {attribute!r} of class {class_name!r} is hidden"
            " in this view"
        )
        self.class_name = class_name
        self.attribute = attribute


class VirtualClassError(ViewError):
    """Invalid virtual class definition."""


class DirectInsertionError(ViewError):
    """Objects cannot be inserted directly into a virtual class."""

    def __init__(self, class_name: str):
        super().__init__(
            f"cannot insert directly into virtual class {class_name!r};"
            " its population is defined by its declaration"
        )
        self.class_name = class_name


class SchizophreniaError(ViewError):
    """A method resolution conflict with no applicable policy."""

    def __init__(self, attribute: str, classes):
        names = ", ".join(sorted(classes))
        super().__init__(
            f"schizophrenia: attribute {attribute!r} is defined in"
            f" incomparable classes [{names}] and no resolution policy"
            " applies"
        )
        self.attribute = attribute
        self.classes = tuple(classes)


class ImaginaryObjectError(ViewError):
    """Invalid operation on an imaginary object or class."""


class ViewUpdateError(ViewError):
    """An update through a view could not be translated to the base."""


class ReadOnlyAttributeError(ViewUpdateError):
    """A computed attribute without an update translator was assigned."""

    def __init__(self, class_name: str, attribute: str):
        super().__init__(
            f"computed attribute {class_name}.{attribute} has no update"
            " translator; it is read-only through this view"
        )
        self.class_name = class_name
        self.attribute = attribute


class LanguageError(ReproError):
    """Error while parsing or executing view-definition statements."""


class StorageError(ReproError):
    """Persistence-layer failure."""


class SerializationError(StorageError):
    """A value could not be encoded or decoded."""


class TransactionError(StorageError):
    """Invalid transaction state transition."""


class RelationalError(ReproError):
    """Error in the relational substrate."""
