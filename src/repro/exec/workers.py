"""The shard worker process.

Each worker is a long-lived ``multiprocessing`` process owning a full
*replica* of the coordinator's database, kept current by a delta
stream, plus the oid-range slice it scans on behalf of scatter tasks.
The replica is a whole database — not a storage slice — because query
evaluation navigates (``P.Spouse.Age``) and tests membership across
the entire object graph; only the *scan* is partitioned, via
:class:`~repro.exec.partition.SlicedScope`.

Wire format on the task queues: hot-path messages (deltas, scatter
tasks, replies) are single RBP1-encoded values — the compact binary
codec of :mod:`repro.server.aio.framing`, which carries oids, sets and
None natively — wrapped in the one cheap ``bytes`` pickle the queue
applies. The bootstrap message alone travels as a plain dict, because
its payload is the storage-layer record stream of
:func:`repro.storage.persistence.snapshot_records` (already encoded
bytes).

Messages a worker accepts (FIFO per worker — ordering is the
consistency mechanism: every delta shipped before a task is applied
before that task runs):

- ``bootstrap``: replace the replica with one rebuilt from snapshot
  records; create the listed indexes; adopt the coordinator version.
- ``delta``: apply one installed version's ops (data ops via the
  journal replayer; ``class``/``attribute``/``index`` DDL ops via the
  schema machinery — computed attributes become raising placeholders
  exactly as persistence restores them).
- ``scatter``: run one query over the worker's slice at an expected
  version; refuse (error reply) on version mismatch rather than serve
  a torn read.
- ``stop``: exit the loop.

Every scatter reply reports rows scanned/returned, wall time and the
worker plan-cache verdict, so the coordinator can surface per-shard
spans in EXPLAIN ANALYZE and ``repro_shard_*`` metrics.
"""

from __future__ import annotations

import os
import time
import traceback

from ..engine.objects import unwrap, wrap_value
from ..obs import trace as _trace
from ..server.aio.framing import decode_value, encode_value
from .partition import SlicedScope


def _apply_delta_op(db, op: dict) -> None:
    kind = op.get("op")
    if kind in ("create", "update", "delete"):
        from ..storage.journal import _apply

        _apply(db, op)
    elif kind == "class":
        db.define_class(op["name"], op.get("parents") or ())
    elif kind == "attribute":
        from ..storage.persistence import _restore_attribute

        _restore_attribute(
            db,
            op["class"],
            {
                "name": op["name"],
                "type": op.get("type"),
                "computed": bool(op.get("computed")),
                "arity": int(op.get("arity") or 0),
            },
        )
    elif kind == "index":
        db.create_index(op["class"], op["attribute"], op["index_kind"])
    else:
        raise ValueError(f"unknown delta op: {kind!r}")


class _WorkerState:
    """Replica + slice + parsed-query cache of one worker process."""

    def __init__(self, shard: int):
        self.shard = shard
        self.replica = None
        self.sliced = None
        self.version = -1
        self._parsed = {}

    def bootstrap(self, records, indexes, version: int) -> None:
        from ..storage.persistence import load_database_from_records

        self.replica = load_database_from_records(records)
        for class_name, attribute, kind in indexes:
            self.replica.create_index(class_name, attribute, kind)
        self.sliced = SlicedScope(self.replica)
        self.version = version
        self._parsed.clear()

    def apply_delta(self, version: int, ops) -> None:
        if self.replica is None:
            raise RuntimeError("delta before bootstrap")
        for op in ops:
            _apply_delta_op(self.replica, op)
        self.version = version

    def parse(self, text: str):
        select = self._parsed.get(text)
        if select is None:
            from ..query.builder import ensure_query

            select = ensure_query(text)
            if len(self._parsed) > 256:
                self._parsed.clear()
            self._parsed[text] = select
        return select

    def run_scatter(self, task: dict) -> dict:
        from ..query.planner import fetch_plan

        expected = task["version"]
        if self.replica is None or self.version != expected:
            raise RuntimeError(
                f"shard {self.shard} replica at version {self.version},"
                f" task pinned to {expected}"
            )
        select = self.parse(task["query"])
        self.sliced.set_slice(task.get("lo"), task.get("hi"))
        bindings = {
            name: wrap_value(self.sliced, value)
            for name, value in (task.get("bindings") or {}).items()
        }
        traced = bool(task.get("trace"))
        spans = None
        started = time.perf_counter()
        started_cpu = time.process_time()
        if traced:
            # Arm the tracer for this one task: the span tree (plan /
            # compile / index_probe / population.recompute /
            # virtual_attr.eval ...) ships back in the reply for the
            # coordinator to stitch under its ``scatter.shard`` span.
            _trace.activate()
            try:
                with _trace.trace_context("shard.task") as t:
                    plan, hit, cache = fetch_plan(select, self.sliced)
                    with _trace.span("execute", plan=plan.kind) as sp:
                        results = plan.execute(
                            self.sliced, cache, bindings, None, None
                        )
                        if not isinstance(results, list):
                            results = [results]
                        sp.set(rows=len(results))
            finally:
                _trace.deactivate()
            spans = t.root.to_dict()
        else:
            plan, hit, cache = fetch_plan(select, self.sliced)
            results = plan.execute(
                self.sliced, cache, bindings, None, None
            )
            if not isinstance(results, list):  # unique stripped upstream
                results = [results]
        # Wall time includes time spent descheduled when workers
        # outnumber cores; CPU time is the slice's true scan cost
        # (what the shard would take with a core of its own).
        elapsed = time.perf_counter() - started
        cpu = time.process_time() - started_cpu
        class_name = select.bindings[0].source.class_name
        scanned = len(self.sliced.extent(class_name))
        reply = {
            "task": task["task"],
            "shard": self.shard,
            "ok": True,
            "mode": task["mode"],
            "scanned": scanned,
            "returned": len(results),
            "elapsed": elapsed,
            "cpu": cpu,
            "plan_hit": hit,
            "lo": task.get("lo"),
            "hi": task.get("hi"),
            "version": self.version,
        }
        if spans is not None:
            # Only traced tasks pay the span payload: untraced
            # replies carry zero tracing bytes on the wire.
            reply["pid"] = os.getpid()
            reply["spans"] = spans
        if task["mode"] == "count":
            reply["count"] = len(results)
        else:
            reply["rows"] = [unwrap(value) for value in results]
        return reply


def worker_main(shard: int, inbox, outbox) -> None:
    """Entry point of one shard worker process."""
    # A fork inherits the coordinator's tracer state (global flag and
    # possibly the forking thread's live trace); drop it so spans are
    # collected only when a task explicitly asks.
    _trace.reset_process_state()
    state = _WorkerState(shard)
    while True:
        message = inbox.get()
        if isinstance(message, (bytes, bytearray)):
            message = decode_value(bytes(message))
        kind = message.get("kind")
        if kind == "stop":
            return
        try:
            if kind == "bootstrap":
                state.bootstrap(
                    message["records"],
                    message.get("indexes") or (),
                    message["version"],
                )
            elif kind == "delta":
                state.apply_delta(message["version"], message["ops"])
            elif kind == "scatter":
                outbox.put(encode_value(state.run_scatter(message)))
            else:
                raise ValueError(f"unknown worker message: {kind!r}")
        except Exception as error:  # reply, never die: the
            # coordinator turns shard errors into serial fallbacks.
            if kind == "scatter":
                outbox.put(
                    encode_value(
                        {
                            "task": message.get("task"),
                            "shard": shard,
                            "ok": False,
                            "error": (
                                f"{type(error).__name__}: {error}"
                            ),
                            "trace": traceback.format_exc(limit=4),
                        }
                    )
                )
            else:
                # A failed bootstrap/delta leaves the replica
                # unusable; poison the version so every later scatter
                # errors (and the coordinator re-bootstraps).
                state.version = -1
                state.replica = None
