"""Multi-process sharded scatter–gather execution.

See :mod:`repro.exec.coordinator` for the architecture overview and
``docs/sharding.md`` for the user-facing story.
"""

from .coordinator import (
    ScatterOutcome,
    ShardExecutor,
    Unscatterable,
    attach_executor,
    executor_of,
)
from .partition import SlicedScope, compute_boundaries, slice_of

__all__ = [
    "ScatterOutcome",
    "ShardExecutor",
    "SlicedScope",
    "Unscatterable",
    "attach_executor",
    "compute_boundaries",
    "executor_of",
    "slice_of",
]
