"""The scatter–gather coordinator: shard workers, deltas, failover.

:class:`ShardExecutor` attaches to one :class:`Database` and owns N
worker processes (spawned lazily at the first scatter). It keeps the
worker replicas consistent with a *delta protocol* built on the
engine's existing machinery:

- every mutation/DDL event the database publishes is staged (the bus
  fires under the commit lock);
- the database's *install hook* — also under the commit lock — stamps
  the staged ops with the just-installed version and appends them to
  a ship log;
- a scatter pins one snapshot (version ``V``), drains every log entry
  with version ``<= V`` into the worker inboxes, then enqueues the
  tasks tagged ``V``. FIFO queues guarantee each worker applies all
  deltas up to ``V`` before running the task, and a worker refuses a
  task whose version its replica does not match — so all shards
  answer from the same pinned version and torn reads are impossible
  by construction.

An install that published no events (``restore_objects``, anything
outside the event vocabulary) marks the executor *stale*: the next
scatter re-bootstraps every worker from a full snapshot instead of
trusting the log. The same path covers worker death: a dead shard's
slice is re-executed serially against the pinned snapshot
(``shard_failovers`` counts these) and the worker is respawned and
re-bootstrapped on the next scatter. Any other shard error falls back
to whole-query serial execution (:class:`Unscatterable`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import threading
import time
from typing import Dict, List, Optional

from ..engine.events import (
    AttributeDefined,
    ClassDefined,
    IndexCreated,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from ..engine.objects import unwrap, wrap_value
from ..server.aio.framing import decode_value, encode_value
from .partition import SlicedScope, compute_boundaries, slice_of
from .workers import worker_main

_MISSING = object()

# Past this many unshipped log entries the log is dropped and workers
# are re-bootstrapped wholesale — bounds coordinator memory when no
# scatter runs for a long write burst.
LOG_CAP = 10_000

# A scatter whose per-shard scanned counts are this skewed recomputes
# the partition boundaries from the next snapshot.
REBALANCE_SKEW = 4.0


class Unscatterable(Exception):
    """This query cannot (currently) be scattered; run it serially."""


class _Worker:
    __slots__ = ("shard", "process", "inbox", "version")

    def __init__(self, shard: int):
        self.shard = shard
        self.process = None
        self.inbox = None
        self.version = -1

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ShardStats:
    """Mutable counters surfaced via ``.stats`` and Prometheus."""

    def __init__(self, shards: int):
        self.scatters = 0
        self.tasks = 0
        self.rows_gathered = 0
        self.serial_fallbacks = 0
        self.shard_failovers = 0
        self.rebootstraps = 0
        self.rebalances = 0
        self.deltas_shipped = 0
        self.per_shard = [
            {
                "shard": i,
                "tasks": 0,
                "rows": 0,
                "busy_seconds": 0.0,
                "cpu_seconds": 0.0,
                "plan_hits": 0,
                "plan_misses": 0,
            }
            for i in range(shards)
        ]

    def snapshot(self) -> dict:
        return {
            "scatters": self.scatters,
            "tasks": self.tasks,
            "rows_gathered": self.rows_gathered,
            "serial_fallbacks": self.serial_fallbacks,
            "shard_failovers": self.shard_failovers,
            "rebootstraps": self.rebootstraps,
            "rebalances": self.rebalances,
            "deltas_shipped": self.deltas_shipped,
            "per_shard": [dict(row) for row in self.per_shard],
        }


class ScatterOutcome:
    """What one scatter produced, before the coordinator-side merge."""

    __slots__ = ("mode", "rows", "counts", "shard_info", "version")

    def __init__(self, mode, rows, counts, shard_info, version):
        self.mode = mode
        self.rows = rows  # concatenated raw values, shard order
        self.counts = counts  # per-shard result counts (count mode)
        self.shard_info = shard_info  # per-shard stat dicts
        self.version = version


class ShardExecutor:
    """Scatter–gather execution over N worker processes for one
    database."""

    def __init__(
        self,
        db,
        shards: int,
        min_scatter_extent: int = 2048,
        gather_timeout: float = 60.0,
        mp_context: Optional[str] = None,
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.db = db
        self.shards = shards
        self.min_scatter_extent = min_scatter_extent
        self.gather_timeout = gather_timeout
        methods = multiprocessing.get_all_start_methods()
        method = mp_context or (
            "fork" if "fork" in methods else methods[0]
        )
        self._ctx = multiprocessing.get_context(method)
        self.stats = ShardStats(shards)
        self._workers: List[_Worker] = [
            _Worker(i) for i in range(shards)
        ]
        self._outbox = self._ctx.Queue()
        self._boundaries = None
        self._rebalance_wanted = False
        self._task_ids = itertools.count(1)
        # One lock serializes scatters end to end: per-scatter replies
        # share one outbox, and delta draining must not interleave.
        self._lock = threading.Lock()
        # Staging/ship log, written under the database commit lock.
        self._log_lock = threading.Lock()
        self._staged: List[dict] = []
        self._log: List[tuple] = []  # (version, ops, encoded|None)
        self._stale_version = 0  # re-bootstrap needed at >= version
        self._closed = False
        self._unsubscribe = db.events.subscribe(self._on_event)
        self._remove_hook = db.add_install_hook(self._on_install)

    # ------------------------------------------------------------------
    # Delta capture (runs under the database's commit lock)
    # ------------------------------------------------------------------

    def _on_event(self, event) -> None:
        if isinstance(event, ObjectCreated):
            value = dict(self.db._require_live(event.oid).value)
            self._staged.append(
                {
                    "op": "create",
                    "class": event.class_name,
                    "oid": event.oid,
                    "value": value,
                }
            )
        elif isinstance(event, ObjectUpdated):
            self._staged.append(
                {
                    "op": "update",
                    "oid": event.oid,
                    "attr": event.attribute,
                    "value": event.new_value,
                }
            )
        elif isinstance(event, ObjectDeleted):
            self._staged.append({"op": "delete", "oid": event.oid})
        elif isinstance(event, ClassDefined):
            self._staged.append(
                {
                    "op": "class",
                    "name": event.class_name,
                    "parents": list(
                        self.db.schema.direct_parents(event.class_name)
                    ),
                }
            )
            # ``define_class(attributes={...})`` declares attributes
            # inline without AttributeDefined events; ship them as
            # attribute ops right behind the class op.
            from ..storage.serializer import type_to_data

            cdef = self.db.schema.require(event.class_name)
            for name, adef in cdef.attributes.items():
                self._staged.append(
                    {
                        "op": "attribute",
                        "class": event.class_name,
                        "name": name,
                        "type": (
                            type_to_data(adef.declared_type)
                            if adef.declared_type is not None
                            else None
                        ),
                        "computed": adef.is_computed(),
                        "arity": adef.arity,
                    }
                )
        elif isinstance(event, AttributeDefined):
            self._staged.append(
                {
                    "op": "attribute",
                    "class": event.class_name,
                    "name": event.attribute,
                    "type": event.declared_type,
                    "computed": event.computed,
                    "arity": event.arity,
                }
            )
        elif isinstance(event, IndexCreated):
            self._staged.append(
                {
                    "op": "index",
                    "class": event.class_name,
                    "attribute": event.attribute,
                    "index_kind": event.kind,
                }
            )

    def _on_install(self, version: int) -> None:
        with self._log_lock:
            if self._staged:
                self._log.append((version, self._staged, None))
                self._staged = []
                if len(self._log) > LOG_CAP:
                    # Write burst with no scatter draining it: drop
                    # the log, re-bootstrap at next scatter.
                    self._log = []
                    self._stale_version = version
            else:
                # An install we saw no events for (restore paths):
                # the log can no longer reproduce this version.
                self._stale_version = version

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        worker.inbox = self._ctx.Queue()
        worker.version = -1
        worker.process = self._ctx.Process(
            target=worker_main,
            args=(worker.shard, worker.inbox, self._outbox),
            daemon=True,
            name=f"repro-shard-{self.db.scope_name}-{worker.shard}",
        )
        worker.process.start()

    def _bootstrap(self, worker: _Worker, snap, records, specs) -> None:
        worker.inbox.put(
            {
                "kind": "bootstrap",
                "records": records,
                "indexes": specs,
                "version": snap.version,
            }
        )
        worker.version = snap.version
        self.stats.rebootstraps += 1

    def _prepare_workers(self, snap) -> None:
        """Spawn/respawn/bootstrap/drain so every worker's replica is
        at exactly ``snap.version`` once its inbox drains."""
        version = snap.version
        need_bootstrap = []
        for worker in self._workers:
            if not worker.alive():
                self._spawn(worker)
                need_bootstrap.append(worker)
        with self._log_lock:
            stale_version = self._stale_version
            if stale_version and version < stale_version:
                raise Unscatterable(
                    "pinned snapshot predates a replica gap"
                )
            if stale_version:
                # Re-bootstrap everyone; the log cannot be trusted.
                need_bootstrap = list(self._workers)
                self._stale_version = 0
                self._log = [
                    entry for entry in self._log if entry[0] > version
                ]
            for worker in self._workers:
                if worker.version > version:
                    raise Unscatterable(
                        f"worker replicas at version {worker.version},"
                        f" pin is older ({version})"
                    )
            if need_bootstrap:
                from ..storage.persistence import snapshot_records

                records = list(snapshot_records(snap))
                specs = self.db._live_indexes().specs()
                for worker in need_bootstrap:
                    self._bootstrap(worker, snap, records, specs)
            # Ship log entries <= version to workers behind them.
            shipped = 0
            for i, (entry_version, ops, encoded) in enumerate(
                self._log
            ):
                if entry_version > version:
                    continue
                targets = [
                    w
                    for w in self._workers
                    if w.version < entry_version
                ]
                if targets:
                    if encoded is None:
                        encoded = encode_value(
                            {
                                "kind": "delta",
                                "version": entry_version,
                                "ops": ops,
                            }
                        )
                        self._log[i] = (entry_version, ops, encoded)
                    for worker in targets:
                        worker.inbox.put(encoded)
                        shipped += 1
            self.stats.deltas_shipped += shipped
            for worker in self._workers:
                worker.version = max(worker.version, version)
            floor = min(w.version for w in self._workers)
            self._log = [e for e in self._log if e[0] > floor]

    # ------------------------------------------------------------------
    # Scatter
    # ------------------------------------------------------------------

    def scatter(
        self,
        select,
        text: str,
        bindings: Optional[Dict[str, object]],
        mode: str = "rows",
        pin=None,
        trace: bool = False,
    ) -> ScatterOutcome:
        """Run ``select`` (canonical ``text``, already stripped of
        ``unique``) across all shards at one pinned version.

        ``bindings`` values must be raw model values (unwrapped).
        With ``trace`` set, each worker arms its tracer for the task
        and ships its span tree back in the reply (untraced scatters
        ship zero span bytes). Raises :class:`Unscatterable` when the
        scatter cannot proceed; the caller falls back to serial
        execution.
        """
        if self._closed:
            raise Unscatterable("executor is closed")
        payload = {
            "kind": "scatter",
            "mode": mode,
            "query": text,
            "bindings": bindings or {},
        }
        if trace:
            payload["trace"] = True
        with self._lock:
            snap = pin if pin is not None else self.db.snapshot()
            try:
                self._prepare_workers(snap)
            except Unscatterable:
                raise
            except Exception as error:
                raise Unscatterable(f"worker preparation failed: {error}")
            if self._boundaries is None or self._rebalance_wanted:
                if self._boundaries is not None:
                    self.stats.rebalances += 1
                self._boundaries = compute_boundaries(
                    snap.all_oids(), self.shards
                )
                self._rebalance_wanted = False
            task_id = next(self._task_ids)
            slices = {}
            for worker in self._workers:
                lo, hi = slice_of(self._boundaries, worker.shard)
                slices[worker.shard] = (lo, hi)
                message = dict(payload)
                message.update(
                    task=task_id,
                    lo=lo,
                    hi=hi,
                    version=snap.version,
                )
                try:
                    encoded = encode_value(message)
                except Exception as error:
                    raise Unscatterable(
                        f"task not wire-encodable: {error}"
                    )
                worker.inbox.put(encoded)
            replies = self._gather(task_id, snap, select, bindings,
                                   slices, mode)
            return self._assemble(replies, mode, snap.version)

    def _gather(self, task_id, snap, select, bindings, slices, mode):
        pending = {w.shard for w in self._workers}
        replies: Dict[int, dict] = {}
        deadline = time.monotonic() + self.gather_timeout
        while pending:
            try:
                raw = self._outbox.get(timeout=0.2)
            except queue_module.Empty:
                dead = [
                    w.shard
                    for w in self._workers
                    if w.shard in pending and not w.alive()
                ]
                for shard in dead:
                    pending.discard(shard)
                    replies[shard] = self._failover(
                        shard, snap, select, bindings, slices[shard],
                        mode,
                    )
                if time.monotonic() > deadline:
                    # A stuck shard can mean a queue poisoned by a
                    # killed process; rebuild the whole worker pool
                    # (fresh queues included) rather than eating the
                    # timeout on every future scatter.
                    self._reset_workers()
                    raise Unscatterable(
                        f"scatter timed out waiting for shards"
                        f" {sorted(pending)}"
                    )
                continue
            reply = decode_value(raw)
            if reply.get("task") != task_id:
                continue  # stray reply from an abandoned scatter
            shard = reply.get("shard")
            if shard in pending:
                pending.discard(shard)
                replies[shard] = reply
        failed = [
            r for r in replies.values() if not r.get("ok")
        ]
        if failed:
            raise Unscatterable(
                f"shard error: {failed[0].get('error')}"
            )
        return replies

    def _failover(self, shard, snap, select, bindings, bounds, mode):
        """A dead shard's slice, re-executed serially on the pinned
        snapshot."""
        from ..query.planner import fetch_plan

        self.stats.shard_failovers += 1
        # The dead worker (queued deltas and all) is gone; the next
        # scatter respawns and re-bootstraps it from a fresh snapshot.
        lo, hi = bounds
        sliced = SlicedScope(snap, lo, hi)
        started = time.perf_counter()
        started_cpu = time.process_time()
        wrapped = {
            name: wrap_value(sliced, value)
            for name, value in (bindings or {}).items()
        }
        plan, hit, cache = fetch_plan(select, sliced)
        results = plan.execute(sliced, cache, wrapped, None, None)
        if not isinstance(results, list):
            results = [results]
        elapsed = time.perf_counter() - started
        cpu = time.process_time() - started_cpu
        class_name = select.bindings[0].source.class_name
        reply = {
            "task": None,
            "shard": shard,
            "ok": True,
            "mode": mode,
            "scanned": len(sliced.extent(class_name)),
            "returned": len(results),
            "elapsed": elapsed,
            "cpu": cpu,
            "plan_hit": hit,
            "lo": lo,
            "hi": hi,
            "failover": True,
            "version": snap.version,
        }
        if mode == "count":
            reply["count"] = len(results)
        else:
            reply["rows"] = [unwrap(value) for value in results]
        return reply

    def _assemble(self, replies, mode, version) -> ScatterOutcome:
        self.stats.scatters += 1
        rows: List[object] = []
        counts: List[int] = []
        shard_info = []
        scanned_values = []
        for shard in sorted(replies):
            reply = replies[shard]
            per = self.stats.per_shard[shard]
            per["tasks"] += 1
            per["rows"] += reply.get("returned", 0)
            per["busy_seconds"] += reply.get("elapsed", 0.0)
            per["cpu_seconds"] += reply.get(
                "cpu", reply.get("elapsed", 0.0)
            )
            if reply.get("plan_hit"):
                per["plan_hits"] += 1
            else:
                per["plan_misses"] += 1
            self.stats.tasks += 1
            scanned_values.append(reply.get("scanned", 0))
            shard_info.append(
                {
                    "shard": shard,
                    "pid": reply.get("pid"),
                    "lo": reply.get("lo"),
                    "hi": reply.get("hi"),
                    "scanned": reply.get("scanned", 0),
                    "returned": reply.get("returned", 0),
                    "elapsed": reply.get("elapsed", 0.0),
                    "cpu": reply.get("cpu"),
                    "plan_hit": bool(reply.get("plan_hit")),
                    "failover": bool(reply.get("failover")),
                    "spans": reply.get("spans"),
                }
            )
            if mode == "count":
                counts.append(reply.get("count", 0))
            else:
                shard_rows = reply.get("rows") or []
                rows.extend(shard_rows)
        self.stats.rows_gathered += len(rows) + sum(counts)
        if len(scanned_values) > 1 and sum(scanned_values):
            average = sum(scanned_values) / len(scanned_values)
            if (
                max(scanned_values) > REBALANCE_SKEW * average
                and sum(scanned_values) > self.min_scatter_extent
            ):
                self._rebalance_wanted = True
        return ScatterOutcome(mode, rows, counts, shard_info, version)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def _reset_workers(self) -> None:
        """Terminate every worker and discard all queues; the next
        scatter spawns and bootstraps a clean pool."""
        for worker in self._workers:
            if worker.process is not None:
                if worker.process.is_alive():
                    worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.process = None
            worker.inbox = None
            worker.version = -1
        self._outbox = self._ctx.Queue()

    def alive_workers(self) -> int:
        return sum(1 for w in self._workers if w.alive())

    def rebalance(self) -> None:
        """Recompute partition boundaries at the next scatter."""
        self._rebalance_wanted = True

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._unsubscribe()
        self._remove_hook()
        for worker in self._workers:
            if worker.alive():
                try:
                    worker.inbox.put(
                        encode_value({"kind": "stop"})
                    )
                except Exception:
                    pass
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
        if getattr(self.db, "_shard_executor", None) is self:
            self.db._shard_executor = None


def attach_executor(db, shards: int, **kwargs) -> ShardExecutor:
    """Attach a :class:`ShardExecutor` to ``db`` (replacing any
    existing one); ``db.query`` and every planner entry point scatter
    eligible queries from now on."""
    existing = getattr(db, "_shard_executor", None)
    if existing is not None:
        existing.close()
    executor = ShardExecutor(db, shards, **kwargs)
    db._shard_executor = executor
    return executor


def executor_of(scope):
    """``(executor, provider database-or-snapshot)`` serving ``scope``,
    or ``(None, None)``.

    A :class:`Database` carries its executor directly; a
    ``DatabaseSnapshot`` borrows its origin's (the scatter pins the
    snapshot's own version); a single-provider view borrows its base
    database's (eligibility is checked separately).
    """
    marker = getattr(scope, "_shard_executor", _MISSING)
    if marker is not _MISSING:
        # An explicit None (SlicedScope, a closed attach) means "never
        # scatter from here" — do not fall through to origin/providers.
        return (marker, scope) if marker is not None else (None, None)
    origin = getattr(scope, "origin", None)
    if origin is not None:
        executor = getattr(origin, "_shard_executor", None)
        if executor is not None:
            return executor, scope  # pin the snapshot itself
    providers = getattr(scope, "_providers", None)
    if providers is not None and len(providers) == 1:
        provider = providers[0]
        executor = getattr(provider, "_shard_executor", None)
        if executor is not None:
            return executor, provider
    return None, None
