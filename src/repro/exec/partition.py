"""Oid-range partitioning for sharded scatter–gather execution.

Shards own *contiguous ranges of the total oid order* (``Oid`` orders
as the ``(space, number)`` tuple). Contiguity is what makes the gather
step trivial and exact: a serial scan visits candidates in sorted oid
order, so concatenating per-shard results *in shard order* reproduces
the serial visit order — the coordinator only re-applies the global
set-semantics dedup (first occurrence wins) and the ``unique`` check.

Boundaries are computed once from a snapshot by splitting the sorted
oid list into equal runs (:func:`compute_boundaries`); the last shard
is unbounded above, so freshly allocated oids (monotone per database)
always land in it and the cross-shard ordering invariant can never be
violated by growth. A skewed scatter triggers a rebalance, which just
recomputes the boundaries — slice bounds travel with every task, so
no worker state needs rebuilding.

:class:`SlicedScope` is the worker-side (and failover-side) view of a
scope restricted to one oid range: ``extent()`` filters to
``[lo, hi)``; everything else — schema, indexes, object access, class
membership, navigation — delegates unchanged, so path expressions and
membership tests see the *whole* database while the scan variable
ranges only over the slice.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..engine.oid import EMPTY_OID_SET, Oid, OidSet

Bound = Optional[Oid]  # None = unbounded on that side


def compute_boundaries(oids, shards: int) -> List[Bound]:
    """Lower bounds of each shard: ``[None, b1, ..., b_{n-1}]``.

    Shard ``i`` owns ``[bounds[i], bounds[i+1])`` with the first shard
    unbounded below and the last unbounded above. ``oids`` must be an
    iterable in sorted order (``all_oids()`` guarantees that).
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    ordered = list(oids)
    bounds: List[Bound] = [None]
    if shards == 1 or not ordered:
        return bounds + [None] * (shards - 1)
    step = len(ordered) / shards
    previous = None
    for i in range(1, shards):
        candidate = ordered[min(int(step * i), len(ordered) - 1)]
        # Boundaries must strictly increase; duplicates would make a
        # shard own an empty range *and* break the [lo, hi) contract.
        if previous is not None and candidate <= previous:
            candidate = previous
        bounds.append(candidate)
        previous = candidate
    return bounds


def slice_of(bounds: List[Bound], shard: int) -> Tuple[Bound, Bound]:
    """The ``(lo, hi)`` oid range shard ``shard`` owns."""
    lo = bounds[shard]
    hi = bounds[shard + 1] if shard + 1 < len(bounds) else None
    return lo, hi


def in_slice(oid: Oid, lo: Bound, hi: Bound) -> bool:
    if lo is not None and oid < lo:
        return False
    if hi is not None and oid >= hi:
        return False
    return True


class SlicedScope:
    """A scope whose class extents are restricted to one oid range.

    Wraps any Scope (a worker's replica database, or a pinned snapshot
    during failover). Only ``extent`` is overridden; every other
    attribute delegates to the target, so attribute navigation,
    ``is_member`` tests and index probes observe the full database —
    slicing applies to what the scan variable ranges over, which is
    exactly the work being partitioned.

    Carries its own plan cache (attached lazily by ``plan_cache_of``),
    validated against the target's schema/index versions — so shipped
    DDL invalidates worker-local scatter plans the same way it
    invalidates coordinator plans.
    """

    # Never scatter from inside a slice (guards recursion when the
    # failover path plans a slice of a scope that has an executor).
    _shard_executor = None

    def __init__(self, target, lo: Bound = None, hi: Bound = None):
        self._target = target
        self._lo = lo
        self._hi = hi
        self._extent_cache = {}

    def set_slice(self, lo: Bound, hi: Bound) -> None:
        self._lo = lo
        self._hi = hi

    @property
    def scope_name(self) -> str:
        return self._target.scope_name

    def extent(self, class_name: str, deep: bool = True) -> OidSet:
        version = getattr(self._target, "store_version", None)
        key = (class_name, deep, version, self._lo, self._hi)
        if version is not None:
            cached = self._extent_cache.get(key)
            if cached is not None:
                return cached
        full = self._target.extent(class_name, deep)
        lo, hi = self._lo, self._hi
        if lo is None and hi is None:
            sliced = full
        else:
            members = [oid for oid in full if in_slice(oid, lo, hi)]
            sliced = OidSet.of(members) if members else EMPTY_OID_SET
        if version is not None:
            if len(self._extent_cache) > 64:
                self._extent_cache.clear()
            self._extent_cache[key] = sliced
        return sliced

    def __getattr__(self, name):
        return getattr(self._target, name)
