"""The relational substrate: relations, algebra, a SQL subset,
relational views (the paper's §3 baseline) and the relational→object
bridge (§5's flagship imaginary-object application)."""

from .algebra import (
    difference,
    natural_join,
    product,
    project,
    rename,
    select,
    union,
)
from .bridge import RelationalAdapter, snapshot_database
from .relation import Relation, RelationalDatabase
from .sql import execute
from .views import RelationalView, define_view, projection_view

__all__ = [
    "Relation",
    "RelationalAdapter",
    "RelationalDatabase",
    "RelationalView",
    "define_view",
    "difference",
    "execute",
    "natural_join",
    "product",
    "project",
    "projection_view",
    "rename",
    "select",
    "snapshot_database",
    "union",
]
