"""A small SQL subset over the relational substrate.

Supported statements::

    CREATE TABLE Employee (Name, Number, Age, Salary)
    INSERT INTO Employee VALUES ('Maggy', 1, 65, 100000)
    SELECT Name, Age FROM Employee WHERE Age >= 21 AND Name != 'Bob'
    DELETE FROM Employee WHERE Number = 1
    UPDATE Employee SET Salary = 0 WHERE Age < 18

Keywords are case-insensitive here (SQL convention), unlike the
object query dialect. The executor returns a
:class:`~repro.relational.relation.Relation` for SELECT and an affected
row count otherwise.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..errors import RelationalError
from .relation import Relation, RelationalDatabase

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_#]*)
  | (?P<op><=|>=|<>|!=|[(),=<>*])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise RelationalError(f"bad SQL at {text[pos:pos + 10]!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "string":
            value = value[1:-1].replace("''", "'")
        tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


class _Cursor:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        if token[0] != "eof":
            self.pos += 1
        return token

    def accept_word(self, word: str) -> bool:
        kind, value = self.peek()
        if kind == "ident" and value.upper() == word:
            self.next()
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            raise RelationalError(
                f"expected {word}, found {self.peek()[1]!r}"
            )

    def expect_ident(self) -> str:
        kind, value = self.peek()
        if kind != "ident":
            raise RelationalError(f"expected identifier, found {value!r}")
        self.next()
        return value

    def accept_op(self, op: str) -> bool:
        kind, value = self.peek()
        if kind == "op" and value == op:
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise RelationalError(
                f"expected {op!r}, found {self.peek()[1]!r}"
            )


def execute(db: RelationalDatabase, sql: str):
    """Parse and run one SQL statement against ``db``."""
    cursor = _Cursor(_tokenize(sql))
    kind, value = cursor.peek()
    if kind != "ident":
        raise RelationalError(f"expected a statement, found {value!r}")
    word = value.upper()
    if word == "CREATE":
        return _create(db, cursor)
    if word == "INSERT":
        return _insert(db, cursor)
    if word == "SELECT":
        return _select(db, cursor)
    if word == "DELETE":
        return _delete(db, cursor)
    if word == "UPDATE":
        return _update(db, cursor)
    raise RelationalError(f"unsupported statement: {word}")


def _create(db: RelationalDatabase, cursor: _Cursor) -> int:
    cursor.expect_word("CREATE")
    cursor.expect_word("TABLE")
    name = cursor.expect_ident()
    cursor.expect_op("(")
    columns = [cursor.expect_ident()]
    while cursor.accept_op(","):
        columns.append(cursor.expect_ident())
    cursor.expect_op(")")
    db.create_relation(name, columns)
    return 0


def _insert(db: RelationalDatabase, cursor: _Cursor) -> int:
    cursor.expect_word("INSERT")
    cursor.expect_word("INTO")
    relation = db.relation(cursor.expect_ident())
    cursor.expect_word("VALUES")
    cursor.expect_op("(")
    values = [_literal(cursor)]
    while cursor.accept_op(","):
        values.append(_literal(cursor))
    cursor.expect_op(")")
    relation.insert(*values)
    return 1


def _select(db: RelationalDatabase, cursor: _Cursor) -> Relation:
    cursor.expect_word("SELECT")
    star = cursor.accept_op("*")
    columns: List[str] = []
    if not star:
        columns.append(cursor.expect_ident())
        while cursor.accept_op(","):
            columns.append(cursor.expect_ident())
    cursor.expect_word("FROM")
    relation = db.relation(cursor.expect_ident())
    predicate = _where(cursor)
    if star:
        columns = list(relation.columns)
    result = Relation("result", columns)
    seen = set()
    for values in relation.dicts():
        if predicate is not None and not predicate(values):
            continue
        row = tuple(values[c] for c in columns)
        if row in seen:
            continue
        seen.add(row)
        result.insert(*row)
    return result


def _delete(db: RelationalDatabase, cursor: _Cursor) -> int:
    cursor.expect_word("DELETE")
    cursor.expect_word("FROM")
    relation = db.relation(cursor.expect_ident())
    predicate = _where(cursor) or (lambda _values: True)
    return relation.delete_where(predicate)


def _update(db: RelationalDatabase, cursor: _Cursor) -> int:
    cursor.expect_word("UPDATE")
    relation = db.relation(cursor.expect_ident())
    cursor.expect_word("SET")
    assignments: Dict[str, object] = {}
    while True:
        column = cursor.expect_ident()
        cursor.expect_op("=")
        assignments[column] = _literal(cursor)
        if not cursor.accept_op(","):
            break
    predicate = _where(cursor) or (lambda _values: True)
    return relation.update_where(predicate, **assignments)


def _where(cursor: _Cursor):
    if not cursor.accept_word("WHERE"):
        return None
    conditions = [_condition(cursor)]
    while cursor.accept_word("AND"):
        conditions.append(_condition(cursor))

    def predicate(values: Dict[str, object]) -> bool:
        return all(c(values) for c in conditions)

    return predicate


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


def _condition(cursor: _Cursor):
    column = cursor.expect_ident()
    kind, op = cursor.next()
    if kind != "op" or op not in _OPS:
        raise RelationalError(f"expected a comparison, found {op!r}")
    literal = _literal(cursor)
    compare = _OPS[op]

    def test(values: Dict[str, object]) -> bool:
        if column not in values:
            raise RelationalError(f"unknown column {column!r}")
        return compare(values[column], literal)

    return test


def _literal(cursor: _Cursor):
    kind, value = cursor.next()
    if kind == "number":
        return float(value) if "." in value else int(value)
    if kind == "string":
        return value
    if kind == "ident" and value.upper() == "NULL":
        return None
    raise RelationalError(f"expected a literal, found {value!r}")
