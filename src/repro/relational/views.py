"""Relational views: the baseline §3 argues against.

A :class:`RelationalView` is a stored select/project query — the
classic relational view. Its result is cached against the base
relation's version counter, so repeated access recomputes only when
the base actually changed (the relational analogue of the view
system's dependency-tracked population caches). It exists to make the
paper's §3 argument measurable (experiment E7):

- ``projection_view`` must *enumerate* the visible columns, so hiding
  one attribute couples the view definition to the full schema: when a
  column is added, the definition must be edited
  (:meth:`RelationalView.refresh_columns` models that maintenance);
- applied to data flattened from an object hierarchy, projection also
  drops subclass-specific attributes (a ``Manager``'s ``Budget``),
  which the object-oriented ``hide`` preserves.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from .algebra import project, select
from .relation import Relation, RelationalDatabase


class RelationalView:
    """A named relational view, cached on the base's version."""

    def __init__(
        self,
        name: str,
        base: Relation,
        columns: Sequence[str],
        predicate: Optional[Callable[[Dict[str, object]], bool]] = None,
    ):
        self.name = name
        self._base = base
        self.columns = list(columns)
        self._predicate = predicate
        # Result cache: (base version, column tuple) -> materialized
        # projection. A column-list edit (refresh_columns) changes the
        # key, so stale definitions never serve stale rows.
        self._cache_key: Optional[tuple] = None
        self._cache_rows: Optional[Relation] = None
        # Cache behaviour counters (mirrors ViewStats for E13).
        self.cache_hits = 0
        self.recomputes = 0
        # Maintenance bookkeeping for experiment E7.
        self.definition_edits = 0

    def rows(self) -> Relation:
        key = (self._base.version, tuple(self.columns))
        if self._cache_rows is not None and self._cache_key == key:
            self.cache_hits += 1
            return self._cache_rows
        source = self._base
        if self._predicate is not None:
            source = select(source, self._predicate)
        result = project(source, self.columns, name=self.name)
        self.recomputes += 1
        self._cache_key = key
        self._cache_rows = result
        return result

    def refresh_columns(self, hidden: Sequence[str]) -> int:
        """Re-derive the column list from the (possibly changed) base
        schema, keeping ``hidden`` columns out.

        Returns the number of definition edits performed (0 when the
        stored definition was already correct). This is the maintenance
        the paper calls "cumbersome": every base-schema change forces
        an edit even though the *intent* (hide these columns) did not
        change.
        """
        wanted = [c for c in self._base.columns if c not in set(hidden)]
        if wanted != self.columns:
            self.columns = wanted
            self.definition_edits += 1
            return 1
        return 0


def projection_view(
    name: str,
    base: Relation,
    hidden: Sequence[str],
) -> RelationalView:
    """Define a view hiding ``hidden`` by enumerating the others —
    exactly the ``A_Relational_View`` of §3."""
    hidden_set = set(hidden)
    for column in hidden:
        base.column_index(column)
    visible = [c for c in base.columns if c not in hidden_set]
    return RelationalView(name, base, visible)


def define_view(
    db: RelationalDatabase,
    name: str,
    base_name: str,
    columns: Sequence[str],
    predicate: Optional[Callable[[Dict[str, object]], bool]] = None,
) -> RelationalView:
    base = db.relation(base_name)
    for column in columns:
        base.column_index(column)
    return RelationalView(name, base, columns, predicate)
