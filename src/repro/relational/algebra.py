"""Relational algebra over :class:`~repro.relational.relation.Relation`.

Operators return fresh (anonymous) relations. ``project`` is the
operator the paper's §3 critiques as a hiding primitive: it keeps
exactly the named columns and drops everything else — including the
attributes relational modelling flattens in from what would be
subclasses in an object model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import RelationalError
from .relation import Relation


def select(relation: Relation, predicate: Callable[[Dict[str, object]], bool],
           name: str = "") -> Relation:
    """σ: the rows satisfying the predicate."""
    result = Relation(name or f"select({relation.name})", relation.columns)
    for values in relation.dicts():
        if predicate(values):
            result.insert(**values)
    return result


def project(relation: Relation, columns: Sequence[str], name: str = "") -> Relation:
    """π: keep exactly ``columns`` (duplicates eliminated)."""
    for column in columns:
        relation.column_index(column)
    result = Relation(name or f"project({relation.name})", columns)
    seen = set()
    for values in relation.dicts():
        row = tuple(values[c] for c in columns)
        if row in seen:
            continue
        seen.add(row)
        result.insert(*row)
    return result


def rename(relation: Relation, mapping: Dict[str, str], name: str = "") -> Relation:
    """ρ: rename columns."""
    columns = [mapping.get(c, c) for c in relation.columns]
    result = Relation(name or f"rename({relation.name})", columns)
    for row in relation.rows():
        result.insert(*row)
    return result


def union(first: Relation, second: Relation, name: str = "") -> Relation:
    if first.columns != second.columns:
        raise RelationalError(
            f"union over different schemas: {first.columns} vs"
            f" {second.columns}"
        )
    result = Relation(name or f"union({first.name},{second.name})", first.columns)
    seen = set()
    for relation in (first, second):
        for row in relation.rows():
            if row in seen:
                continue
            seen.add(row)
            result.insert(*row)
    return result


def difference(first: Relation, second: Relation, name: str = "") -> Relation:
    if first.columns != second.columns:
        raise RelationalError("difference over different schemas")
    other = set(second.rows())
    result = Relation(name or f"diff({first.name},{second.name})", first.columns)
    for row in first.rows():
        if row not in other:
            result.insert(*row)
    return result


def natural_join(first: Relation, second: Relation, name: str = "") -> Relation:
    """⋈: join on all shared column names (hash join on the shared key)."""
    shared = [c for c in first.columns if c in second.columns]
    extra = [c for c in second.columns if c not in shared]
    columns = list(first.columns) + extra
    result = Relation(name or f"join({first.name},{second.name})", columns)
    index: Dict[tuple, List[Dict[str, object]]] = {}
    for values in second.dicts():
        key = tuple(values[c] for c in shared)
        index.setdefault(key, []).append(values)
    for values in first.dicts():
        key = tuple(values[c] for c in shared)
        for match in index.get(key, ()):
            merged = dict(values)
            merged.update({c: match[c] for c in extra})
            result.insert(**merged)
    return result


def product(first: Relation, second: Relation, name: str = "") -> Relation:
    """×: Cartesian product (columns must not overlap)."""
    overlap = set(first.columns) & set(second.columns)
    if overlap:
        raise RelationalError(f"product with shared columns: {sorted(overlap)}")
    columns = list(first.columns) + list(second.columns)
    result = Relation(name or f"product({first.name},{second.name})", columns)
    second_rows = list(second.rows())
    for left in first.rows():
        for right in second_rows:
            result.insert(*(left + right))
    return result
