"""The relational→object bridge.

§5 of the paper lists as the first application of imaginary objects
"creating an object-oriented view of a relational database. Typically,
this means creating new objects from database tuples."

:class:`RelationalAdapter` implements exactly that idea one level down:
it is a :class:`~repro.engine.objects.Scope` that presents each
relation as a class and each row as an object, with the same stable
tuple→oid identity discipline imaginary classes use. Views can then
import the adapter like any database and build virtual/imaginary
classes on top (see ``examples/relational_bridge.py``).

Relation mutations surface as object events, so materialized virtual
classes over relational data maintain themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine.database import Database
from ..engine.events import EventBus, ObjectCreated, ObjectDeleted
from ..engine.objects import ObjectHandle, Scope
from ..engine.oid import EMPTY_OID_SET, Oid, OidGenerator, OidSet
from ..engine.schema import AttributeDef, Schema
from ..engine.values import canonicalize
from ..errors import UnknownOidError
from .relation import Relation, RelationalDatabase


class _RelationMirror:
    """Identity table and live population for one relation."""

    def __init__(self, adapter_name: str, relation: Relation):
        self.relation = relation
        self.space = f"{adapter_name}/{relation.name}"
        self._oids = OidGenerator(self.space)
        self._by_row: Dict[object, Oid] = {}
        self._values: Dict[Oid, Dict[str, object]] = {}
        self.current: set = set()

    def oid_for(self, row) -> Oid:
        values = self.relation.row_dict(row)
        key = canonicalize(values)
        oid = self._by_row.get(key)
        if oid is None:
            oid = self._oids.fresh()
            self._by_row[key] = oid
            self._values[oid] = values
        return oid

    def value(self, oid: Oid) -> Dict[str, object]:
        value = self._values.get(oid)
        if value is None:
            raise UnknownOidError(oid)
        return value

    def knows(self, oid: Oid) -> bool:
        return oid in self._values


class RelationalAdapter(Scope):
    """Expose a relational database as an object scope."""

    def __init__(self, reldb: RelationalDatabase):
        self._reldb = reldb
        self._name = reldb.name
        self._schema = Schema()
        self._mirrors: Dict[str, _RelationMirror] = {}
        self._events = EventBus()
        for relation in reldb:
            self._mount(relation)

    # ------------------------------------------------------------------

    def _mount(self, relation: Relation) -> None:
        self._schema.define_class(
            relation.name,
            (),
            {
                column: AttributeDef(column, None)
                for column in relation.columns
            },
            doc=f"relation {relation.name}",
        )
        mirror = _RelationMirror(self._name, relation)
        self._mirrors[relation.name] = mirror
        for row in relation.rows():
            oid = mirror.oid_for(row)
            mirror.current.add(oid)
        relation.observe(
            lambda kind, row, _m=mirror, _r=relation: self._on_mutation(
                _m, _r, kind, row
            )
        )

    def refresh(self) -> None:
        """Mount relations created after the adapter (schema evolution)."""
        for relation in self._reldb:
            if relation.name not in self._mirrors:
                self._mount(relation)

    def _on_mutation(
        self, mirror: _RelationMirror, relation: Relation, kind: str, row
    ) -> None:
        oid = mirror.oid_for(row)
        if kind == "insert":
            mirror.current.add(oid)
            self._events.publish(
                ObjectCreated(self._name, relation.name, oid)
            )
        else:
            mirror.current.discard(oid)
            self._events.publish(
                ObjectDeleted(self._name, relation.name, oid)
            )

    # ------------------------------------------------------------------
    # Scope protocol
    # ------------------------------------------------------------------

    @property
    def scope_name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def events(self) -> EventBus:
        return self._events

    def class_of(self, oid: Oid) -> str:
        for name, mirror in self._mirrors.items():
            if mirror.knows(oid):
                return name
        raise UnknownOidError(oid)

    def contains_oid(self, oid: Oid) -> bool:
        return any(m.knows(oid) for m in self._mirrors.values())

    def raw_value(self, oid: Oid) -> Dict[str, object]:
        for mirror in self._mirrors.values():
            if mirror.knows(oid):
                return mirror.value(oid)
        raise UnknownOidError(oid)

    def resolve_attribute_for(self, oid: Oid, attribute: str) -> AttributeDef:
        return self._schema.resolve_attribute(self.class_of(oid), attribute)

    def is_member(self, oid: Oid, class_name: str) -> bool:
        mirror = self._mirrors.get(class_name)
        return mirror is not None and oid in mirror.current

    def extent(self, class_name: str, deep: bool = True) -> OidSet:
        self._schema.require(class_name)
        mirror = self._mirrors[class_name]
        if not mirror.current:
            return EMPTY_OID_SET
        return OidSet.of(mirror.current)

    def handles(self, class_name: str, deep: bool = True) -> List[ObjectHandle]:
        return [self.get(oid) for oid in self.extent(class_name, deep)]


def snapshot_database(reldb: RelationalDatabase, name: Optional[str] = None) -> Database:
    """Copy a relational database into a plain object database
    (one class per relation, one object per row). A one-shot import —
    later relational updates are not reflected; use
    :class:`RelationalAdapter` for a live bridge."""
    db = Database(name or f"{reldb.name}_objects")
    for relation in reldb:
        db.define_class(
            relation.name,
            attributes={
                column: AttributeDef(column, None)
                for column in relation.columns
            },
        )
        for values in relation.dicts():
            db.create(relation.name, values)
    return db
