"""Relations: named, typed, row-oriented tables.

A deliberately small relational engine, used two ways by the
reproduction:

- as the *baseline* in experiment E7 (§3 of the paper shows relational
  projection is the wrong hiding primitive for objects);
- as the substrate for the paper's flagship imaginary-object
  application, "creating an object-oriented view of a relational
  database" (§5) — see :mod:`repro.relational.bridge`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from ..errors import RelationalError

Row = Tuple[object, ...]


class Relation:
    """A named relation with a fixed column list."""

    def __init__(self, name: str, columns: Sequence[str]):
        if len(set(columns)) != len(columns):
            raise RelationalError(f"duplicate columns in {name!r}")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self._index = {c: i for i, c in enumerate(self.columns)}
        self._rows: List[Row] = []
        self._observers: List[Callable[[str, Row], None]] = []
        # Bumped on every mutation (rows or schema); views key their
        # caches on it so an untouched base never forces a recompute.
        self.version = 0

    # ------------------------------------------------------------------

    def column_index(self, column: str) -> int:
        index = self._index.get(column)
        if index is None:
            raise RelationalError(
                f"relation {self.name!r} has no column {column!r}"
            )
        return index

    def add_column(self, column: str, default=None) -> None:
        """Schema evolution: append a column, filling existing rows
        with ``default``."""
        if column in self._index:
            raise RelationalError(
                f"column already exists: {column!r}"
            )
        self.columns = self.columns + (column,)
        self._index[column] = len(self.columns) - 1
        self._rows = [row + (default,) for row in self._rows]
        self.version += 1

    def observe(self, callback: Callable[[str, Row], None]) -> Callable[[], None]:
        """Register a mutation observer: called with ("insert"|"delete",
        row). Updates are delete+insert."""
        self._observers.append(callback)

        def unobserve():
            try:
                self._observers.remove(callback)
            except ValueError:
                pass

        return unobserve

    def _notify(self, kind: str, row: Row) -> None:
        for observer in list(self._observers):
            observer(kind, row)

    # ------------------------------------------------------------------

    def insert(self, *values, **named) -> Row:
        """Insert a row, positionally or by column name."""
        if values and named:
            raise RelationalError("mix of positional and named values")
        if named:
            missing = set(self.columns) - set(named)
            extra = set(named) - set(self.columns)
            if extra:
                raise RelationalError(f"unknown columns: {sorted(extra)}")
            row = tuple(named.get(c) for c in self.columns)
            del missing  # unset columns default to None
        else:
            if len(values) != len(self.columns):
                raise RelationalError(
                    f"{self.name!r} expects {len(self.columns)} values,"
                    f" got {len(values)}"
                )
            row = tuple(values)
        self._rows.append(row)
        self.version += 1
        self._notify("insert", row)
        return row

    def delete_where(self, predicate: Callable[[Dict[str, object]], bool]) -> int:
        """Delete rows matching a predicate over named values."""
        kept: List[Row] = []
        deleted = 0
        for row in self._rows:
            if predicate(self.row_dict(row)):
                deleted += 1
                self._notify("delete", row)
            else:
                kept.append(row)
        self._rows = kept
        if deleted:
            self.version += 1
        return deleted

    def update_where(
        self,
        predicate: Callable[[Dict[str, object]], bool],
        **assignments,
    ) -> int:
        """Update matching rows (observers see delete+insert)."""
        for column in assignments:
            self.column_index(column)
        updated = 0
        new_rows: List[Row] = []
        for row in self._rows:
            values = self.row_dict(row)
            if predicate(values):
                values.update(assignments)
                new_row = tuple(values[c] for c in self.columns)
                self._notify("delete", row)
                self._notify("insert", new_row)
                new_rows.append(new_row)
                updated += 1
            else:
                new_rows.append(row)
        self._rows = new_rows
        if updated:
            self.version += 1
        return updated

    # ------------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        return iter(list(self._rows))

    def row_dict(self, row: Row) -> Dict[str, object]:
        return dict(zip(self.columns, row))

    def dicts(self) -> Iterator[Dict[str, object]]:
        for row in self.rows():
            yield self.row_dict(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return self.rows()


class RelationalDatabase:
    """A named collection of relations."""

    def __init__(self, name: str):
        self.name = name
        self._relations: Dict[str, Relation] = {}

    def create_relation(self, name: str, columns: Sequence[str]) -> Relation:
        if name in self._relations:
            raise RelationalError(f"relation already exists: {name!r}")
        relation = Relation(name, columns)
        self._relations[name] = relation
        return relation

    def drop_relation(self, name: str) -> None:
        if name not in self._relations:
            raise RelationalError(f"unknown relation: {name!r}")
        del self._relations[name]

    def relation(self, name: str) -> Relation:
        relation = self._relations.get(name)
        if relation is None:
            raise RelationalError(f"unknown relation: {name!r}")
        return relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())
