"""Attribute indexes.

A hash index over one stored attribute of one class (and its
subclasses). Indexes subscribe to the database's event bus and stay
consistent under creates, updates and deletes. Query evaluation uses
them for equality predicates on indexed attributes; parameterized
classes (§4.2, ``Resident(X)``) use them to enumerate the non-empty
parameter values cheaply.

:class:`OrderedAttributeIndex` extends the hash index with sorted key
lists so the planner can serve ``<``/``<=``/``>``/``>=``/range
predicates with a ``bisect`` scan instead of a full extent walk.
Numeric and string keys are kept in separate sorted lists (the model
does not order values across types); booleans and structured values
stay equality-only.

Every index keeps an oid→key reverse map, so deletes (where the
object's values are already gone) are O(1) instead of a scan over
every bucket.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import SchemaError
from .database import Database
from .events import (
    Event,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from .oid import EMPTY_OID_SET, Oid, OidSet
from .values import canonicalize


class AttributeIndex:
    """Hash index: canonical attribute value → set of member oids."""

    def __init__(self, database: Database, class_name: str, attribute: str):
        adef = database.schema.resolve_attribute(class_name, attribute)
        if adef.is_computed():
            raise SchemaError(
                f"cannot index computed attribute"
                f" {class_name}.{attribute}"
            )
        self._db = database
        self._class_name = class_name
        self._attribute = attribute
        self._entries: Dict[object, Set[Oid]] = {}
        self._oid_keys: Dict[Oid, object] = {}
        self._unsubscribe = database.events.subscribe(self._on_event)
        self._rebuild()

    @property
    def class_name(self) -> str:
        return self._class_name

    @property
    def attribute(self) -> str:
        return self._attribute

    def lookup(self, value) -> OidSet:
        """Oids of members whose attribute equals ``value``."""
        members = self._entries.get(canonicalize(value))
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def distinct_values_count(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterable[object]:
        return self._entries.keys()

    def drop(self) -> None:
        """Detach the index from the event bus."""
        self._unsubscribe()
        self._entries.clear()
        self._oid_keys.clear()

    # ------------------------------------------------------------------

    def _covers(self, class_name: str) -> bool:
        return self._db.schema.isa(class_name, self._class_name)

    def _rebuild(self) -> None:
        self._entries.clear()
        self._oid_keys.clear()
        for oid in self._db.extent(self._class_name, deep=True):
            self._insert(oid)

    def _insert(self, oid: Oid) -> None:
        value = self._db.raw_value(oid).get(self._attribute)
        if value is None:
            return
        self._add(oid, value)

    def _add(self, oid: Oid, value) -> None:
        key = canonicalize(value)
        bucket = self._entries.get(key)
        if bucket is None:
            bucket = self._entries[key] = set()
            self._key_added(key)
        bucket.add(oid)
        self._oid_keys[oid] = key

    def _discard(self, oid: Oid) -> None:
        key = self._oid_keys.pop(oid, None)
        if key is None:
            return
        bucket = self._entries.get(key)
        if bucket is None:
            return
        bucket.discard(oid)
        if not bucket:
            del self._entries[key]
            self._key_removed(key)

    # Hooks for ordered subclasses: called exactly when a bucket is
    # created / becomes empty, with the canonical key.

    def _key_added(self, key) -> None:
        pass

    def _key_removed(self, key) -> None:
        pass

    def _on_event(self, event: Event) -> None:
        if isinstance(event, ObjectCreated) and self._covers(event.class_name):
            self._insert(event.oid)
        elif isinstance(event, ObjectUpdated):
            if event.attribute != self._attribute:
                return
            if not self._covers(event.class_name):
                return
            self._discard(event.oid)
            if event.new_value is not None:
                self._add(event.oid, event.new_value)
        elif isinstance(event, ObjectDeleted) and self._covers(event.class_name):
            # The object's values are already gone; the reverse map
            # still knows its key.
            self._discard(event.oid)


class OrderedAttributeIndex(AttributeIndex):
    """A hash index that also keeps its keys sorted for range scans.

    Canonical keys tag the value's type (``("n", float)`` for numbers,
    ``("a", str)`` for strings, …); the sorted lists hold the bare
    payloads per type so ``bisect`` never compares across types.
    """

    def __init__(self, database: Database, class_name: str, attribute: str):
        self._numeric_keys: List[float] = []
        self._string_keys: List[str] = []
        super().__init__(database, class_name, attribute)

    def _rebuild(self) -> None:
        self._numeric_keys.clear()
        self._string_keys.clear()
        super()._rebuild()

    def _key_added(self, key) -> None:
        tag = key[0]
        if tag == "n":
            insort(self._numeric_keys, key[1])
        elif tag == "a":
            insort(self._string_keys, key[1])

    def _key_removed(self, key) -> None:
        tag = key[0]
        if tag == "n":
            _sorted_discard(self._numeric_keys, key[1])
        elif tag == "a":
            _sorted_discard(self._string_keys, key[1])

    def drop(self) -> None:
        super().drop()
        self._numeric_keys.clear()
        self._string_keys.clear()

    def range_lookup(
        self,
        low=None,
        high=None,
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> OidSet:
        """Oids whose attribute falls in the (half-)open interval.

        Bounds must be both numeric or both strings; ``None`` leaves
        that side unbounded (at least one bound is required).
        """
        bound = low if low is not None else high
        if bound is None:
            raise ValueError("range_lookup needs at least one bound")
        if isinstance(bound, bool):
            return EMPTY_OID_SET  # booleans are not ordered
        if isinstance(bound, (int, float)):
            keys = self._numeric_keys
            tag = "n"
        elif isinstance(bound, str):
            keys = self._string_keys
            tag = "a"
        else:
            return EMPTY_OID_SET
        if low is None:
            start = 0
        elif low_strict:
            start = bisect_right(keys, low)
        else:
            start = bisect_left(keys, low)
        if high is None:
            stop = len(keys)
        elif high_strict:
            stop = bisect_left(keys, high)
        else:
            stop = bisect_right(keys, high)
        if start >= stop:
            return EMPTY_OID_SET
        members: Set[Oid] = set()
        entries = self._entries
        for payload in keys[start:stop]:
            members.update(entries[(tag, payload)])
        return OidSet.of(members)


def _sorted_discard(keys: list, value) -> None:
    position = bisect_left(keys, value)
    if position < len(keys) and keys[position] == value:
        del keys[position]


class IndexManager:
    """Registry of attribute indexes for one database.

    Alongside the primary ``(class, attribute)`` map a secondary
    attribute→indexes map is kept, so :meth:`find` touches only the
    indexes that could possibly serve a lookup instead of scanning
    the whole registry per miss. A version counter ticks on every
    create/drop; the query planner's cached plans are validated
    against it.
    """

    def __init__(self, database: Database):
        self._db = database
        self._indexes: Dict[Tuple[str, str], AttributeIndex] = {}
        self._by_attribute: Dict[
            str, Dict[Tuple[str, str], AttributeIndex]
        ] = {}
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    def create_index(
        self, class_name: str, attribute: str, kind: str = "hash"
    ) -> AttributeIndex:
        if kind not in ("hash", "ordered"):
            raise SchemaError(f"unknown index kind: {kind!r}")
        key = (class_name, attribute)
        existing = self._indexes.get(key)
        if existing is not None:
            if kind == "hash" or isinstance(existing, OrderedAttributeIndex):
                return existing
            # Upgrade: an ordered index answers everything the hash
            # index does, so replace rather than refuse.
            self.drop_index(class_name, attribute)
        factory = (
            OrderedAttributeIndex if kind == "ordered" else AttributeIndex
        )
        index = factory(self._db, class_name, attribute)
        self._indexes[key] = index
        self._by_attribute.setdefault(attribute, {})[key] = index
        self._version += 1
        return index

    def drop_index(self, class_name: str, attribute: str) -> None:
        index = self._indexes.pop((class_name, attribute), None)
        if index is not None:
            index.drop()
            bucket = self._by_attribute.get(attribute)
            if bucket is not None:
                bucket.pop((class_name, attribute), None)
                if not bucket:
                    del self._by_attribute[attribute]
            self._version += 1

    def find(self, class_name: str, attribute: str) -> Optional[AttributeIndex]:
        """An index usable for equality lookups on the class's extent.

        An index on a superclass covers the subclass's extent too (its
        buckets contain a superset; callers intersect with the extent).
        """
        candidates = self._by_attribute.get(attribute)
        if not candidates:
            return None
        exact = candidates.get((class_name, attribute))
        if exact is not None:
            return exact
        for (indexed_class, _), index in candidates.items():
            if self._db.schema.isa(class_name, indexed_class):
                return index
        return None

    def find_ordered(
        self, class_name: str, attribute: str
    ) -> Optional[OrderedAttributeIndex]:
        """An ordered index covering the class, for range predicates."""
        candidates = self._by_attribute.get(attribute)
        if not candidates:
            return None
        exact = candidates.get((class_name, attribute))
        if isinstance(exact, OrderedAttributeIndex):
            return exact
        for (indexed_class, _), index in candidates.items():
            if isinstance(index, OrderedAttributeIndex) and self._db.schema.isa(
                class_name, indexed_class
            ):
                return index
        return None

    def __len__(self) -> int:
        return len(self._indexes)
