"""Attribute indexes.

A hash index over one stored attribute of one class (and its
subclasses). Indexes subscribe to the database's event bus and stay
consistent under creates, updates and deletes. Query evaluation uses
them for equality predicates on indexed attributes; parameterized
classes (§4.2, ``Resident(X)``) use them to enumerate the non-empty
parameter values cheaply.

:class:`OrderedAttributeIndex` extends the hash index with sorted key
lists so the planner can serve ``<``/``<=``/``>``/``>=``/range
predicates with a ``bisect`` scan instead of a full extent walk.
Numeric and string keys are kept in separate sorted lists (the model
does not order values across types); booleans and structured values
stay equality-only.

Every index keeps an oid→key reverse map, so deletes (where the
object's values are already gone) are O(1) instead of a scan over
every bucket.

Indexes participate in the database's MVCC snapshots (see
:mod:`repro.engine.versions`): :meth:`AttributeIndex.publish` marks the
bucket table *shared* and returns a :class:`FrozenAttributeIndex`
referencing it; the next mutating event copies the buckets privately
first (``_ensure_private``), so the frozen view keeps the old contents.
:meth:`IndexManager.publish` captures the whole registry as an
:class:`IndexManagerSnapshot` the planner can probe exactly like the
live manager.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import SchemaError
from .database import Database
from .events import (
    Event,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from .oid import EMPTY_OID_SET, Oid, OidSet
from .values import canonicalize


class AttributeIndex:
    """Hash index: canonical attribute value → set of member oids."""

    def __init__(self, database: Database, class_name: str, attribute: str):
        adef = database.schema.resolve_attribute(class_name, attribute)
        if adef.is_computed():
            raise SchemaError(
                f"cannot index computed attribute"
                f" {class_name}.{attribute}"
            )
        self._db = database
        self._class_name = class_name
        self._attribute = attribute
        self._entries: Dict[object, Set[Oid]] = {}
        self._oid_keys: Dict[Oid, object] = {}
        self._shared = False
        self._frozen: Optional["FrozenAttributeIndex"] = None
        self._unsubscribe = database.events.subscribe(self._on_event)
        self._rebuild()

    @property
    def class_name(self) -> str:
        return self._class_name

    @property
    def attribute(self) -> str:
        return self._attribute

    def lookup(self, value) -> OidSet:
        """Oids of members whose attribute equals ``value``."""
        members = self._entries.get(canonicalize(value))
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def distinct_values_count(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterable[object]:
        return self._entries.keys()

    def drop(self) -> None:
        """Detach the index from the event bus."""
        self._unsubscribe()
        # Rebind rather than clear: a published frozen view may still
        # reference the old bucket table.
        self._entries = {}
        self._oid_keys = {}
        self._shared = False
        self._frozen = None

    def publish(self) -> "FrozenAttributeIndex":
        """An immutable view of the current contents.

        Marks the bucket table shared; the next mutating event copies
        it privately first. Repeated calls between mutations return
        the same frozen object.
        """
        if self._frozen is None:
            self._shared = True
            self._frozen = self._make_frozen()
        return self._frozen

    def _make_frozen(self) -> "FrozenAttributeIndex":
        return FrozenAttributeIndex(
            self._class_name, self._attribute, self._entries
        )

    def _ensure_private(self) -> None:
        """Copy the shared bucket table before the first mutation
        after a publish (copy-on-write-on-share)."""
        if not self._shared:
            return
        self._entries = {
            key: set(bucket) for key, bucket in self._entries.items()
        }
        self._shared = False
        self._frozen = None

    # ------------------------------------------------------------------

    def _covers(self, class_name: str) -> bool:
        return self._db.schema.isa(class_name, self._class_name)

    def _rebuild(self) -> None:
        self._ensure_private()
        self._entries.clear()
        self._oid_keys.clear()
        for oid in self._db.extent(self._class_name, deep=True):
            self._insert(oid)

    def _insert(self, oid: Oid) -> None:
        value = self._db.raw_value(oid).get(self._attribute)
        if value is None:
            return
        self._add(oid, value)

    def _add(self, oid: Oid, value) -> None:
        key = canonicalize(value)
        bucket = self._entries.get(key)
        if bucket is None:
            bucket = self._entries[key] = set()
            self._key_added(key)
        bucket.add(oid)
        self._oid_keys[oid] = key

    def _discard(self, oid: Oid) -> None:
        key = self._oid_keys.pop(oid, None)
        if key is None:
            return
        bucket = self._entries.get(key)
        if bucket is None:
            return
        bucket.discard(oid)
        if not bucket:
            del self._entries[key]
            self._key_removed(key)

    # Hooks for ordered subclasses: called exactly when a bucket is
    # created / becomes empty, with the canonical key.

    def _key_added(self, key) -> None:
        pass

    def _key_removed(self, key) -> None:
        pass

    def _on_event(self, event: Event) -> None:
        if isinstance(event, ObjectCreated) and self._covers(event.class_name):
            self._ensure_private()
            self._insert(event.oid)
        elif isinstance(event, ObjectUpdated):
            if event.attribute != self._attribute:
                return
            if not self._covers(event.class_name):
                return
            self._ensure_private()
            self._discard(event.oid)
            if event.new_value is not None:
                self._add(event.oid, event.new_value)
        elif isinstance(event, ObjectDeleted) and self._covers(event.class_name):
            # The object's values are already gone; the reverse map
            # still knows its key.
            self._ensure_private()
            self._discard(event.oid)


class OrderedAttributeIndex(AttributeIndex):
    """A hash index that also keeps its keys sorted for range scans.

    Canonical keys tag the value's type (``("n", float)`` for numbers,
    ``("a", str)`` for strings, …); the sorted lists hold the bare
    payloads per type so ``bisect`` never compares across types.
    """

    def __init__(self, database: Database, class_name: str, attribute: str):
        self._numeric_keys: List[float] = []
        self._string_keys: List[str] = []
        super().__init__(database, class_name, attribute)

    def _rebuild(self) -> None:
        self._numeric_keys.clear()
        self._string_keys.clear()
        super()._rebuild()

    def _key_added(self, key) -> None:
        tag = key[0]
        if tag == "n":
            insort(self._numeric_keys, key[1])
        elif tag == "a":
            insort(self._string_keys, key[1])

    def _key_removed(self, key) -> None:
        tag = key[0]
        if tag == "n":
            _sorted_discard(self._numeric_keys, key[1])
        elif tag == "a":
            _sorted_discard(self._string_keys, key[1])

    def drop(self) -> None:
        super().drop()
        self._numeric_keys = []
        self._string_keys = []

    def _make_frozen(self) -> "FrozenOrderedIndex":
        return FrozenOrderedIndex(
            self._class_name,
            self._attribute,
            self._entries,
            self._numeric_keys,
            self._string_keys,
        )

    def _ensure_private(self) -> None:
        if not self._shared:
            return
        self._numeric_keys = list(self._numeric_keys)
        self._string_keys = list(self._string_keys)
        super()._ensure_private()

    def range_lookup(
        self,
        low=None,
        high=None,
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> OidSet:
        """Oids whose attribute falls in the (half-)open interval.

        Bounds must be both numeric or both strings; ``None`` leaves
        that side unbounded (at least one bound is required).
        """
        return _range_scan(
            self._entries,
            self._numeric_keys,
            self._string_keys,
            low,
            high,
            low_strict,
            high_strict,
        )


def _sorted_discard(keys: list, value) -> None:
    position = bisect_left(keys, value)
    if position < len(keys) and keys[position] == value:
        del keys[position]


def _range_scan(
    entries: Dict[object, Set[Oid]],
    numeric_keys: List[float],
    string_keys: List[str],
    low,
    high,
    low_strict: bool,
    high_strict: bool,
) -> OidSet:
    """The bisect range scan shared by live and frozen ordered
    indexes."""
    bound = low if low is not None else high
    if bound is None:
        raise ValueError("range_lookup needs at least one bound")
    if isinstance(bound, bool):
        return EMPTY_OID_SET  # booleans are not ordered
    if isinstance(bound, (int, float)):
        keys = numeric_keys
        tag = "n"
    elif isinstance(bound, str):
        keys = string_keys
        tag = "a"
    else:
        return EMPTY_OID_SET
    if low is None:
        start = 0
    elif low_strict:
        start = bisect_right(keys, low)
    else:
        start = bisect_left(keys, low)
    if high is None:
        stop = len(keys)
    elif high_strict:
        stop = bisect_left(keys, high)
    else:
        stop = bisect_right(keys, high)
    if start >= stop:
        return EMPTY_OID_SET
    members: Set[Oid] = set()
    for payload in keys[start:stop]:
        members.update(entries[(tag, payload)])
    return OidSet.of(members)


class FrozenAttributeIndex:
    """An immutable hash-index view captured by a database snapshot.

    Shares the publishing index's bucket table by reference; the live
    index copies before its next mutation, so the contents here never
    change. Supports exactly the probes the planner issues.
    """

    __slots__ = ("_class_name", "_attribute", "_entries")

    def __init__(
        self,
        class_name: str,
        attribute: str,
        entries: Dict[object, Set[Oid]],
    ):
        self._class_name = class_name
        self._attribute = attribute
        self._entries = entries

    @property
    def class_name(self) -> str:
        return self._class_name

    @property
    def attribute(self) -> str:
        return self._attribute

    def lookup(self, value) -> OidSet:
        members = self._entries.get(canonicalize(value))
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def distinct_values_count(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterable[object]:
        return self._entries.keys()


class FrozenOrderedIndex(FrozenAttributeIndex):
    """An immutable ordered-index view (equality plus range scans)."""

    __slots__ = ("_numeric_keys", "_string_keys")

    def __init__(
        self,
        class_name: str,
        attribute: str,
        entries: Dict[object, Set[Oid]],
        numeric_keys: List[float],
        string_keys: List[str],
    ):
        super().__init__(class_name, attribute, entries)
        self._numeric_keys = numeric_keys
        self._string_keys = string_keys

    def range_lookup(
        self,
        low=None,
        high=None,
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> OidSet:
        return _range_scan(
            self._entries,
            self._numeric_keys,
            self._string_keys,
            low,
            high,
            low_strict,
            high_strict,
        )


class IndexManager:
    """Registry of attribute indexes for one database.

    Alongside the primary ``(class, attribute)`` map a secondary
    attribute→indexes map is kept, so :meth:`find` touches only the
    indexes that could possibly serve a lookup instead of scanning
    the whole registry per miss. A version counter ticks on every
    create/drop; the query planner's cached plans are validated
    against it.
    """

    def __init__(self, database: Database):
        self._db = database
        self._indexes: Dict[Tuple[str, str], AttributeIndex] = {}
        self._by_attribute: Dict[
            str, Dict[Tuple[str, str], AttributeIndex]
        ] = {}
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    def create_index(
        self, class_name: str, attribute: str, kind: str = "hash"
    ) -> AttributeIndex:
        if kind not in ("hash", "ordered"):
            raise SchemaError(f"unknown index kind: {kind!r}")
        key = (class_name, attribute)
        existing = self._indexes.get(key)
        if existing is not None:
            if kind == "hash" or isinstance(existing, OrderedAttributeIndex):
                return existing
            # Upgrade: an ordered index answers everything the hash
            # index does, so replace rather than refuse.
            self.drop_index(class_name, attribute)
        factory = (
            OrderedAttributeIndex if kind == "ordered" else AttributeIndex
        )
        index = factory(self._db, class_name, attribute)
        self._indexes[key] = index
        self._by_attribute.setdefault(attribute, {})[key] = index
        self._version += 1
        return index

    def drop_index(self, class_name: str, attribute: str) -> None:
        index = self._indexes.pop((class_name, attribute), None)
        if index is not None:
            index.drop()
            bucket = self._by_attribute.get(attribute)
            if bucket is not None:
                bucket.pop((class_name, attribute), None)
                if not bucket:
                    del self._by_attribute[attribute]
            self._version += 1

    def find(self, class_name: str, attribute: str) -> Optional[AttributeIndex]:
        """An index usable for equality lookups on the class's extent.

        An index on a superclass covers the subclass's extent too (its
        buckets contain a superset; callers intersect with the extent).
        """
        candidates = self._by_attribute.get(attribute)
        if not candidates:
            return None
        exact = candidates.get((class_name, attribute))
        if exact is not None:
            return exact
        for (indexed_class, _), index in candidates.items():
            if self._db.schema.isa(class_name, indexed_class):
                return index
        return None

    def find_ordered(
        self, class_name: str, attribute: str
    ) -> Optional[OrderedAttributeIndex]:
        """An ordered index covering the class, for range predicates."""
        candidates = self._by_attribute.get(attribute)
        if not candidates:
            return None
        exact = candidates.get((class_name, attribute))
        if isinstance(exact, OrderedAttributeIndex):
            return exact
        for (indexed_class, _), index in candidates.items():
            if isinstance(index, OrderedAttributeIndex) and self._db.schema.isa(
                class_name, indexed_class
            ):
                return index
        return None

    def specs(self) -> List[Tuple[str, str, str]]:
        """``(class, attribute, kind)`` of every index — the shape a
        replica needs to recreate the registry."""
        return [
            (
                class_name,
                attribute,
                "ordered"
                if isinstance(index, OrderedAttributeIndex)
                else "hash",
            )
            for (class_name, attribute), index in sorted(
                self._indexes.items()
            )
        ]

    def publish(self) -> "IndexManagerSnapshot":
        """Capture the whole registry for a database snapshot."""
        return IndexManagerSnapshot(
            self._db.schema,
            {key: index.publish() for key, index in self._indexes.items()},
            self._version,
        )

    def __len__(self) -> int:
        return len(self._indexes)


class IndexManagerSnapshot:
    """The frozen index registry carried by a database snapshot.

    Probe-compatible with :class:`IndexManager` (``find`` /
    ``find_ordered`` / ``version``), so compiled plans execute against
    a snapshot unchanged. The schema is shared by reference — index
    DDL bumps the registry version and installs a new database
    version, so a stale registry is never consulted for new plans.
    """

    __slots__ = ("_schema", "_indexes", "_by_attribute", "_version")

    def __init__(
        self,
        schema,
        indexes: Dict[Tuple[str, str], FrozenAttributeIndex],
        version: int,
    ):
        self._schema = schema
        self._indexes = indexes
        self._by_attribute: Dict[
            str, Dict[Tuple[str, str], FrozenAttributeIndex]
        ] = {}
        for key, index in indexes.items():
            self._by_attribute.setdefault(key[1], {})[key] = index
        self._version = version

    @property
    def version(self) -> int:
        return self._version

    def find(
        self, class_name: str, attribute: str
    ) -> Optional[FrozenAttributeIndex]:
        candidates = self._by_attribute.get(attribute)
        if not candidates:
            return None
        exact = candidates.get((class_name, attribute))
        if exact is not None:
            return exact
        for (indexed_class, _), index in candidates.items():
            if self._schema.isa(class_name, indexed_class):
                return index
        return None

    def find_ordered(
        self, class_name: str, attribute: str
    ) -> Optional[FrozenOrderedIndex]:
        candidates = self._by_attribute.get(attribute)
        if not candidates:
            return None
        exact = candidates.get((class_name, attribute))
        if isinstance(exact, FrozenOrderedIndex):
            return exact
        for (indexed_class, _), index in candidates.items():
            if isinstance(index, FrozenOrderedIndex) and self._schema.isa(
                class_name, indexed_class
            ):
                return index
        return None

    def __len__(self) -> int:
        return len(self._indexes)
