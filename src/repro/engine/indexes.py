"""Attribute indexes.

A hash index over one stored attribute of one class (and its
subclasses). Indexes subscribe to the database's event bus and stay
consistent under creates, updates and deletes. Query evaluation uses
them for equality predicates on indexed attributes; parameterized
classes (§4.2, ``Resident(X)``) use them to enumerate the non-empty
parameter values cheaply.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..errors import SchemaError
from .database import Database
from .events import (
    Event,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from .oid import EMPTY_OID_SET, Oid, OidSet
from .values import canonicalize


class AttributeIndex:
    """Hash index: canonical attribute value → set of member oids."""

    def __init__(self, database: Database, class_name: str, attribute: str):
        adef = database.schema.resolve_attribute(class_name, attribute)
        if adef.is_computed():
            raise SchemaError(
                f"cannot index computed attribute"
                f" {class_name}.{attribute}"
            )
        self._db = database
        self._class_name = class_name
        self._attribute = attribute
        self._entries: Dict[object, Set[Oid]] = {}
        self._unsubscribe = database.events.subscribe(self._on_event)
        self._rebuild()

    @property
    def class_name(self) -> str:
        return self._class_name

    @property
    def attribute(self) -> str:
        return self._attribute

    def lookup(self, value) -> OidSet:
        """Oids of members whose attribute equals ``value``."""
        members = self._entries.get(canonicalize(value))
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def distinct_values_count(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterable[object]:
        return self._entries.keys()

    def drop(self) -> None:
        """Detach the index from the event bus."""
        self._unsubscribe()
        self._entries.clear()

    # ------------------------------------------------------------------

    def _covers(self, class_name: str) -> bool:
        return self._db.schema.isa(class_name, self._class_name)

    def _rebuild(self) -> None:
        self._entries.clear()
        for oid in self._db.extent(self._class_name, deep=True):
            self._insert(oid)

    def _insert(self, oid: Oid) -> None:
        value = self._db.raw_value(oid).get(self._attribute)
        if value is None:
            return
        self._entries.setdefault(canonicalize(value), set()).add(oid)

    def _remove(self, oid: Oid, value) -> None:
        if value is None:
            return
        key = canonicalize(value)
        bucket = self._entries.get(key)
        if bucket is None:
            return
        bucket.discard(oid)
        if not bucket:
            del self._entries[key]

    def _on_event(self, event: Event) -> None:
        if isinstance(event, ObjectCreated) and self._covers(event.class_name):
            self._insert(event.oid)
        elif isinstance(event, ObjectUpdated):
            if event.attribute != self._attribute:
                return
            if not self._covers(event.class_name):
                return
            self._remove(event.oid, event.old_value)
            if event.new_value is not None:
                self._entries.setdefault(
                    canonicalize(event.new_value), set()
                ).add(event.oid)
        elif isinstance(event, ObjectDeleted) and self._covers(event.class_name):
            value = None
            # The object is already gone; scan buckets for the oid.
            for key in list(self._entries):
                bucket = self._entries[key]
                if event.oid in bucket:
                    bucket.discard(event.oid)
                    if not bucket:
                        del self._entries[key]
                    break


class IndexManager:
    """Registry of attribute indexes for one database."""

    def __init__(self, database: Database):
        self._db = database
        self._indexes: Dict[Tuple[str, str], AttributeIndex] = {}

    def create_index(self, class_name: str, attribute: str) -> AttributeIndex:
        key = (class_name, attribute)
        existing = self._indexes.get(key)
        if existing is not None:
            return existing
        index = AttributeIndex(self._db, class_name, attribute)
        self._indexes[key] = index
        return index

    def drop_index(self, class_name: str, attribute: str) -> None:
        index = self._indexes.pop((class_name, attribute), None)
        if index is not None:
            index.drop()

    def find(self, class_name: str, attribute: str) -> Optional[AttributeIndex]:
        """An index usable for equality lookups on the class's extent.

        An index on a superclass covers the subclass's extent too (its
        buckets contain a superset; callers intersect with the extent).
        """
        exact = self._indexes.get((class_name, attribute))
        if exact is not None:
            return exact
        for (indexed_class, indexed_attr), index in self._indexes.items():
            if indexed_attr != attribute:
                continue
            if self._db.schema.isa(class_name, indexed_class):
                return index
        return None

    def __len__(self) -> int:
        return len(self._indexes)
