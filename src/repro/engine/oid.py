"""Object identifiers.

Every object in a database (and every imaginary object in a view) carries
an :class:`Oid`. Oids are opaque, immutable and totally ordered. Each oid
records the *space* it was allocated in: the database name for real
objects, or ``view-name/class-name`` for imaginary objects. The paper
(§5.1) requires that "a tuple will generate a different oid when used in a
different class" — distinct spaces guarantee this even when counters
collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, order=True)
class Oid:
    """An immutable object identifier.

    Attributes:
        space: Name of the allocation space (database or imaginary class).
        number: Serial number within the space, starting at 1.
    """

    space: str
    number: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.space}:{self.number}>"


class OidGenerator:
    """Allocates fresh oids for one space.

    Deterministic: the n-th call to :meth:`fresh` always returns serial
    number ``n``. This matters for reproducible tests and benchmarks and
    for replaying a storage log.
    """

    def __init__(self, space: str, start: int = 0):
        self._space = space
        self._counter = start

    @property
    def space(self) -> str:
        return self._space

    @property
    def last_issued(self) -> int:
        """Serial number of the most recently issued oid (0 if none)."""
        return self._counter

    def fresh(self) -> Oid:
        """Return a never-before-issued oid in this space."""
        self._counter += 1
        return Oid(self._space, self._counter)

    def advance_to(self, number: int) -> None:
        """Ensure future oids are numbered above ``number``.

        Used when replaying a persisted log: the generator must not
        re-issue oids that already exist on disk.
        """
        if number > self._counter:
            self._counter = number

    def issued(self) -> Iterator[Oid]:
        """Iterate over all oids issued so far, in order."""
        for n in range(1, self._counter + 1):
            yield Oid(self._space, n)


@dataclass(frozen=True)
class OidSet:
    """An immutable set of oids with set-algebra helpers.

    Query evaluation produces :class:`OidSet` values for class extents;
    keeping them immutable lets views hand them out without defensive
    copies.
    """

    members: frozenset = field(default_factory=frozenset)

    @staticmethod
    def of(oids) -> "OidSet":
        return OidSet(frozenset(oids))

    def __contains__(self, oid: Oid) -> bool:
        return oid in self.members

    def __iter__(self):
        return iter(sorted(self.members))

    def __len__(self) -> int:
        return len(self.members)

    def __or__(self, other: "OidSet") -> "OidSet":
        return OidSet(self.members | other.members)

    def __and__(self, other: "OidSet") -> "OidSet":
        return OidSet(self.members & other.members)

    def __sub__(self, other: "OidSet") -> "OidSet":
        return OidSet(self.members - other.members)

    def __bool__(self) -> bool:
        return bool(self.members)


EMPTY_OID_SET = OidSet()
