"""The value model and value/type conformance.

Values are ordinary Python data:

====================  =========================================
Model value           Python representation
====================  =========================================
atom                  ``str``, ``bool``, ``int``, ``float``
object reference      :class:`~repro.engine.oid.Oid`
tuple value           ``dict`` mapping attribute name → value
set value             ``set`` / ``frozenset``
list value            ``list`` / ``tuple``
====================  =========================================

The module provides conformance checking against the type lattice,
canonicalisation (a hashable normal form, used by imaginary classes to
key their tuple→oid table, §5.1 of the paper), and best-effort type
inference for literals.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ValueTypeError
from .oid import Oid
from .types import (
    ANY,
    BOOLEAN,
    INTEGER,
    NOTHING,
    REAL,
    STRING,
    AnyType,
    AtomType,
    ClassType,
    ListType,
    NothingType,
    SetType,
    TupleType,
    Type,
    TypeContext,
    EMPTY_CONTEXT,
    lub,
)

#: Signature of the resolver mapping an oid to the name of the class the
#: object is *real* in (unique-root rule). ``None`` means "unknown".
ClassOf = Callable[[Oid], Optional[str]]


def _no_class_of(_oid: Oid) -> Optional[str]:
    return None


def conforms(
    value,
    expected: Type,
    ctx: TypeContext = EMPTY_CONTEXT,
    class_of: ClassOf = _no_class_of,
) -> bool:
    """True if ``value`` is a legal inhabitant of ``expected``.

    Tuple conformance uses width subtyping: the value may carry extra
    attributes beyond those the type declares.
    """
    if isinstance(expected, AnyType):
        return True
    if isinstance(expected, NothingType):
        return False
    if isinstance(expected, AtomType):
        if expected is STRING:
            return isinstance(value, str)
        if expected is BOOLEAN:
            return isinstance(value, bool)
        if expected is INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if expected is REAL:
            return (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
            )
        # User atoms (dollar, date, ...) admit ints, floats and strings;
        # they are distinguished by declaration, not representation.
        return isinstance(value, (int, float, str)) and not isinstance(
            value, bool
        )
    if isinstance(expected, TupleType):
        if not isinstance(value, dict):
            return False
        for name, ftype in expected.fields:
            if name not in value:
                return False
            if not conforms(value[name], ftype, ctx, class_of):
                return False
        return True
    if isinstance(expected, SetType):
        if not isinstance(value, (set, frozenset)):
            return False
        return all(
            conforms(item, expected.element, ctx, class_of) for item in value
        )
    if isinstance(expected, ListType):
        if not isinstance(value, (list, tuple)):
            return False
        return all(
            conforms(item, expected.element, ctx, class_of) for item in value
        )
    if isinstance(expected, ClassType):
        if not isinstance(value, Oid):
            return False
        actual = class_of(value)
        if actual is None:
            # Unknown membership: accept; the database layer re-checks
            # when it can resolve the oid.
            return True
        return ctx.isa(actual, expected.class_name)
    raise ValueTypeError(f"unsupported type: {expected!r}")


def require_conforms(
    value,
    expected: Type,
    ctx: TypeContext = EMPTY_CONTEXT,
    class_of: ClassOf = _no_class_of,
    label: str = "value",
) -> None:
    """Raise :class:`ValueTypeError` unless ``value`` conforms."""
    if not conforms(value, expected, ctx, class_of):
        raise ValueTypeError(
            f"{label} {format_value(value)} does not conform to type"
            f" {expected.describe()}"
        )


def canonicalize(value):
    """Return a hashable canonical form of a model value.

    Two values are equal as model values iff their canonical forms are
    equal. Imaginary classes key their identity table on this form, which
    is what guarantees "the same tuple will be assigned the same oid each
    time the class is invoked" (§5.1).
    """
    if isinstance(value, dict):
        return (
            "t",
            tuple(
                (name, canonicalize(value[name])) for name in sorted(value)
            ),
        )
    if isinstance(value, (set, frozenset)):
        return ("s", frozenset(canonicalize(item) for item in value))
    if isinstance(value, (list, tuple)):
        return ("l", tuple(canonicalize(item) for item in value))
    if isinstance(value, Oid):
        return ("o", value.space, value.number)
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        # 1 and 1.0 are the same model number.
        return ("n", float(value))
    if isinstance(value, str):
        return ("a", value)
    if value is None:
        return ("z",)
    raise ValueTypeError(f"value is not a model value: {value!r}")


def infer_type(
    value,
    ctx: TypeContext = EMPTY_CONTEXT,
    class_of: ClassOf = _no_class_of,
) -> Type:
    """Best-effort type of a literal value.

    Oids become class types when the resolver knows their class, else
    ``ANY``. Heterogeneous collections get the LUB of their element
    types, falling back to ``ANY`` when no LUB exists.
    """
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    if isinstance(value, str):
        return STRING
    if isinstance(value, Oid):
        name = class_of(value)
        return ClassType(name) if name is not None else ANY
    if isinstance(value, dict):
        return TupleType(
            {
                name: infer_type(item, ctx, class_of)
                for name, item in value.items()
            }
        )
    if isinstance(value, (set, frozenset)):
        return SetType(_element_lub(value, ctx, class_of))
    if isinstance(value, (list, tuple)):
        return ListType(_element_lub(value, ctx, class_of))
    if value is None:
        return NOTHING
    raise ValueTypeError(f"value is not a model value: {value!r}")


def _element_lub(items, ctx: TypeContext, class_of: ClassOf) -> Type:
    element: Type = NOTHING
    for item in items:
        try:
            element = lub(element, infer_type(item, ctx, class_of), ctx)
        except Exception:
            return ANY
    return element


def format_value(value) -> str:
    """Human-readable rendering used in error messages and examples."""
    if isinstance(value, dict):
        inner = ", ".join(
            f"{name}: {format_value(value[name])}" for name in sorted(value)
        )
        return f"[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ", ".join(sorted(format_value(item) for item in value))
        return f"{{{inner}}}"
    if isinstance(value, (list, tuple)):
        inner = ", ".join(format_value(item) for item in value)
        return f"<{inner}>"
    if isinstance(value, Oid):
        return repr(value)
    if isinstance(value, str):
        return repr(value)
    return str(value)


def deep_copy_value(value):
    """Structural copy of a model value (oids are shared, not copied)."""
    if isinstance(value, dict):
        return {name: deep_copy_value(item) for name, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return {deep_copy_value(item) for item in value}
    if isinstance(value, list):
        return [deep_copy_value(item) for item in value]
    if isinstance(value, tuple):
        return tuple(deep_copy_value(item) for item in value)
    return value
