"""Objects, handles, and the scope protocol.

A stored object is a :class:`DatabaseObject`: an oid, the single class it
is *real* in (unique-root rule, §4.2), and a tuple value. Application
code never touches these directly; it works with :class:`ObjectHandle`
proxies bound to a *scope* — a database or a view. The handle resolves
attribute access through its scope, so the same object behaves
differently under different views (that is the whole point of the
paper).

Dot notation on handles combines dereferencing and field selection,
exactly like the paper's ``Maggy.Address`` (§2): a stored oid comes back
wrapped in a new handle, a tuple value comes back as a
:class:`TupleValue` supporting further dot access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ObjectError
from ..obs import trace as _trace
from .oid import Oid
from .schema import AttributeDef
from .tracking import ACTIVE_TRACKERS, record_attribute_read


@dataclass
class DatabaseObject:
    """The stored representation of one object."""

    oid: Oid
    class_name: str
    value: Dict[str, object] = field(default_factory=dict)


class Scope:
    """What a handle needs from its surrounding database or view.

    Concrete scopes: :class:`~repro.engine.database.Database` and
    :class:`~repro.core.view.View`.
    """

    @property
    def scope_name(self) -> str:
        raise NotImplementedError

    @property
    def schema(self):
        raise NotImplementedError

    def class_of(self, oid: Oid) -> str:
        """The class the object is real in."""
        raise NotImplementedError

    def raw_value(self, oid: Oid) -> Dict[str, object]:
        """The stored tuple value (live reference; mutate via update)."""
        raise NotImplementedError

    def resolve_attribute_for(self, oid: Oid, attribute: str) -> AttributeDef:
        """Effective attribute definition for this object in this scope."""
        raise NotImplementedError

    def is_member(self, oid: Oid, class_name: str) -> bool:
        """True if the object belongs to the class *in this scope*."""
        raise NotImplementedError

    def get(self, oid: Oid) -> "ObjectHandle":
        return ObjectHandle(self, oid)

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------

    def access(self, oid: Oid, attribute: str, *args):
        """Read an attribute (stored or computed) of an object."""
        if ACTIVE_TRACKERS:
            # Key on the real class: mutation events carry it, so a
            # cached read of (class, attribute) is invalidated exactly
            # by updates to that attribute on that class (or an
            # ancestor/descendant, see View bump routing).
            record_attribute_read(self.class_of(oid), attribute)
        adef = self.resolve_attribute_for(oid, attribute)
        if adef.is_computed():
            receiver = self.get(oid)
            if _trace.ENABLED:
                # Coalesces per parent span: a query touching one
                # computed attribute on N objects yields one ×N node.
                with _trace.span(
                    "virtual_attr.eval",
                    attribute=attribute,
                    **{"class": adef.origin},
                ):
                    raw = adef.procedure(receiver, *args)
            else:
                raw = adef.procedure(receiver, *args)
            return wrap_value(self, unwrap(raw))
        if args:
            raise ObjectError(
                f"stored attribute {attribute!r} takes no arguments"
            )
        stored = self.raw_value(oid)
        if attribute not in stored:
            return None
        return wrap_value(self, stored[attribute])


class ObjectHandle:
    """A proxy for one object within one scope.

    Equality and hashing are by oid only: the same object seen through
    two views is still the same object.
    """

    __slots__ = ("_scope", "_oid")

    def __init__(self, scope: Scope, oid: Oid):
        object.__setattr__(self, "_scope", scope)
        object.__setattr__(self, "_oid", oid)

    @property
    def oid(self) -> Oid:
        return self._oid

    @property
    def scope(self) -> Scope:
        return self._scope

    @property
    def real_class(self) -> str:
        return self._scope.class_of(self._oid)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._scope.access(self._oid, name)

    def __setattr__(self, name: str, value):
        raise ObjectError(
            "handles are read-only; use Database.update() to mutate"
            " objects"
        )

    def __getitem__(self, name: str):
        return self._scope.access(self._oid, name)

    def invoke(self, attribute: str, *args):
        """Access an attribute that takes arguments beyond the receiver."""
        return self._scope.access(self._oid, attribute, *args)

    def in_class(self, class_name: str) -> bool:
        """Membership test in this scope (real, virtual, or imaginary)."""
        return self._scope.is_member(self._oid, class_name)

    def value(self) -> Dict[str, object]:
        """A copy of the stored tuple value."""
        return dict(self._scope.raw_value(self._oid))

    def __eq__(self, other) -> bool:
        if isinstance(other, ObjectHandle):
            return self._oid == other._oid
        if isinstance(other, Oid):
            return self._oid == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._oid)

    def __lt__(self, other) -> bool:
        if isinstance(other, ObjectHandle):
            return self._oid < other._oid
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        try:
            cls = self.real_class
        except Exception:
            cls = "?"
        return f"Handle({cls}:{self._oid.space}:{self._oid.number})"


class TupleValue:
    """A read-only tuple value supporting dot access.

    Returned when an attribute's value is itself a tuple, so chains like
    ``person.Address.City`` work whether ``Address`` is an object or a
    plain tuple value.
    """

    __slots__ = ("_scope", "_fields")

    def __init__(self, scope: Optional[Scope], fields: Dict[str, object]):
        object.__setattr__(self, "_scope", scope)
        object.__setattr__(self, "_fields", dict(fields))

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in self._fields:
            raise AttributeError(name)
        return wrap_value(self._scope, self._fields[name])

    def __setattr__(self, name: str, value):
        raise ObjectError("tuple values are read-only")

    def __getitem__(self, name: str):
        return wrap_value(self._scope, self._fields[name])

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def keys(self):
        return self._fields.keys()

    def as_dict(self) -> Dict[str, object]:
        return dict(self._fields)

    def __eq__(self, other) -> bool:
        if isinstance(other, TupleValue):
            return self._fields == other._fields
        if isinstance(other, dict):
            return self._fields == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, repr(v)) for k, v in self._fields.items())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{k}: {v!r}" for k, v in sorted(self._fields.items())
        )
        return f"[{inner}]"


def wrap_value(scope: Optional[Scope], value):
    """Wrap a stored value for application use.

    Oids become handles, tuple values become :class:`TupleValue`, and
    collections are wrapped element-wise. Scalars pass through.
    """
    if isinstance(value, Oid) and scope is not None:
        return ObjectHandle(scope, value)
    if isinstance(value, dict):
        return TupleValue(scope, value)
    if isinstance(value, (set, frozenset)):
        return frozenset(wrap_value(scope, item) for item in value)
    if isinstance(value, (list, tuple)):
        return [wrap_value(scope, item) for item in value]
    return value


def unwrap(value):
    """Inverse of :func:`wrap_value`: strip proxies back to model values."""
    if isinstance(value, ObjectHandle):
        return value.oid
    if isinstance(value, TupleValue):
        return {k: unwrap(v) for k, v in value.as_dict().items()}
    if isinstance(value, dict):
        return {k: unwrap(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return {unwrap(item) for item in value}
    if isinstance(value, (list, tuple)):
        return [unwrap(item) for item in value]
    return value
