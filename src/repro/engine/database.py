"""Databases: schemas plus stored objects.

A :class:`Database` owns a :class:`~repro.engine.schema.Schema`, the
objects created in it, and per-class extents. It enforces the paper's
**unique-root rule**: every object is real in exactly one class (§4.2,
"Implementation Issues"). The *deep extent* of a class — the set of
objects real in it or any subclass — is what queries and views range
over.

Mutations publish events on the database's bus so indexes and
materialized virtual classes can maintain themselves incrementally.

Concurrency (see :mod:`repro.engine.versions`): every mutation and DDL
statement serializes through one re-entrant commit lock and ends by
installing a new store version; :meth:`snapshot` returns an immutable
:class:`~repro.engine.versions.DatabaseSnapshot` of the latest
installed version, and :meth:`read_view` pins it for the calling
thread so *every* read the database serves on that thread — direct,
through handles, or through a view population — is answered from the
frozen version without taking any lock. Structures are copied lazily,
only when a published snapshot actually shares them.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..errors import (
    ObjectError,
    UnknownAttributeError,
    UnknownOidError,
    ValueTypeError,
)
from .events import (
    AttributeDefined,
    ClassDefined,
    EventBus,
    IndexCreated,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from ..obs import trace as _trace
from .objects import DatabaseObject, ObjectHandle, Scope, unwrap
from .oid import EMPTY_OID_SET, Oid, OidGenerator, OidSet
from .schema import AttributeDef, ClassKind, Schema
from .tracking import ACTIVE_TRACKERS, ScopePins, record_extent_read
from .values import require_conforms
from .versions import CommitStats, DatabaseSnapshot, VersionRegistry


def _class_name_in(objects, oid: Oid) -> Optional[str]:
    """The class ``oid`` is real in within an object map, or ``None``.

    Uses the map's fault-free ``class_name_of`` directory lookup when
    it has one (demand-paged tables), so membership tests never pull
    cold objects into memory.
    """
    lookup = getattr(objects, "class_name_of", None)
    if lookup is not None:
        return lookup(oid)
    obj = objects.get(oid)
    return obj.class_name if obj is not None else None


class Database(Scope):
    """A named object-oriented database."""

    def __init__(self, name: str, schema: Optional[Schema] = None):
        self._name = name
        self._schema = schema if schema is not None else Schema()
        self._objects: Dict[Oid, DatabaseObject] = {}
        self._extents: Dict[str, set] = {}
        self._oids = OidGenerator(name)
        self._events = EventBus()
        self.functions: Dict[str, object] = {}
        self.function_types: Dict[str, object] = {}
        self._index_manager = None
        # -- commit path (MVCC) ----------------------------------------
        # Re-entrant so a transaction (begin_batch) can keep committing
        # through the normal mutators on the owning thread.
        self._commit_lock = threading.RLock()
        self._store_version = 0
        self._current_snapshot: Optional[DatabaseSnapshot] = None
        # Copy-on-write-on-share flags: set when a published snapshot
        # references the live structures, cleared when a mutation takes
        # a private copy.
        self._objects_shared = False
        self._extents_outer_shared = False
        self._shared_extent_classes: set = set()
        # Group-commit bracketing: while _batch_depth > 0 mutations
        # accumulate and one version is installed at the outermost
        # end_batch.
        self._batch_depth = 0
        self._batch_ops = 0
        self._pins = ScopePins()
        self.mvcc = CommitStats()
        self.versions = VersionRegistry(name)
        # Install hooks run under the commit lock, after the version
        # counter has advanced: replication-style subscribers (the
        # sharded-execution coordinator) use them to stamp the events
        # of the installed version. Must be fast and must not mutate
        # the database.
        self._install_hooks: List = []

    def add_install_hook(self, hook) -> "callable":
        """Register ``hook(version)`` to run after every version
        install (under the commit lock). Returns an unregister
        callable."""
        self._install_hooks.append(hook)

        def remove() -> None:
            try:
                self._install_hooks.remove(hook)
            except ValueError:
                pass

        return remove

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def _live_indexes(self):
        if self._index_manager is None:
            from .indexes import IndexManager

            self._index_manager = IndexManager(self)
        return self._index_manager

    @property
    def indexes(self):
        """The attribute-index manager — the live registry, or the
        frozen captured one while the calling thread holds a pin."""
        pinned = self._pins.current()
        if pinned is not None and pinned.indexes is not None:
            return pinned.indexes
        return self._live_indexes()

    def create_index(self, class_name: str, attribute: str,
                     kind: str = "hash"):
        """Create (or fetch) an index on a stored attribute.

        ``kind`` is ``"hash"`` (equality only) or ``"ordered"``
        (equality plus ``<``/``<=``/``>``/``>=``/range predicates).
        Index DDL commits like any write: it installs a new version.
        """
        with self._commit_lock:
            index = self._live_indexes().create_index(
                class_name, attribute, kind
            )
            self._events.publish(
                IndexCreated(self._name, class_name, attribute, kind)
            )
            self._commit()
        return index

    def create_ordered_index(self, class_name: str, attribute: str):
        """Create (or fetch) an ordered index on a stored attribute."""
        return self.create_index(class_name, attribute, "ordered")

    def register_function(self, name: str, fn, result_type=None) -> None:
        """Register a named function usable in queries (e.g. ``gsd``)."""
        from .types import type_from_signature

        self.functions[name] = fn
        if result_type is not None:
            self.function_types[name] = type_from_signature(result_type)

    def query(self, query, **parameters):
        """Evaluate a query against this database (via the plan
        cache: compiled closures plus index/range probes)."""
        from ..query.planner import execute

        return execute(query, self, bindings=parameters or None)

    # ------------------------------------------------------------------
    # Versioned snapshots (MVCC read path)
    # ------------------------------------------------------------------

    @property
    def store_version(self) -> int:
        """Monotone counter; bumps once per installed version (a
        single mutation, a DDL statement, or one whole batch)."""
        return self._store_version

    def snapshot(self) -> DatabaseSnapshot:
        """An immutable, consistent view of the latest installed
        version.

        The first call after an install materializes the snapshot
        under the commit lock (marking the live structures shared, so
        the next mutation copies before writing); every later call
        until the next install is a lock-free reference grab.
        """
        snap = self._current_snapshot
        if snap is not None:
            return snap
        with self._commit_lock:
            snap = self._current_snapshot
            if snap is None:
                snap = self._publish()
                if self._batch_depth == 0:
                    # Mid-batch snapshots (only reachable by the batch
                    # owner itself) see the partial batch; don't cache
                    # them where the lock-free fast path could hand
                    # them to another thread.
                    self._current_snapshot = snap
                    self.versions.published(snap)
            return snap

    def capture_snapshot(self) -> DatabaseSnapshot:
        """A freshly materialized snapshot of the live state, bypassing
        the cache.

        The storage checkpointer calls this *mid-commit* (from the
        journal's post-batch hook, where the cached snapshot may
        predate the batch being committed): it must see every mutation
        applied so far, exactly matching what the journal holds. The
        snapshot is not cached and not registered as a published
        version — it exists only for the checkpoint writer to stream.
        """
        with self._commit_lock:
            return self._publish()

    def _publish(self) -> DatabaseSnapshot:
        self._objects_shared = True
        self._extents_outer_shared = True
        self._shared_extent_classes = set(self._extents)
        self.mvcc.record_snapshot()
        return DatabaseSnapshot(
            self,
            self._store_version,
            self._objects,
            self._extents,
            self._live_indexes().publish(),
        )

    def reads_are_current(self) -> bool:
        """False while the calling thread holds a pin on an older
        version than the latest install.

        View-population caches consult this: a stale-pinned reader
        bypasses them (both serving and filling), so cached
        populations always correspond to the latest version and a
        pinned reader always sees its own version.
        """
        pinned = self._pins.current()
        return pinned is None or pinned.version == self._store_version

    @contextmanager
    def read_view(self):
        """Pin a snapshot for the calling thread.

        While the context is active, every read this database serves
        on this thread is answered from the pinned frozen version —
        concurrent commits are invisible until the pin is released.
        Pins nest (an inner ``read_view`` keeps the outer frozen
        version rather than advancing mid-region); other threads are
        unaffected.
        """
        snapshot = self._pins.current()
        outermost = snapshot is None
        if outermost:
            snapshot = self.snapshot()
            # Only the outermost pin counts: nested read_views share
            # the same frozen version.
            self.versions.pin(snapshot)
        previous = self._pins.push(snapshot)
        try:
            yield snapshot
        finally:
            self._pins.restore(previous)
            if outermost:
                self.versions.unpin(snapshot)

    def _acquire_commit_lock(self) -> None:
        """Acquire the commit lock, recording the wait as a
        ``commit.lock_wait`` span when a trace is active (waits under
        a contended group-commit batch are where write latency hides)."""
        if _trace.ENABLED and _trace.current_trace() is not None:
            start = time.perf_counter()
            self._commit_lock.acquire()
            _trace.add_span(
                "commit.lock_wait",
                time.perf_counter() - start,
                database=self._name,
            )
        else:
            self._commit_lock.acquire()

    @contextmanager
    def _committing(self) -> Iterator[None]:
        """``with self._commit_lock`` plus lock-wait tracing."""
        self._acquire_commit_lock()
        try:
            yield
        finally:
            self._commit_lock.release()

    def begin_batch(self) -> None:
        """Open a commit batch: the calling thread holds the commit
        lock until the matching :meth:`end_batch`, and all mutations
        in between install as **one** version."""
        self._acquire_commit_lock()
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Close a batch; the outermost close installs the version."""
        if self._batch_depth <= 0:
            raise ObjectError("end_batch without begin_batch")
        self._batch_depth -= 1
        if self._batch_depth == 0:
            ops, self._batch_ops = self._batch_ops, 0
            if ops:
                self._install(ops)
        self._commit_lock.release()

    def apply_batch(self, operations: Sequence[Mapping]) -> List[Oid]:
        """Apply a sequence of mutation descriptors as one batch.

        Each descriptor is ``{"op": "create", "class": C, "value": V}``,
        ``{"op": "update", "oid": O, "attribute": A, "value": V}`` or
        ``{"op": "delete", "oid": O}``. Returns the affected oids in
        order. On error the already-applied prefix stays committed
        (installed as one version) and the error propagates — wire
        clients see which prefix applied via the error position.
        """
        applied: List[Oid] = []
        self.begin_batch()
        try:
            for descriptor in operations:
                kind = descriptor.get("op")
                if kind == "create":
                    handle = self.create(
                        descriptor.get("class"),
                        descriptor.get("value") or {},
                    )
                    applied.append(handle.oid)
                elif kind == "update":
                    oid = descriptor.get("oid")
                    self.update(
                        oid,
                        descriptor.get("attribute"),
                        descriptor.get("value"),
                    )
                    applied.append(oid)
                elif kind == "delete":
                    oid = descriptor.get("oid")
                    self.delete(oid)
                    applied.append(oid)
                else:
                    raise ObjectError(f"unknown batch op: {kind!r}")
        finally:
            self.end_batch()
        return applied

    def _commit(self) -> None:
        """Finish one mutation: install now, or defer to the batch."""
        if self._batch_depth:
            self._batch_ops += 1
        else:
            self._install(1)

    def _install(self, ops: int) -> None:
        """Install a new version: O(1) — bump and invalidate. The next
        snapshot() materializes the version lazily."""
        if self._current_snapshot is not None:
            # The cached snapshot is now an old version; the registry
            # reclaims it immediately unless a reader has it pinned.
            self.versions.superseded(self._current_snapshot)
        self._store_version += 1
        self._current_snapshot = None
        self.mvcc.record_install(ops)
        for hook in self._install_hooks:
            hook(self._store_version)
        if _trace.ENABLED:
            _trace.add_span(
                "commit.install",
                0.0,
                database=self._name,
                version=self._store_version,
                ops=ops,
            )

    # -- copy-on-write-on-share helpers --------------------------------

    def _writable_objects(self) -> Dict[Oid, DatabaseObject]:
        if self._objects_shared:
            # The object map forks polymorphically: a plain dict is
            # copied, a demand-paged table (storage-backed databases)
            # does an O(1) copy-on-write fork so published snapshots
            # keep faulting from their own generation.
            fork = getattr(self._objects, "fork", None)
            self._objects = (
                fork() if fork is not None else dict(self._objects)
            )
            self._objects_shared = False
        return self._objects

    def _writable_extents_outer(self) -> Dict[str, set]:
        if self._extents_outer_shared:
            self._extents = dict(self._extents)
            self._extents_outer_shared = False
        return self._extents

    def _writable_extent(self, class_name: str) -> set:
        extents = self._writable_extents_outer()
        if class_name in self._shared_extent_classes:
            self._shared_extent_classes.discard(class_name)
            fresh = set(extents.get(class_name, ()))
            extents[class_name] = fresh
            return fresh
        return extents.setdefault(class_name, set())

    # ------------------------------------------------------------------
    # Scope protocol
    # ------------------------------------------------------------------

    @property
    def scope_name(self) -> str:
        return self._name

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def events(self) -> EventBus:
        return self._events

    def class_of(self, oid: Oid) -> str:
        pinned = self._pins.current()
        if pinned is not None:
            return pinned.class_of(oid)
        # A demand-paged object map answers class membership from its
        # directory without faulting the object in.
        lookup = getattr(self._objects, "class_name_of", None)
        if lookup is not None:
            name = lookup(oid)
            if name is None:
                raise UnknownOidError(oid)
            return name
        return self._require(oid).class_name

    def raw_value(self, oid: Oid) -> Dict[str, object]:
        pinned = self._pins.current()
        if pinned is not None:
            return pinned.raw_value(oid)
        return self._require(oid).value

    def resolve_attribute_for(self, oid: Oid, attribute: str) -> AttributeDef:
        return self._schema.resolve_attribute(self.class_of(oid), attribute)

    def is_member(self, oid: Oid, class_name: str) -> bool:
        pinned = self._pins.current()
        if pinned is not None:
            return pinned.is_member(oid, class_name)
        if ACTIVE_TRACKERS:
            record_extent_read(class_name)
        real_class = _class_name_in(self._objects, oid)
        if real_class is None:
            return False
        return self._schema.isa(real_class, class_name)

    # ------------------------------------------------------------------
    # Schema definition conveniences
    # ------------------------------------------------------------------

    def define_class(
        self,
        name: str,
        parents: Sequence[str] = (),
        attributes: Optional[Mapping] = None,
        doc: str = "",
    ):
        """Define a base (storable) class. See :meth:`Schema.define_class`."""
        with self._commit_lock:
            cdef = self._schema.define_class(
                name, parents, attributes, ClassKind.BASE, doc
            )
            self._writable_extents_outer().setdefault(name, set())
            self._events.publish(ClassDefined(self._name, name))
            self._commit()
        return cdef

    def define_attribute(
        self,
        class_name: str,
        attribute: str,
        declared_type=None,
        value=None,
        arity: int = 0,
    ) -> AttributeDef:
        """``attribute A {of type T} in class C {has value V}`` (§2).

        ``value`` is a callable computing the attribute from the
        receiver handle; omitting it declares a stored attribute.
        """
        with self._commit_lock:
            adef = self._schema.define_attribute(
                class_name, attribute, declared_type, value, arity
            )
            from ..storage.serializer import type_to_data

            self._events.publish(
                AttributeDefined(
                    self._name,
                    class_name,
                    attribute,
                    type_to_data(adef.declared_type)
                    if adef.declared_type is not None
                    else None,
                    adef.is_computed(),
                    adef.arity,
                )
            )
            self._commit()
        return adef

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        class_name: str,
        value: Optional[Mapping[str, object]] = None,
        **attributes,
    ) -> ObjectHandle:
        """Create an object real in ``class_name``.

        The tuple value may be given as a mapping or keyword arguments.
        Stored attributes with declared types are validated; computed
        attributes may not be assigned.
        """
        cdef = self._schema.require(class_name)
        if cdef.kind is not ClassKind.BASE:
            raise ObjectError(
                f"cannot create objects in {cdef.kind.value} class"
                f" {class_name!r}; virtual classes are populated by"
                " their declarations (§4.1)"
            )
        tuple_value: Dict[str, object] = dict(value or {})
        tuple_value.update(attributes)
        tuple_value = {k: unwrap(v) for k, v in tuple_value.items()}
        with self._committing():
            self._validate(class_name, tuple_value)
            oid = self._oids.fresh()
            self._writable_objects()[oid] = DatabaseObject(
                oid, class_name, tuple_value
            )
            self._writable_extent(class_name).add(oid)
            self._events.publish(ObjectCreated(self._name, class_name, oid))
            self._commit()
        return ObjectHandle(self, oid)

    def insert_with_oid(
        self,
        oid: Oid,
        class_name: str,
        value: Optional[Mapping[str, object]] = None,
    ) -> ObjectHandle:
        """Insert an object under a predetermined oid.

        Used by journal replay and transaction undo; refuses oids that
        are already present. The oid generator is advanced past the
        oid's serial so later creates cannot collide.
        """
        cdef = self._schema.require(class_name)
        if cdef.kind is not ClassKind.BASE:
            raise ObjectError(
                f"cannot insert into {cdef.kind.value} class {class_name!r}"
            )
        tuple_value = {k: unwrap(v) for k, v in dict(value or {}).items()}
        with self._committing():
            if oid in self._objects:
                raise ObjectError(f"oid already present: {oid}")
            self._validate(class_name, tuple_value)
            self._writable_objects()[oid] = DatabaseObject(
                oid, class_name, tuple_value
            )
            self._writable_extent(class_name).add(oid)
            if oid.space == self._name:
                self._oids.advance_to(oid.number)
            self._events.publish(ObjectCreated(self._name, class_name, oid))
            self._commit()
        return ObjectHandle(self, oid)

    def update(self, target, attribute: str, new_value) -> None:
        """Assign a stored attribute of an existing object.

        The stored tuple is replaced, not mutated in place: a
        published snapshot may still hold the old
        :class:`DatabaseObject`, and it must keep reading the old
        value.
        """
        oid = target.oid if isinstance(target, ObjectHandle) else target
        new_value = unwrap(new_value)
        with self._committing():
            obj = self._require_live(oid)
            adef = self._schema.resolve_attribute(obj.class_name, attribute)
            if adef.is_computed():
                raise ObjectError(
                    f"attribute {attribute!r} of class {obj.class_name!r}"
                    " is computed; it cannot be assigned"
                )
            value = dict(obj.value)
            if new_value is None:
                # Assigning None unsets the attribute (reads return None).
                old_value = value.pop(attribute, None)
            else:
                if adef.declared_type is not None:
                    require_conforms(
                        new_value,
                        adef.declared_type,
                        self._schema,
                        self._class_of_or_none,
                        label=f"{obj.class_name}.{attribute}",
                    )
                old_value = value.get(attribute)
                value[attribute] = new_value
            self._writable_objects()[oid] = DatabaseObject(
                oid, obj.class_name, value
            )
            self._events.publish(
                ObjectUpdated(
                    self._name, obj.class_name, oid, attribute,
                    old_value, new_value,
                )
            )
            self._commit()

    def delete(self, target) -> None:
        oid = target.oid if isinstance(target, ObjectHandle) else target
        with self._committing():
            obj = self._require_live(oid)
            del self._writable_objects()[oid]
            self._writable_extent(obj.class_name).discard(oid)
            self._events.publish(
                ObjectDeleted(self._name, obj.class_name, oid, obj.value)
            )
            self._commit()

    # ------------------------------------------------------------------
    # Extents and retrieval
    # ------------------------------------------------------------------

    def extent(self, class_name: str, deep: bool = True) -> OidSet:
        """The oids of the class's members.

        ``deep=True`` (default) includes objects real in subclasses —
        an object created in ``Tanker`` is a member of ``Ship``.
        """
        pinned = self._pins.current()
        if pinned is not None:
            return pinned.extent(class_name, deep)
        if ACTIVE_TRACKERS:
            record_extent_read(class_name)
        self._schema.require(class_name)
        members = set(self._extents.get(class_name, ()))
        if deep:
            for sub in self._schema.descendants(class_name):
                members.update(self._extents.get(sub, ()))
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def handles(self, class_name: str, deep: bool = True) -> List[ObjectHandle]:
        """Handles for the (deep) extent, in oid order."""
        return [ObjectHandle(self, oid) for oid in self.extent(class_name, deep)]

    def contains_oid(self, oid: Oid) -> bool:
        pinned = self._pins.current()
        if pinned is not None:
            return pinned.contains_oid(oid)
        return oid in self._objects

    def all_oids(self) -> Iterator[Oid]:
        pinned = self._pins.current()
        if pinned is not None:
            return pinned.all_oids()
        return iter(sorted(self._objects))

    def object_count(self) -> int:
        pinned = self._pins.current()
        if pinned is not None:
            return pinned.object_count()
        return len(self._objects)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, oid: Oid) -> DatabaseObject:
        pinned = self._pins.current()
        if pinned is not None:
            return pinned._require(oid)
        return self._require_live(oid)

    def _require_live(self, oid: Oid) -> DatabaseObject:
        obj = self._objects.get(oid)
        if obj is None:
            raise UnknownOidError(oid)
        return obj

    def _class_of_or_none(self, oid: Oid) -> Optional[str]:
        return _class_name_in(self._objects, oid)

    def _validate(self, class_name: str, tuple_value: Dict[str, object]) -> None:
        attributes = self._schema.attributes_of(class_name)
        for name, provided in tuple_value.items():
            adef = attributes.get(name)
            if adef is None:
                raise UnknownAttributeError(class_name, name)
            if adef.is_computed():
                raise ValueTypeError(
                    f"attribute {name!r} of {class_name!r} is computed;"
                    " it cannot be stored"
                )
            if adef.declared_type is not None:
                require_conforms(
                    provided,
                    adef.declared_type,
                    self._schema,
                    self._class_of_or_none,
                    label=f"{class_name}.{name}",
                )

    # ------------------------------------------------------------------
    # Snapshot/restore (used by transactions and the storage layer)
    # ------------------------------------------------------------------

    def snapshot_objects(self) -> Dict[Oid, DatabaseObject]:
        """A structural copy of all objects (schema not included)."""
        from .values import deep_copy_value

        with self._commit_lock:
            return {
                oid: DatabaseObject(
                    obj.oid, obj.class_name, deep_copy_value(obj.value)
                )
                for oid, obj in self._objects.items()
            }

    def attach_object_table(self, table, extents: Dict[str, set]) -> None:
        """Adopt a storage-provided object map (bootstrap only).

        The paged storage engine calls this once, while opening a
        database, to install a demand-paged table (any mapping
        honouring the object-map protocol works) plus the extent sets
        derived from its directory. No events are published and no
        install hooks run — there are no subscribers yet; the version
        still advances so stale cached snapshots cannot survive.
        """
        with self._commit_lock:
            self._objects = table
            self._extents = extents
            self._objects_shared = False
            self._extents_outer_shared = False
            self._shared_extent_classes = set()
            highest = 0
            for oid in table:
                if oid.space == self._name:
                    highest = max(highest, oid.number)
            self._oids.advance_to(highest)
            if self._current_snapshot is not None:
                self.versions.superseded(self._current_snapshot)
            self._store_version += 1
            self._current_snapshot = None

    def restore_objects(self, snapshot: Dict[Oid, DatabaseObject]) -> None:
        from .values import deep_copy_value

        with self._commit_lock:
            self._objects = {
                oid: DatabaseObject(
                    obj.oid, obj.class_name, deep_copy_value(obj.value)
                )
                for oid, obj in snapshot.items()
            }
            self._extents = {}
            self._objects_shared = False
            self._extents_outer_shared = False
            self._shared_extent_classes = set()
            highest = 0
            for oid, obj in self._objects.items():
                self._extents.setdefault(obj.class_name, set()).add(oid)
                if oid.space == self._name:
                    highest = max(highest, oid.number)
            self._oids.advance_to(highest)
            self._commit()
