"""Databases: schemas plus stored objects.

A :class:`Database` owns a :class:`~repro.engine.schema.Schema`, the
objects created in it, and per-class extents. It enforces the paper's
**unique-root rule**: every object is real in exactly one class (§4.2,
"Implementation Issues"). The *deep extent* of a class — the set of
objects real in it or any subclass — is what queries and views range
over.

Mutations publish events on the database's bus so indexes and
materialized virtual classes can maintain themselves incrementally.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..errors import (
    ObjectError,
    UnknownAttributeError,
    UnknownOidError,
    ValueTypeError,
)
from .events import (
    ClassDefined,
    EventBus,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from .objects import DatabaseObject, ObjectHandle, Scope, unwrap
from .oid import EMPTY_OID_SET, Oid, OidGenerator, OidSet
from .schema import AttributeDef, ClassKind, Schema
from .tracking import ACTIVE_TRACKERS, record_extent_read
from .values import require_conforms


class Database(Scope):
    """A named object-oriented database."""

    def __init__(self, name: str, schema: Optional[Schema] = None):
        self._name = name
        self._schema = schema if schema is not None else Schema()
        self._objects: Dict[Oid, DatabaseObject] = {}
        self._extents: Dict[str, set] = {}
        self._oids = OidGenerator(name)
        self._events = EventBus()
        self.functions: Dict[str, object] = {}
        self.function_types: Dict[str, object] = {}
        self._index_manager = None

    @property
    def indexes(self):
        """The database's (lazily created) attribute-index manager."""
        if self._index_manager is None:
            from .indexes import IndexManager

            self._index_manager = IndexManager(self)
        return self._index_manager

    def create_index(self, class_name: str, attribute: str,
                     kind: str = "hash"):
        """Create (or fetch) an index on a stored attribute.

        ``kind`` is ``"hash"`` (equality only) or ``"ordered"``
        (equality plus ``<``/``<=``/``>``/``>=``/range predicates).
        """
        return self.indexes.create_index(class_name, attribute, kind)

    def create_ordered_index(self, class_name: str, attribute: str):
        """Create (or fetch) an ordered index on a stored attribute."""
        return self.indexes.create_index(class_name, attribute, "ordered")

    def register_function(self, name: str, fn, result_type=None) -> None:
        """Register a named function usable in queries (e.g. ``gsd``)."""
        from .types import type_from_signature

        self.functions[name] = fn
        if result_type is not None:
            self.function_types[name] = type_from_signature(result_type)

    def query(self, query, **parameters):
        """Evaluate a query against this database (via the plan
        cache: compiled closures plus index/range probes)."""
        from ..query.planner import execute

        return execute(query, self, bindings=parameters or None)

    # ------------------------------------------------------------------
    # Scope protocol
    # ------------------------------------------------------------------

    @property
    def scope_name(self) -> str:
        return self._name

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def events(self) -> EventBus:
        return self._events

    def class_of(self, oid: Oid) -> str:
        return self._require(oid).class_name

    def raw_value(self, oid: Oid) -> Dict[str, object]:
        return self._require(oid).value

    def resolve_attribute_for(self, oid: Oid, attribute: str) -> AttributeDef:
        return self._schema.resolve_attribute(self.class_of(oid), attribute)

    def is_member(self, oid: Oid, class_name: str) -> bool:
        if ACTIVE_TRACKERS:
            record_extent_read(class_name)
        obj = self._objects.get(oid)
        if obj is None:
            return False
        return self._schema.isa(obj.class_name, class_name)

    # ------------------------------------------------------------------
    # Schema definition conveniences
    # ------------------------------------------------------------------

    def define_class(
        self,
        name: str,
        parents: Sequence[str] = (),
        attributes: Optional[Mapping] = None,
        doc: str = "",
    ):
        """Define a base (storable) class. See :meth:`Schema.define_class`."""
        cdef = self._schema.define_class(
            name, parents, attributes, ClassKind.BASE, doc
        )
        self._extents.setdefault(name, set())
        self._events.publish(ClassDefined(self._name, name))
        return cdef

    def define_attribute(
        self,
        class_name: str,
        attribute: str,
        declared_type=None,
        value=None,
        arity: int = 0,
    ) -> AttributeDef:
        """``attribute A {of type T} in class C {has value V}`` (§2).

        ``value`` is a callable computing the attribute from the
        receiver handle; omitting it declares a stored attribute.
        """
        return self._schema.define_attribute(
            class_name, attribute, declared_type, value, arity
        )

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        class_name: str,
        value: Optional[Mapping[str, object]] = None,
        **attributes,
    ) -> ObjectHandle:
        """Create an object real in ``class_name``.

        The tuple value may be given as a mapping or keyword arguments.
        Stored attributes with declared types are validated; computed
        attributes may not be assigned.
        """
        cdef = self._schema.require(class_name)
        if cdef.kind is not ClassKind.BASE:
            raise ObjectError(
                f"cannot create objects in {cdef.kind.value} class"
                f" {class_name!r}; virtual classes are populated by"
                " their declarations (§4.1)"
            )
        tuple_value: Dict[str, object] = dict(value or {})
        tuple_value.update(attributes)
        tuple_value = {k: unwrap(v) for k, v in tuple_value.items()}
        self._validate(class_name, tuple_value)
        oid = self._oids.fresh()
        self._objects[oid] = DatabaseObject(oid, class_name, tuple_value)
        self._extents.setdefault(class_name, set()).add(oid)
        self._events.publish(ObjectCreated(self._name, class_name, oid))
        return ObjectHandle(self, oid)

    def insert_with_oid(
        self,
        oid: Oid,
        class_name: str,
        value: Optional[Mapping[str, object]] = None,
    ) -> ObjectHandle:
        """Insert an object under a predetermined oid.

        Used by journal replay and transaction undo; refuses oids that
        are already present. The oid generator is advanced past the
        oid's serial so later creates cannot collide.
        """
        if oid in self._objects:
            raise ObjectError(f"oid already present: {oid}")
        cdef = self._schema.require(class_name)
        if cdef.kind is not ClassKind.BASE:
            raise ObjectError(
                f"cannot insert into {cdef.kind.value} class {class_name!r}"
            )
        tuple_value = {k: unwrap(v) for k, v in dict(value or {}).items()}
        self._validate(class_name, tuple_value)
        self._objects[oid] = DatabaseObject(oid, class_name, tuple_value)
        self._extents.setdefault(class_name, set()).add(oid)
        if oid.space == self._name:
            self._oids.advance_to(oid.number)
        self._events.publish(ObjectCreated(self._name, class_name, oid))
        return ObjectHandle(self, oid)

    def update(self, target, attribute: str, new_value) -> None:
        """Assign a stored attribute of an existing object."""
        oid = target.oid if isinstance(target, ObjectHandle) else target
        obj = self._require(oid)
        adef = self._schema.resolve_attribute(obj.class_name, attribute)
        if adef.is_computed():
            raise ObjectError(
                f"attribute {attribute!r} of class {obj.class_name!r}"
                " is computed; it cannot be assigned"
            )
        new_value = unwrap(new_value)
        if new_value is None:
            # Assigning None unsets the attribute (reads return None).
            old_value = obj.value.pop(attribute, None)
            self._events.publish(
                ObjectUpdated(
                    self._name, obj.class_name, oid, attribute, old_value, None
                )
            )
            return
        if adef.declared_type is not None:
            require_conforms(
                new_value,
                adef.declared_type,
                self._schema,
                self._class_of_or_none,
                label=f"{obj.class_name}.{attribute}",
            )
        old_value = obj.value.get(attribute)
        obj.value[attribute] = new_value
        self._events.publish(
            ObjectUpdated(
                self._name, obj.class_name, oid, attribute, old_value, new_value
            )
        )

    def delete(self, target) -> None:
        oid = target.oid if isinstance(target, ObjectHandle) else target
        obj = self._require(oid)
        del self._objects[oid]
        self._extents[obj.class_name].discard(oid)
        self._events.publish(
            ObjectDeleted(self._name, obj.class_name, oid)
        )

    # ------------------------------------------------------------------
    # Extents and retrieval
    # ------------------------------------------------------------------

    def extent(self, class_name: str, deep: bool = True) -> OidSet:
        """The oids of the class's members.

        ``deep=True`` (default) includes objects real in subclasses —
        an object created in ``Tanker`` is a member of ``Ship``.
        """
        if ACTIVE_TRACKERS:
            record_extent_read(class_name)
        self._schema.require(class_name)
        members = set(self._extents.get(class_name, ()))
        if deep:
            for sub in self._schema.descendants(class_name):
                members.update(self._extents.get(sub, ()))
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def handles(self, class_name: str, deep: bool = True) -> List[ObjectHandle]:
        """Handles for the (deep) extent, in oid order."""
        return [ObjectHandle(self, oid) for oid in self.extent(class_name, deep)]

    def contains_oid(self, oid: Oid) -> bool:
        return oid in self._objects

    def all_oids(self) -> Iterator[Oid]:
        return iter(sorted(self._objects))

    def object_count(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, oid: Oid) -> DatabaseObject:
        obj = self._objects.get(oid)
        if obj is None:
            raise UnknownOidError(oid)
        return obj

    def _class_of_or_none(self, oid: Oid) -> Optional[str]:
        obj = self._objects.get(oid)
        return obj.class_name if obj is not None else None

    def _validate(self, class_name: str, tuple_value: Dict[str, object]) -> None:
        attributes = self._schema.attributes_of(class_name)
        for name, provided in tuple_value.items():
            adef = attributes.get(name)
            if adef is None:
                raise UnknownAttributeError(class_name, name)
            if adef.is_computed():
                raise ValueTypeError(
                    f"attribute {name!r} of {class_name!r} is computed;"
                    " it cannot be stored"
                )
            if adef.declared_type is not None:
                require_conforms(
                    provided,
                    adef.declared_type,
                    self._schema,
                    self._class_of_or_none,
                    label=f"{class_name}.{name}",
                )

    # ------------------------------------------------------------------
    # Snapshot/restore (used by transactions and the storage layer)
    # ------------------------------------------------------------------

    def snapshot_objects(self) -> Dict[Oid, DatabaseObject]:
        """A structural copy of all objects (schema not included)."""
        from .values import deep_copy_value

        return {
            oid: DatabaseObject(
                obj.oid, obj.class_name, deep_copy_value(obj.value)
            )
            for oid, obj in self._objects.items()
        }

    def restore_objects(self, snapshot: Dict[Oid, DatabaseObject]) -> None:
        from .values import deep_copy_value

        self._objects = {
            oid: DatabaseObject(
                obj.oid, obj.class_name, deep_copy_value(obj.value)
            )
            for oid, obj in snapshot.items()
        }
        self._extents = {}
        highest = 0
        for oid, obj in self._objects.items():
            self._extents.setdefault(obj.class_name, set()).add(oid)
            if oid.space == self._name:
                highest = max(highest, oid.number)
        self._oids.advance_to(highest)
