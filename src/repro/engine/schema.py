"""Class hierarchy and attribute declarations.

A :class:`Schema` is a DAG of :class:`ClassDef` nodes. Multiple
inheritance is allowed (the paper's hierarchy inference introduces it,
§4.2 ``Rich&Beautiful``). The schema doubles as the
:class:`~repro.engine.types.TypeContext` used by the type lattice, so
class types are compared via the ``isa`` relation it maintains.

The model deliberately blurs attributes and methods (§2 of the paper):
a class declares *attributes*, each either **stored** or **computed**,
and the same attribute may be stored in one class and computed in a
subclass — that is ordinary overriding here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import (
    DuplicateClassError,
    HierarchyCycleError,
    SchemaError,
    UnknownAttributeError,
    UnknownClassError,
)
from .types import (
    ClassType,
    TupleType,
    Type,
    TypeContext,
    type_from_signature,
)


class AttributeKind(enum.Enum):
    """Whether an attribute's value is stored with the object or computed."""

    STORED = "stored"
    COMPUTED = "computed"


@dataclass(frozen=True)
class AttributeDef:
    """One attribute declaration on one class.

    Attributes:
        name: Attribute name.
        declared_type: Declared (or inferred) type; ``None`` when the
            type could not be determined statically.
        kind: Stored or computed.
        procedure: For computed attributes, a callable receiving the
            receiver handle (and any extra arguments) and returning the
            value. ``None`` for stored attributes.
        arity: Number of extra arguments beyond the receiver.
        origin: Name of the class where this definition was written
            (useful when a subclass inherits it).
        acquired: True for definitions produced by *upward inheritance*
            (§4.3): they contribute to the class's type but never to
            per-object resolution (each member object's own class
            already provides the value).
        updater: For computed attributes, an optional *update
            translator*: a callable ``(receiver, new_value)`` that
            applies base updates making the computed value come out as
            ``new_value`` — the classical view-update inverse. ``None``
            means the attribute is read-only when computed.
    """

    name: str
    declared_type: Optional[Type] = None
    kind: AttributeKind = AttributeKind.STORED
    procedure: Optional[Callable] = None
    arity: int = 0
    origin: str = ""
    acquired: bool = False
    updater: Optional[Callable] = None

    def is_computed(self) -> bool:
        return self.kind is AttributeKind.COMPUTED

    def rebased(self, origin: str) -> "AttributeDef":
        """A copy of this definition recorded as written in ``origin``."""
        return AttributeDef(
            self.name,
            self.declared_type,
            self.kind,
            self.procedure,
            self.arity,
            origin,
            self.acquired,
            self.updater,
        )


@dataclass(frozen=True)
class Computed:
    """A terse spec for a computed attribute with an optional type.

    Usable as an attribute value in ``define_class``::

        db.define_class("Manager", parents=["Employee"], attributes={
            "Address": Computed(lambda self: self.Company.Address),
        })
    """

    procedure: Callable
    declared_type: object = None
    arity: int = 0


class ClassKind(enum.Enum):
    """Origin of a class: stored base class, or view-defined."""

    BASE = "base"
    VIRTUAL = "virtual"
    IMAGINARY = "imaginary"


@dataclass
class ClassDef:
    """One class: its parents and its own attribute definitions."""

    name: str
    parents: Tuple[str, ...] = ()
    attributes: Dict[str, AttributeDef] = field(default_factory=dict)
    kind: ClassKind = ClassKind.BASE
    doc: str = ""

    def own_attribute(self, name: str) -> Optional[AttributeDef]:
        return self.attributes.get(name)

    def copy(self) -> "ClassDef":
        return ClassDef(
            self.name,
            self.parents,
            dict(self.attributes),
            self.kind,
            self.doc,
        )


def _normalize_attributes(
    class_name: str, attributes: Optional[Mapping]
) -> Dict[str, AttributeDef]:
    """Accept terse attribute specs and produce :class:`AttributeDef` s.

    Each value may be an :class:`AttributeDef`, a type signature (see
    :func:`~repro.engine.types.type_from_signature`), or a callable
    (making the attribute computed with an inferred type).
    """
    result: Dict[str, AttributeDef] = {}
    for name, spec in (attributes or {}).items():
        if isinstance(spec, AttributeDef):
            result[name] = spec.rebased(class_name)
        elif isinstance(spec, Computed):
            declared = (
                type_from_signature(spec.declared_type)
                if spec.declared_type is not None
                else None
            )
            result[name] = AttributeDef(
                name,
                declared,
                AttributeKind.COMPUTED,
                spec.procedure,
                spec.arity,
                class_name,
            )
        elif callable(spec) and not isinstance(spec, type):
            result[name] = AttributeDef(
                name,
                None,
                AttributeKind.COMPUTED,
                spec,
                origin=class_name,
            )
        else:
            result[name] = AttributeDef(
                name,
                type_from_signature(spec),
                AttributeKind.STORED,
                origin=class_name,
            )
    return result


class Schema(TypeContext):
    """A mutable collection of class definitions forming a DAG."""

    def __init__(self):
        self._classes: Dict[str, ClassDef] = {}
        # Ticks on every structural mutation; cached query plans are
        # validated against it (see repro.query.planner).
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    # Definition
    # ------------------------------------------------------------------

    def define_class(
        self,
        name: str,
        parents: Sequence[str] = (),
        attributes: Optional[Mapping] = None,
        kind: ClassKind = ClassKind.BASE,
        doc: str = "",
    ) -> ClassDef:
        """Define a new class.

        Raises:
            DuplicateClassError: if ``name`` already exists.
            UnknownClassError: if a parent is undefined.
        """
        if name in self._classes:
            raise DuplicateClassError(name)
        for parent in parents:
            if parent not in self._classes:
                raise UnknownClassError(parent)
        cdef = ClassDef(
            name,
            tuple(parents),
            _normalize_attributes(name, attributes),
            kind,
            doc,
        )
        self._classes[name] = cdef
        self._version += 1
        return cdef

    def define_attribute(
        self,
        class_name: str,
        attribute: str,
        declared_type=None,
        procedure: Optional[Callable] = None,
        arity: int = 0,
    ) -> AttributeDef:
        """Add (or override) an attribute on an existing class.

        With ``procedure`` the attribute is computed; otherwise stored.
        Mirrors the paper's declaration
        ``attribute A {of type T} in class C {has value V}``.
        """
        cdef = self.require(class_name)
        if declared_type is not None:
            declared_type = type_from_signature(declared_type)
        kind = (
            AttributeKind.COMPUTED
            if procedure is not None
            else AttributeKind.STORED
        )
        adef = AttributeDef(
            attribute, declared_type, kind, procedure, arity, class_name
        )
        cdef.attributes[attribute] = adef
        self._version += 1
        return adef

    def add_parent(self, class_name: str, parent: str) -> None:
        """Add a superclass edge, refusing cycles.

        Hierarchy inference for virtual classes (§4.2) uses this to
        insert classes into the middle of the hierarchy.
        """
        cdef = self.require(class_name)
        self.require(parent)
        if parent in cdef.parents:
            return
        if self.isa(parent, class_name):
            raise HierarchyCycleError(
                f"making {parent!r} a superclass of {class_name!r}"
                " would create a cycle"
            )
        cdef.parents = cdef.parents + (parent,)
        self._version += 1

    def remove_parent(self, class_name: str, parent: str) -> None:
        cdef = self.require(class_name)
        cdef.parents = tuple(p for p in cdef.parents if p != parent)
        self._version += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self):
        return iter(list(self._classes.values()))

    def class_names(self) -> List[str]:
        return list(self._classes)

    def get(self, name: str) -> Optional[ClassDef]:
        return self._classes.get(name)

    def require(self, name: str) -> ClassDef:
        cdef = self._classes.get(name)
        if cdef is None:
            raise UnknownClassError(name)
        return cdef

    # ------------------------------------------------------------------
    # Hierarchy queries
    # ------------------------------------------------------------------

    def direct_parents(self, name: str) -> Tuple[str, ...]:
        return self.require(name).parents

    def direct_children(self, name: str) -> List[str]:
        self.require(name)
        # Iterate over a copy: the schema object is shared by reference
        # with database snapshots, and concurrent DDL (which serializes
        # on the commit lock, not against readers) must not blow up a
        # pinned reader's hierarchy walk mid-iteration.
        return [
            cdef.name
            for cdef in list(self._classes.values())
            if name in cdef.parents
        ]

    def ancestors(self, name: str) -> List[str]:
        """All strict superclasses, nearest first (BFS order)."""
        self.require(name)
        seen: List[str] = []
        frontier = list(self.require(name).parents)
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.append(current)
            frontier.extend(self.require(current).parents)
        return seen

    def descendants(self, name: str) -> List[str]:
        """All strict subclasses (BFS order)."""
        self.require(name)
        seen: List[str] = []
        frontier = self.direct_children(name)
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.append(current)
            frontier.extend(self.direct_children(current))
        return seen

    def isa(self, sub: str, sup: str) -> bool:
        """True if ``sub`` equals ``sup`` or is a transitive subclass."""
        if sub == sup:
            return sub in self._classes
        if sub not in self._classes or sup not in self._classes:
            return False
        return sup in self.ancestors(sub)

    def roots(self) -> List[str]:
        return [c.name for c in self._classes.values() if not c.parents]

    def least_common_superclasses(
        self, first: str, second: str
    ) -> Sequence[str]:
        """Minimal common superclasses of two classes.

        Used by the type lattice to take LUBs of class types.
        """
        if first not in self._classes or second not in self._classes:
            return []
        common = set([first] + self.ancestors(first)) & set(
            [second] + self.ancestors(second)
        )
        minimal = [
            c
            for c in common
            if not any(
                other != c and self.isa(other, c) for other in common
            )
        ]
        return sorted(minimal)

    def linearize(self, name: str) -> List[str]:
        """Attribute-resolution order: the class, then superclasses.

        Uses C3 linearization when it exists, otherwise a deterministic
        BFS fallback (the paper does not fix a policy; C3 matches what
        the O₂ successor systems adopted).
        """
        self.require(name)
        try:
            return self._c3(name)
        except SchemaError:
            return [name] + self.ancestors(name)

    def _c3(self, name: str) -> List[str]:
        parents = list(self.require(name).parents)
        if not parents:
            return [name]
        sequences = [self._c3(p) for p in parents] + [parents]
        return [name] + self._c3_merge(sequences)

    @staticmethod
    def _c3_merge(sequences: List[List[str]]) -> List[str]:
        result: List[str] = []
        sequences = [list(s) for s in sequences if s]
        while sequences:
            head = None
            for seq in sequences:
                candidate = seq[0]
                if not any(
                    candidate in other[1:] for other in sequences
                ):
                    head = candidate
                    break
            if head is None:
                raise SchemaError("inconsistent hierarchy (C3 failed)")
            result.append(head)
            sequences = [
                [c for c in seq if c != head] for seq in sequences
            ]
            sequences = [seq for seq in sequences if seq]
        return result

    # ------------------------------------------------------------------
    # Attribute resolution (downward inheritance)
    # ------------------------------------------------------------------

    def resolve_attribute(
        self, class_name: str, attribute: str
    ) -> AttributeDef:
        """Find the effective definition of ``attribute`` for the class.

        Walks the linearization; the nearest definition wins — this is
        the standard downward inheritance with overriding.
        """
        for cls in self.linearize(class_name):
            adef = self.require(cls).own_attribute(attribute)
            if adef is not None:
                return adef
        raise UnknownAttributeError(class_name, attribute)

    def attributes_of(self, class_name: str) -> Dict[str, AttributeDef]:
        """All effective attributes of a class, resolution applied."""
        result: Dict[str, AttributeDef] = {}
        for cls in reversed(self.linearize(class_name)):
            for name, adef in self.require(cls).attributes.items():
                result[name] = adef
        return result

    def stored_attributes_of(
        self, class_name: str
    ) -> Dict[str, AttributeDef]:
        return {
            name: adef
            for name, adef in self.attributes_of(class_name).items()
            if not adef.is_computed()
        }

    def tuple_type_of(self, class_name: str) -> TupleType:
        """The tuple type of a class: all typed effective attributes."""
        fields: Dict[str, Type] = {}
        for name, adef in self.attributes_of(class_name).items():
            if adef.declared_type is not None:
                fields[name] = adef.declared_type
        return TupleType(fields)

    def class_type(self, class_name: str) -> ClassType:
        self.require(class_name)
        return ClassType(class_name)

    # ------------------------------------------------------------------
    # Copying (views derive their schema from base schemas)
    # ------------------------------------------------------------------

    def copy(self) -> "Schema":
        clone = Schema()
        for name, cdef in self._classes.items():
            clone._classes[name] = cdef.copy()
        return clone

    def copy_classes_from(
        self, other: "Schema", names: Optional[Iterable[str]] = None
    ) -> None:
        """Import class definitions (with their subclasses) from another
        schema. Importing a class makes its whole subtree visible, per
        §3 of the paper ("when classes are imported, they become visible
        together with their subclasses").
        """
        if names is None:
            wanted = set(other.class_names())
        else:
            wanted = set()
            for name in names:
                other.require(name)
                wanted.add(name)
                wanted.update(other.descendants(name))
        # Parents outside the imported set must come along too, or the
        # DAG would dangle; they are imported transitively.
        frontier = list(wanted)
        while frontier:
            current = frontier.pop()
            for parent in other.require(current).parents:
                if parent not in wanted:
                    wanted.add(parent)
                    frontier.append(parent)
        for name in wanted:
            if name not in self._classes:
                self._classes[name] = other.require(name).copy()
                self._version += 1
