"""Multi-version concurrency: immutable database snapshots.

PR 2 made the served engine safe by excluding readers whenever a
writer runs; this module removes that cost. A
:class:`DatabaseSnapshot` is a *consistent, immutable* read view of
one :class:`~repro.engine.database.Database` version: the flat object
table, the per-class extents and the attribute indexes as they stood
at one commit. Snapshots are built copy-on-write-on-share:

- publishing a snapshot copies **nothing** — it captures references to
  the live structures and marks them *shared*;
- the next mutation that would touch a shared structure replaces it
  with a private copy first (see ``Database._writable_objects`` /
  ``_writable_extent`` and ``AttributeIndex._ensure_private``), so the
  published snapshot keeps the old state while the live database moves
  on;
- when no snapshot is outstanding, mutations pay nothing.

All mutations and DDL serialize through the database's commit lock and
end by *installing* a new version: an O(1) step that bumps the store
version and invalidates the cached snapshot. The next ``snapshot()``
call materializes (and caches) the new version under the commit lock;
every later call until the next install is a lock-free reference grab.
``Database.begin_batch()`` / ``end_batch()`` bracket many mutations
into **one** install — the engine half of the server's group commit.

:class:`CommitStats` counts the traffic (snapshots taken, versions
installed, batch sizes, conflict retries); it is surfaced through
``ViewStats``, the CLI ``.stats`` command and the server ``stats`` op
alongside the plan-cache counters.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from ..errors import UnknownOidError
from .objects import DatabaseObject, ObjectHandle, Scope
from .oid import EMPTY_OID_SET, Oid, OidSet
from .schema import AttributeDef, Schema
from .tracking import ACTIVE_TRACKERS, record_extent_read


class CommitStats:
    """Thread-safe counters for one database's commit path."""

    _FIELDS = (
        "snapshots_taken",
        "versions_installed",
        "batch_commits",
        "batched_ops",
        "max_batch_size",
        "conflict_retries",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self.snapshots_taken = 0
        self.versions_installed = 0
        self.batch_commits = 0
        self.batched_ops = 0
        self.max_batch_size = 0
        self.conflict_retries = 0

    def record_snapshot(self) -> None:
        with self._lock:
            self.snapshots_taken += 1

    def record_install(self, ops: int = 1) -> None:
        """One version installed, covering ``ops`` mutations."""
        with self._lock:
            self.versions_installed += 1
            if ops > 1:
                self.batch_commits += 1
                self.batched_ops += ops
                if ops > self.max_batch_size:
                    self.max_batch_size = ops

    def record_conflict_retry(self) -> None:
        with self._lock:
            self.conflict_retries += 1

    def reset(self) -> None:
        with self._lock:
            for field in self._FIELDS:
                setattr(self, field, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {field: getattr(self, field) for field in self._FIELDS}

    def describe(self) -> str:
        snap = self.snapshot()
        return "\n".join(
            [
                f"snapshots taken:    {snap['snapshots_taken']}",
                f"versions installed: {snap['versions_installed']}",
                f"batch commits:      {snap['batch_commits']}"
                f" ({snap['batched_ops']} ops,"
                f" max {snap['max_batch_size']})",
                f"conflict retries:   {snap['conflict_retries']}",
            ]
        )


def commit_stats_sources(scope, _seen: Optional[set] = None) -> List[CommitStats]:
    """Every :class:`CommitStats` reachable from a scope.

    A database yields its own; a view yields its providers',
    transitively (stacked views reach through to the base databases).
    """
    if _seen is None:
        _seen = set()
    if id(scope) in _seen:
        return []
    _seen.add(id(scope))
    own = getattr(scope, "mvcc", None)
    if isinstance(own, CommitStats):
        return [own]
    found: List[CommitStats] = []
    for provider in getattr(scope, "_providers", ()):
        found.extend(commit_stats_sources(provider, _seen))
    return found


def aggregate_commit_stats(scopes) -> Dict[str, int]:
    """Summed commit counters across ``scopes`` (CLI/server ``stats``)."""
    totals = {field: 0 for field in CommitStats._FIELDS}
    seen: set = set()
    for scope in scopes:
        for stats in commit_stats_sources(scope, seen):
            for field, value in stats.snapshot().items():
                if field == "max_batch_size":
                    totals[field] = max(totals[field], value)
                else:
                    totals[field] += value
    return totals


def describe_commit_totals(totals: Dict[str, int]) -> str:
    """Render aggregated commit counters in ``.stats`` style."""
    return "\n".join(
        [
            f"snapshots taken:    {totals['snapshots_taken']}",
            f"versions installed: {totals['versions_installed']}",
            f"batch commits:      {totals['batch_commits']}"
            f" ({totals['batched_ops']} ops,"
            f" max {totals['max_batch_size']})",
            f"conflict retries:   {totals['conflict_retries']}",
        ]
    )


class VersionRegistry:
    """Tracks published snapshot versions and reclaims unpinned ones.

    Copy-on-write sharing means every published version retains the
    object table, extents and index state it froze until nothing
    references it. This registry makes that lifetime explicit: a
    version is *published* when the database caches its snapshot,
    *pinned* while a ``read_view`` on some thread answers reads from
    it, and *superseded* when a later version installs. A superseded
    version is **reclaimed** — the registry drops its reference and
    counts it — as soon as its last pin is released (immediately, if it
    was never pinned). Live/pinned/retained counts are surfaced through
    ``.stats``, the server ``stats`` op and the Prometheus export.

    Snapshots materialized outside the cache (mid-batch reads, the
    checkpointer's :meth:`Database.capture_snapshot`) are deliberately
    not registered: their lifetime belongs to their caller.
    """

    _FIELDS = (
        "versions_published",
        "versions_reclaimed",
        "versions_live",
        "pinned_readers",
        "retained_objects",
        "retained_bytes_estimate",
    )

    # Nominal per-object retention cost (table slot + extent membership
    # + value dict header) used for the bytes estimate; the point is
    # the trend, not the exact heap size.
    _BYTES_PER_OBJECT = 128

    def __init__(self, name: str):
        self._name = name
        self._lock = threading.Lock()
        # version -> [snapshot, pin_count, superseded?]
        self._entries: Dict[int, list] = {}
        self.versions_published = 0
        self.versions_reclaimed = 0

    def published(self, snap: "DatabaseSnapshot") -> None:
        with self._lock:
            if snap.version in self._entries:
                return
            self._entries[snap.version] = [snap, 0, False]
            self.versions_published += 1

    def superseded(self, snap: "DatabaseSnapshot") -> None:
        """A newer version installed; reclaim now if unpinned."""
        with self._lock:
            entry = self._entries.get(snap.version)
            if entry is None:
                return
            entry[2] = True
            if entry[1] == 0:
                self._reclaim(snap.version)

    def pin(self, snap: "DatabaseSnapshot") -> None:
        with self._lock:
            entry = self._entries.get(snap.version)
            if entry is not None and entry[0] is snap:
                entry[1] += 1

    def unpin(self, snap: "DatabaseSnapshot") -> None:
        with self._lock:
            entry = self._entries.get(snap.version)
            if entry is None or entry[0] is not snap:
                return
            if entry[1] > 0:
                entry[1] -= 1
            if entry[1] == 0 and entry[2]:
                self._reclaim(snap.version)

    def _reclaim(self, version: int) -> None:
        # Caller holds the lock. Dropping the reference is the
        # reclamation: with no registry entry and no reader pin, the
        # frozen object table and extents become collectable.
        del self._entries[version]
        self.versions_reclaimed += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            retained = sum(
                entry[0].object_count()
                for entry in self._entries.values()
                if entry[2]
            )
            return {
                "versions_published": self.versions_published,
                "versions_reclaimed": self.versions_reclaimed,
                "versions_live": len(self._entries),
                "pinned_readers": sum(
                    entry[1] for entry in self._entries.values()
                ),
                "retained_objects": retained,
                "retained_bytes_estimate": retained * self._BYTES_PER_OBJECT,
            }

    def live_versions(self) -> List[int]:
        with self._lock:
            return sorted(self._entries)

    def reset(self) -> None:
        """Reset the monotone counters (live entries are kept)."""
        with self._lock:
            self.versions_published = len(self._entries)
            self.versions_reclaimed = 0


def version_stats_sources(
    scope, _seen: Optional[set] = None
) -> List[VersionRegistry]:
    """Every :class:`VersionRegistry` reachable from a scope (own, or
    the providers' for views — mirroring
    :func:`commit_stats_sources`)."""
    if _seen is None:
        _seen = set()
    if id(scope) in _seen:
        return []
    _seen.add(id(scope))
    own = getattr(scope, "versions", None)
    if isinstance(own, VersionRegistry):
        return [own]
    found: List[VersionRegistry] = []
    for provider in getattr(scope, "_providers", ()):
        found.extend(version_stats_sources(provider, _seen))
    return found


def aggregate_version_stats(scopes) -> Dict[str, int]:
    """Summed version-GC counters across ``scopes``."""
    totals = {field: 0 for field in VersionRegistry._FIELDS}
    seen: set = set()
    for scope in scopes:
        for registry in version_stats_sources(scope, seen):
            for field, value in registry.snapshot().items():
                totals[field] += value
    return totals


def describe_version_totals(totals: Dict[str, int]) -> str:
    """Render aggregated version-GC counters in ``.stats`` style."""
    return "\n".join(
        [
            f"versions published: {totals['versions_published']}"
            f" (live {totals['versions_live']},"
            f" reclaimed {totals['versions_reclaimed']})",
            f"pinned readers:     {totals['pinned_readers']}",
            f"retained objects:   {totals['retained_objects']}"
            f" (~{totals['retained_bytes_estimate']} bytes)",
        ]
    )


class DatabaseSnapshot(Scope):
    """One immutable version of a database's stored state.

    A full read-only :class:`~repro.engine.objects.Scope`: queries,
    handles and index probes all work against it, and reads record
    into the ambient dependency trackers exactly as live reads do — a
    view population evaluated against a pinned snapshot carries the
    same read set it would have live.

    The schema object is shared by reference, not versioned: DDL
    serializes through the same commit path as data writes, so a
    snapshot observes schema changes made after it was taken. Data —
    objects, extents, index contents — is frozen.

    Mutating entry points are absent by construction; ``create`` /
    ``update`` / ``delete`` raise ``AttributeError``.
    """

    def __init__(
        self,
        origin,
        version: int,
        objects: Dict[Oid, DatabaseObject],
        extents: Dict[str, set],
        index_snapshot,
    ):
        self._origin = origin
        self._version = version
        self._objects = objects
        self._extents = extents
        self._index_snapshot = index_snapshot
        self._schema: Schema = origin.schema
        # Compiled plans are shared with the origin database: the plan
        # token (schema + index versions) decides validity, and data
        # mutations never invalidate plans.
        self._plan_cache = getattr(origin, "_plan_cache", None)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def scope_name(self) -> str:
        return self._origin.scope_name

    @property
    def name(self) -> str:
        return self._origin.scope_name

    @property
    def version(self) -> int:
        """The store version this snapshot froze."""
        return self._version

    @property
    def origin(self):
        """The live database this snapshot was taken from."""
        return self._origin

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def indexes(self):
        """The frozen index registry captured with this version."""
        return self._index_snapshot

    @property
    def functions(self) -> Dict[str, object]:
        return self._origin.functions

    @property
    def function_types(self) -> Dict[str, object]:
        return self._origin.function_types

    @property
    def plan_version_token(self) -> tuple:
        """Token compiled plans are validated against (see
        :func:`repro.query.planner.plan_token`); identical to the live
        database's token until a DDL or index change installs."""
        return (
            self._schema.version,
            0,
            0,
            self._index_snapshot.version
            if self._index_snapshot is not None
            else -1,
        )

    # ------------------------------------------------------------------
    # Scope protocol (reads only)
    # ------------------------------------------------------------------

    def _require(self, oid: Oid) -> DatabaseObject:
        obj = self._objects.get(oid)
        if obj is None:
            raise UnknownOidError(oid)
        return obj

    def _class_name_of(self, oid: Oid) -> Optional[str]:
        # Demand-paged object maps answer this from their directory
        # without faulting the object in (see engine.database).
        lookup = getattr(self._objects, "class_name_of", None)
        if lookup is not None:
            return lookup(oid)
        obj = self._objects.get(oid)
        return obj.class_name if obj is not None else None

    def class_of(self, oid: Oid) -> str:
        name = self._class_name_of(oid)
        if name is None:
            raise UnknownOidError(oid)
        return name

    def raw_value(self, oid: Oid) -> Dict[str, object]:
        return self._require(oid).value

    def resolve_attribute_for(self, oid: Oid, attribute: str) -> AttributeDef:
        return self._schema.resolve_attribute(self.class_of(oid), attribute)

    def is_member(self, oid: Oid, class_name: str) -> bool:
        if ACTIVE_TRACKERS:
            record_extent_read(class_name)
        real_class = self._class_name_of(oid)
        if real_class is None:
            return False
        return self._schema.isa(real_class, class_name)

    def extent(self, class_name: str, deep: bool = True) -> OidSet:
        if ACTIVE_TRACKERS:
            record_extent_read(class_name)
        self._schema.require(class_name)
        members = set(self._extents.get(class_name, ()))
        if deep:
            for sub in self._schema.descendants(class_name):
                members.update(self._extents.get(sub, ()))
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def handles(self, class_name: str, deep: bool = True) -> List[ObjectHandle]:
        return [
            ObjectHandle(self, oid) for oid in self.extent(class_name, deep)
        ]

    def contains_oid(self, oid: Oid) -> bool:
        return oid in self._objects

    def all_oids(self) -> Iterator[Oid]:
        return iter(sorted(self._objects))

    def object_count(self) -> int:
        return len(self._objects)

    def query(self, query, **parameters):
        """Evaluate a query against this frozen version."""
        from ..query.planner import execute

        return execute(query, self, bindings=parameters or None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatabaseSnapshot({self.scope_name!r}, v{self._version},"
            f" {len(self._objects)} objects)"
        )
