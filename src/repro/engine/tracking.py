"""Read-dependency tracking for incremental view maintenance.

The paper (§4/§5) frames virtual-class population as a generalization
of "the traditional problem of materialized views". Maintaining those
populations incrementally requires knowing *what each cached
computation read*: which class extents it iterated and which
(class, attribute) pairs it consulted. This module supplies the
ambient recorder the rest of the system reports into:

- :class:`DependencySet` — the read set of one computation: class
  names whose extents/membership were consulted, plus
  ``(class, attribute)`` pairs whose stored or computed values were
  read;
- :class:`DependencyTracker` — a recorder pushed onto an ambient
  per-thread stack for the duration of one computation (population
  evaluation, family instantiation, attribute resolution); concurrent
  server threads each get an independent stack, so one connection's
  reads never leak into another's read set;
- module functions :func:`record_extent_read`,
  :func:`record_attribute_read` and :func:`replay_dependencies` called
  from the scopes (``extent``/``is_member``/``access``); they are
  no-ops when no tracker is active, so untracked reads cost one list
  truthiness check.

Trackers nest: population evaluation inside a query evaluation records
into *both* recorders, so an outer cache's dependency set always
covers its inner caches' reads. When an inner cache *hits*, the inner
computation does not re-run — the cache owner must call
:func:`replay_dependencies` with the stored read set so the outer
recorder still sees the transitive dependencies.

Dependency sets are interpreted against a view's per-class version
vector (see :meth:`repro.core.view.View.dependency_snapshot`): a
cached result is current exactly when every recorded dependency still
has the version it had when the result was computed.
"""

from __future__ import annotations

import threading
from typing import FrozenSet, Iterator, List, Optional, Tuple


class DependencySet:
    """The read set of one computation.

    ``extents`` holds class names whose extent or membership was
    consulted; ``attributes`` holds ``(class, attribute)`` pairs whose
    values were read (keyed by the *real* class of the object read, so
    an update event — which carries the real class — maps directly).
    """

    __slots__ = ("extents", "attributes")

    def __init__(
        self,
        extents: Optional[FrozenSet[str]] = None,
        attributes: Optional[FrozenSet[Tuple[str, str]]] = None,
    ):
        self.extents = set(extents or ())
        self.attributes = set(attributes or ())

    def merge(self, other: "DependencySet") -> None:
        self.extents |= other.extents
        self.attributes |= other.attributes

    def classes(self) -> set:
        """Every class name the computation depends on."""
        return self.extents | {cls for cls, _ in self.attributes}

    def frozen(self) -> "FrozenDependencySet":
        return FrozenDependencySet(
            tuple(sorted(self.extents)), tuple(sorted(self.attributes))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DependencySet(extents={sorted(self.extents)},"
            f" attributes={sorted(self.attributes)})"
        )


class FrozenDependencySet:
    """An immutable dependency set, stored alongside a cached result.

    The tuples are sorted so a version snapshot taken against them can
    be compared positionally (see ``View.dependency_snapshot``).
    """

    __slots__ = ("extents", "attributes")

    def __init__(
        self,
        extents: Tuple[str, ...],
        attributes: Tuple[Tuple[str, str], ...],
    ):
        self.extents = extents
        self.attributes = attributes

    def classes(self) -> set:
        return set(self.extents) | {cls for cls, _ in self.attributes}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrozenDependencySet(extents={list(self.extents)},"
            f" attributes={list(self.attributes)})"
        )


class DependencyTracker:
    """Records reads into a :class:`DependencySet` while active.

    Use as a context manager::

        with DependencyTracker() as tracker:
            population = evaluate(query, view)
        deps = tracker.deps.frozen()
    """

    __slots__ = ("deps",)

    def __init__(self):
        self.deps = DependencySet()

    def __enter__(self) -> "DependencyTracker":
        ACTIVE_TRACKERS.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        ACTIVE_TRACKERS.remove(self)
        return False


class _TrackerStack:
    """The ambient tracker stack, kept per-thread.

    Server connections evaluate queries concurrently (one thread per
    connection); a process-wide list would let one thread's reads leak
    into another thread's read set, poisoning its cache dependencies.
    Each thread therefore sees its own independent stack. The object
    keeps the list interface the recording sites rely on (truthiness,
    iteration, ``append``/``remove``), so ``from tracking import
    ACTIVE_TRACKERS`` binds one shared proxy whose *contents* are
    thread-local.
    """

    __slots__ = ("_local",)

    def __init__(self):
        self._local = threading.local()

    def _stack(self) -> List[DependencyTracker]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def append(self, tracker: DependencyTracker) -> None:
        self._stack().append(tracker)

    def remove(self, tracker: DependencyTracker) -> None:
        self._stack().remove(tracker)

    def __bool__(self) -> bool:
        stack = getattr(self._local, "stack", None)
        return bool(stack)

    def __iter__(self) -> Iterator[DependencyTracker]:
        return iter(self._stack())

    def __len__(self) -> int:
        stack = getattr(self._local, "stack", None)
        return len(stack) if stack else 0


# The ambient tracker stack. Reads are recorded into *every* active
# tracker of the current thread so nested computations feed their
# enclosing caches; other threads' trackers never see them.
ACTIVE_TRACKERS = _TrackerStack()


class ScopePins:
    """A per-thread pinned-snapshot slot for one database.

    The second piece of ambient per-thread state next to the tracker
    stack: while a thread holds a pin (``Database.read_view``), every
    read the database serves on that thread — directly, through
    handles, or through a view evaluating a population — is answered
    from the pinned immutable :class:`~repro.engine.versions.
    DatabaseSnapshot` instead of the live structures. Other threads'
    pins are invisible, so concurrent requests each read their own
    consistent version.

    Pins nest (a pinned evaluation that re-pins restores the previous
    pin on exit), mirroring the tracker stack's nesting.
    """

    __slots__ = ("_local",)

    def __init__(self):
        self._local = threading.local()

    def current(self):
        """The calling thread's pinned snapshot, or ``None``."""
        return getattr(self._local, "pin", None)

    def push(self, snapshot):
        """Pin ``snapshot`` for the calling thread; returns the
        previous pin (pass it back to :meth:`restore`)."""
        previous = getattr(self._local, "pin", None)
        self._local.pin = snapshot
        return previous

    def restore(self, previous) -> None:
        self._local.pin = previous


def tracking_active() -> bool:
    return bool(ACTIVE_TRACKERS)


def record_extent_read(class_name: str) -> None:
    """Record that a computation consulted a class's extent or
    membership."""
    for tracker in ACTIVE_TRACKERS:
        tracker.deps.extents.add(class_name)


def record_attribute_read(class_name: str, attribute: str) -> None:
    """Record that a computation read an attribute of an object real in
    ``class_name``."""
    for tracker in ACTIVE_TRACKERS:
        tracker.deps.attributes.add((class_name, attribute))


def replay_dependencies(deps) -> None:
    """Feed a stored read set into the active trackers (cache hit: the
    computation did not re-run, but its dependencies still flow to any
    enclosing cache)."""
    if not ACTIVE_TRACKERS:
        return
    for tracker in ACTIVE_TRACKERS:
        tracker.deps.extents.update(deps.extents)
        tracker.deps.attributes.update(deps.attributes)
