"""The type lattice of the O₂-style data model.

Types are immutable and hashable. The lattice has:

- ``ANY`` at the top and ``NOTHING`` at the bottom;
- atom types (``string``, ``integer``, ``real``, ``boolean``, plus
  user-declared atoms such as ``dollar``), with ``integer <: real``;
- tuple types with *width and depth* subtyping — a tuple type with more
  attributes is a subtype, exactly the relation the paper's ``like``
  construct needs ("group all classes whose type is at least as specific
  as the type of B. Such a class may have more attributes than B, but not
  fewer");
- covariant set and list types;
- class types, whose subtyping is delegated to a :class:`TypeContext`
  (normally a schema) via its ``isa`` relation.

The module also implements least upper bounds (:func:`lub`), which §4.3
of the paper uses for upward inheritance: a virtual class acquires an
attribute only when the member types have a least upper bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..errors import NoLeastUpperBoundError, TypeSystemError


class Type:
    """Abstract base of all types. Instances are immutable."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    def describe(self) -> str:
        raise NotImplementedError


class AnyType(Type):
    """Top of the lattice: every type is a subtype of ``ANY``."""

    __slots__ = ()
    _instance: Optional["AnyType"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def describe(self) -> str:
        return "any"


class NothingType(Type):
    """Bottom of the lattice: ``NOTHING`` is a subtype of every type.

    It is the element type of an empty set literal and the identity of
    :func:`lub`.
    """

    __slots__ = ()
    _instance: Optional["NothingType"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def describe(self) -> str:
        return "nothing"


ANY = AnyType()
NOTHING = NothingType()


class AtomType(Type):
    """A named atomic type such as ``string`` or ``dollar``.

    Atom instances are interned: ``AtomType("string") is STRING``.
    """

    __slots__ = ("name",)
    _interned: Dict[str, "AtomType"] = {}

    def __new__(cls, name: str):
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        instance = super().__new__(cls)
        object.__setattr__(instance, "name", name)
        cls._interned[name] = instance
        return instance

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("AtomType is immutable")

    def describe(self) -> str:
        return self.name


STRING = AtomType("string")
INTEGER = AtomType("integer")
REAL = AtomType("real")
BOOLEAN = AtomType("boolean")

#: Built-in widening: integer may be used where real is expected.
_ATOM_WIDENING = {(INTEGER, REAL)}


class TupleType(Type):
    """A tuple type ``[a1: T1, ..., an: Tn]``.

    Field order is not significant for equality; fields are stored sorted
    by name so equal tuple types hash equally.
    """

    __slots__ = ("fields",)

    def __init__(self, fields: Mapping[str, Type]):
        for name, ftype in fields.items():
            if not isinstance(ftype, Type):
                raise TypeSystemError(
                    f"tuple field {name!r} is not a Type: {ftype!r}"
                )
        object.__setattr__(
            self, "fields", tuple(sorted(fields.items()))
        )

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("TupleType is immutable")

    def field_map(self) -> Dict[str, Type]:
        return dict(self.fields)

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def field_type(self, name: str) -> Optional[Type]:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def __eq__(self, other) -> bool:
        return isinstance(other, TupleType) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(("tuple", self.fields))

    def describe(self) -> str:
        inner = ", ".join(
            f"{name}: {ftype.describe()}" for name, ftype in self.fields
        )
        return f"[{inner}]"


class SetType(Type):
    """A set type ``{T}`` (covariant in its element type)."""

    __slots__ = ("element",)

    def __init__(self, element: Type):
        if not isinstance(element, Type):
            raise TypeSystemError(f"set element is not a Type: {element!r}")
        object.__setattr__(self, "element", element)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("SetType is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, SetType) and self.element == other.element

    def __hash__(self) -> int:
        return hash(("set", self.element))

    def describe(self) -> str:
        return f"{{{self.element.describe()}}}"


class ListType(Type):
    """A list type ``<T>`` (covariant in its element type)."""

    __slots__ = ("element",)

    def __init__(self, element: Type):
        if not isinstance(element, Type):
            raise TypeSystemError(f"list element is not a Type: {element!r}")
        object.__setattr__(self, "element", element)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("ListType is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, ListType) and self.element == other.element

    def __hash__(self) -> int:
        return hash(("list", self.element))

    def describe(self) -> str:
        return f"<{self.element.describe()}>"


class ClassType(Type):
    """A reference to a class; its values are oids of members.

    Subtyping between class types is the ``isa`` relation of the schema,
    supplied through a :class:`TypeContext`.
    """

    __slots__ = ("class_name",)

    def __init__(self, class_name: str):
        object.__setattr__(self, "class_name", class_name)

    def __setattr__(self, key, value):  # pragma: no cover - immutability
        raise AttributeError("ClassType is immutable")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ClassType)
            and self.class_name == other.class_name
        )

    def __hash__(self) -> int:
        return hash(("class", self.class_name))

    def describe(self) -> str:
        return self.class_name


class TypeContext:
    """Resolves class-type subtyping questions.

    The default context knows nothing: class types relate only to
    themselves. A schema provides a richer context.
    """

    def isa(self, sub: str, sup: str) -> bool:
        """True if class ``sub`` is ``sup`` or a (transitive) subclass."""
        return sub == sup

    def least_common_superclasses(
        self, first: str, second: str
    ) -> Sequence[str]:
        """Minimal common superclasses of the two classes (maybe empty)."""
        if first == second:
            return [first]
        return []


EMPTY_CONTEXT = TypeContext()


def is_subtype(sub: Type, sup: Type, ctx: TypeContext = EMPTY_CONTEXT) -> bool:
    """True if ``sub`` may be used wherever ``sup`` is expected."""
    if isinstance(sub, NothingType) or isinstance(sup, AnyType):
        return True
    if isinstance(sub, AnyType) or isinstance(sup, NothingType):
        return False
    if isinstance(sub, AtomType) and isinstance(sup, AtomType):
        return sub is sup or (sub, sup) in _ATOM_WIDENING
    if isinstance(sub, TupleType) and isinstance(sup, TupleType):
        sub_fields = sub.field_map()
        for name, sup_field in sup.fields:
            sub_field = sub_fields.get(name)
            if sub_field is None or not is_subtype(sub_field, sup_field, ctx):
                return False
        return True
    if isinstance(sub, SetType) and isinstance(sup, SetType):
        return is_subtype(sub.element, sup.element, ctx)
    if isinstance(sub, ListType) and isinstance(sup, ListType):
        return is_subtype(sub.element, sup.element, ctx)
    if isinstance(sub, ClassType) and isinstance(sup, ClassType):
        return ctx.isa(sub.class_name, sup.class_name)
    return False


def lub(first: Type, second: Type, ctx: TypeContext = EMPTY_CONTEXT) -> Type:
    """Least upper bound of two types.

    Raises:
        NoLeastUpperBoundError: when the two types have no unique least
            upper bound other than falling back to ``ANY`` would hide a
            modelling error (e.g. a string and an integer). Upward
            inheritance (§4.3) treats this as "attribute undefined".
    """
    if is_subtype(first, second, ctx):
        return second
    if is_subtype(second, first, ctx):
        return first
    if isinstance(first, AtomType) and isinstance(second, AtomType):
        if {first, second} == {INTEGER, REAL}:
            return REAL
        raise NoLeastUpperBoundError(
            f"atoms {first.describe()} and {second.describe()} are unrelated"
        )
    if isinstance(first, TupleType) and isinstance(second, TupleType):
        # The LUB of tuple types keeps the common fields, each at the LUB
        # of the two field types; fields whose types have no LUB are
        # dropped (width subtyping makes the result an upper bound).
        merged: Dict[str, Type] = {}
        second_fields = second.field_map()
        for name, ftype in first.fields:
            other = second_fields.get(name)
            if other is None:
                continue
            try:
                merged[name] = lub(ftype, other, ctx)
            except NoLeastUpperBoundError:
                continue
        return TupleType(merged)
    if isinstance(first, SetType) and isinstance(second, SetType):
        return SetType(lub(first.element, second.element, ctx))
    if isinstance(first, ListType) and isinstance(second, ListType):
        return ListType(lub(first.element, second.element, ctx))
    if isinstance(first, ClassType) and isinstance(second, ClassType):
        common = ctx.least_common_superclasses(
            first.class_name, second.class_name
        )
        if len(common) == 1:
            return ClassType(common[0])
        if len(common) > 1:
            # Multiple minimal common superclasses: pick deterministically
            # so inference is stable, preferring the alphabetically first.
            return ClassType(sorted(common)[0])
        raise NoLeastUpperBoundError(
            f"classes {first.class_name!r} and {second.class_name!r}"
            " share no superclass"
        )
    raise NoLeastUpperBoundError(
        f"{first.describe()} and {second.describe()} have no least"
        " upper bound"
    )


def lub_all(types: Iterable[Type], ctx: TypeContext = EMPTY_CONTEXT) -> Type:
    """Least upper bound of an iterable of types (``NOTHING`` if empty)."""
    result: Type = NOTHING
    for t in types:
        result = lub(result, t, ctx)
    return result


def glb(first: Type, second: Type, ctx: TypeContext = EMPTY_CONTEXT) -> Type:
    """Greatest lower bound for the constructs the library needs.

    Only the cases used by query type-checking (intersecting membership
    constraints) are implemented; unrelated types meet at ``NOTHING``.
    """
    if is_subtype(first, second, ctx):
        return first
    if is_subtype(second, first, ctx):
        return second
    if isinstance(first, TupleType) and isinstance(second, TupleType):
        merged = first.field_map()
        for name, ftype in second.fields:
            if name in merged:
                merged[name] = glb(merged[name], ftype, ctx)
            else:
                merged[name] = ftype
        return TupleType(merged)
    if isinstance(first, SetType) and isinstance(second, SetType):
        return SetType(glb(first.element, second.element, ctx))
    return NOTHING


def declare_atom(name: str) -> AtomType:
    """Declare (or fetch) a user atom type such as ``dollar``.

    Once declared, the name is recognised by :func:`type_from_signature`.
    """
    return AtomType(name)


def type_from_signature(signature) -> Type:
    """Build a :class:`Type` from a lightweight Python description.

    Accepts a :class:`Type` (returned as is), a string (atom or class
    name — names of built-in atoms become atoms, anything else a class
    type), a dict (tuple type), a one-element set (set type), or a
    one-element list (list type). This keeps example and test code terse::

        type_from_signature({"Name": "string", "Tags": {"string"}})
    """
    if isinstance(signature, Type):
        return signature
    if isinstance(signature, str):
        if signature in AtomType._interned:
            return AtomType(signature)
        if signature in ("any",):
            return ANY
        return ClassType(signature)
    if isinstance(signature, dict):
        return TupleType(
            {name: type_from_signature(v) for name, v in signature.items()}
        )
    if isinstance(signature, (set, frozenset)):
        if len(signature) != 1:
            raise TypeSystemError(
                "set signature must contain exactly one element type"
            )
        return SetType(type_from_signature(next(iter(signature))))
    if isinstance(signature, list):
        if len(signature) != 1:
            raise TypeSystemError(
                "list signature must contain exactly one element type"
            )
        return ListType(type_from_signature(signature[0]))
    raise TypeSystemError(f"cannot interpret type signature: {signature!r}")
