"""The O₂-style object database substrate.

This package implements the data model the paper assumes: a hierarchy
of classes with typed tuple values, objects with identity, inheritance
and overloading of attributes (stored or computed), extents, events and
indexes. The view mechanism in :mod:`repro.core` is built on top.
"""

from .database import Database
from .events import (
    ClassDefined,
    Event,
    EventBus,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from .indexes import AttributeIndex, IndexManager
from .objects import (
    DatabaseObject,
    ObjectHandle,
    Scope,
    TupleValue,
    unwrap,
    wrap_value,
)
from .oid import EMPTY_OID_SET, Oid, OidGenerator, OidSet
from .schema import (
    AttributeDef,
    AttributeKind,
    ClassDef,
    ClassKind,
    Computed,
    Schema,
)
from .types import (
    ANY,
    BOOLEAN,
    INTEGER,
    NOTHING,
    REAL,
    STRING,
    AnyType,
    AtomType,
    ClassType,
    ListType,
    NothingType,
    SetType,
    TupleType,
    Type,
    TypeContext,
    declare_atom,
    glb,
    is_subtype,
    lub,
    lub_all,
    type_from_signature,
)
from .values import (
    canonicalize,
    conforms,
    deep_copy_value,
    format_value,
    infer_type,
    require_conforms,
)

__all__ = [
    "ANY",
    "AttributeDef",
    "AttributeIndex",
    "AttributeKind",
    "AnyType",
    "AtomType",
    "BOOLEAN",
    "ClassDef",
    "ClassDefined",
    "ClassKind",
    "ClassType",
    "Computed",
    "Database",
    "DatabaseObject",
    "EMPTY_OID_SET",
    "Event",
    "EventBus",
    "INTEGER",
    "IndexManager",
    "ListType",
    "NOTHING",
    "NothingType",
    "ObjectCreated",
    "ObjectDeleted",
    "ObjectHandle",
    "ObjectUpdated",
    "Oid",
    "OidGenerator",
    "OidSet",
    "REAL",
    "STRING",
    "Schema",
    "Scope",
    "SetType",
    "TupleType",
    "TupleValue",
    "Type",
    "TypeContext",
    "canonicalize",
    "conforms",
    "declare_atom",
    "deep_copy_value",
    "format_value",
    "glb",
    "infer_type",
    "is_subtype",
    "lub",
    "lub_all",
    "require_conforms",
    "type_from_signature",
    "unwrap",
    "wrap_value",
]
