"""Update notification bus.

Databases publish an event for every mutation. Subscribers include
attribute indexes and materialized virtual classes (incremental view
maintenance, §4/§5 of the paper generalise "the traditional problem of
materialized views" to objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .oid import Oid


@dataclass(frozen=True)
class Event:
    """Base class of database events."""

    database: str


@dataclass(frozen=True)
class ObjectCreated(Event):
    class_name: str
    oid: Oid


@dataclass(frozen=True)
class ObjectUpdated(Event):
    class_name: str
    oid: Oid
    attribute: str
    old_value: object
    new_value: object


@dataclass(frozen=True)
class ObjectDeleted(Event):
    class_name: str
    oid: Oid
    # Pre-image of the deleted object's stored value: what transaction
    # changesets restore on rollback. ``None`` only for synthetic
    # events constructed outside the database.
    value: object = None


@dataclass(frozen=True)
class ClassDefined(Event):
    class_name: str


@dataclass(frozen=True)
class AttributeDefined(Event):
    """A DDL event: ``define_attribute`` ran on the database.

    Carries the declarative description of the attribute (the same
    shape :mod:`repro.storage.persistence` journals): subscribers that
    replicate schema — the sharded-execution coordinator ships these to
    its worker replicas — can re-apply it without holding the
    procedure object (computed attributes replicate as placeholders).
    """

    class_name: str
    attribute: str
    declared_type: object  # ``type_to_data`` form, or None
    computed: bool
    arity: int


@dataclass(frozen=True)
class IndexCreated(Event):
    """A DDL event: ``create_index`` ran on the database."""

    class_name: str
    attribute: str
    kind: str  # "hash" | "ordered"


Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub.

    Subscribers run in subscription order; a subscriber may filter on
    event type itself (the bus stays deliberately simple).
    """

    def __init__(self):
        self._subscribers: List[Subscriber] = []

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register ``subscriber``; returns an unsubscribe callable."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: Event) -> None:
        for subscriber in list(self._subscribers):
            subscriber(event)

    def subscriber_count(self) -> int:
        return len(self._subscribers)


def on_event(
    bus: EventBus, event_type, handler: Callable, class_name: Optional[str] = None
) -> Callable[[], None]:
    """Subscribe ``handler`` to events of one type (optionally one class)."""

    def dispatch(event: Event) -> None:
        if not isinstance(event, event_type):
            return
        if class_name is not None and getattr(event, "class_name", None) != class_name:
            return
        handler(event)

    return bus.subscribe(dispatch)
