"""Execution of view-definition scripts against a catalog of databases.

A :class:`Catalog` names the scopes (databases and views) a script may
import from. :func:`run_script` executes statements in order; ``create
view`` opens a new current view (and registers it back into the
catalog, so later scripts can stack views on views, §3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.population import (
    ClassMember,
    ImaginaryMember,
    LikeMember,
    Member,
    QueryMember,
)
from ..core.view import View
from ..engine.types import AtomType, ClassType, SetType, TupleType, Type
from ..errors import LanguageError
from .ast import (
    AttributeStatement,
    ClassIncludes,
    ClassSpec,
    CreateView,
    HideAttributes,
    HideClass,
    ImportAll,
    ImportClasses,
    MemberSpec,
    ResolvePriority,
    Script,
    Statement,
    TypeExpr,
)
from .parser import parse_script


class Catalog:
    """Named scopes a script can import from."""

    def __init__(self, *scopes):
        self._scopes: Dict[str, object] = {}
        for scope in scopes:
            self.register(scope)

    def register(self, scope) -> None:
        self._scopes[scope.scope_name] = scope

    def get(self, name: str):
        scope = self._scopes.get(name)
        if scope is None:
            raise LanguageError(f"unknown database: {name!r}")
        return scope

    def __contains__(self, name: str) -> bool:
        return name in self._scopes

    def names(self) -> List[str]:
        return sorted(self._scopes)


class ScriptResult:
    """Views created by a script, in creation order."""

    def __init__(self):
        self.views: List[View] = []

    @property
    def view(self) -> View:
        """The last created view (the common single-view case)."""
        if not self.views:
            raise LanguageError("the script created no view")
        return self.views[-1]


def run_script(script, catalog: Catalog, view: Optional[View] = None) -> ScriptResult:
    """Execute a script (text or parsed :class:`Script`).

    ``view`` supplies an initial current view, letting scripts extend a
    view built programmatically.
    """
    if isinstance(script, str):
        script = parse_script(script)
    result = ScriptResult()
    current = view
    for statement in script.statements:
        current = _execute(statement, catalog, current, result)
    return result


def _execute(
    statement: Statement,
    catalog: Catalog,
    current: Optional[View],
    result: ScriptResult,
) -> Optional[View]:
    if isinstance(statement, CreateView):
        view = View(statement.name)
        catalog.register(view)
        result.views.append(view)
        return view
    view = _require_view(current, statement)
    if isinstance(statement, ImportAll):
        view.import_database(catalog.get(statement.database))
    elif isinstance(statement, ImportClasses):
        source = catalog.get(statement.database)
        for name in statement.classes:
            view.import_class(source, name)
    elif isinstance(statement, HideAttributes):
        for attribute in statement.attributes:
            view.hide_attribute(statement.class_name, attribute)
    elif isinstance(statement, HideClass):
        view.hide_class(statement.class_name)
    elif isinstance(statement, AttributeStatement):
        declared = (
            _resolve_type(statement.declared_type, view)
            if statement.declared_type is not None
            else None
        )
        view.define_attribute(
            statement.class_name,
            statement.attribute,
            declared_type=declared,
            value=statement.value,
        )
    elif isinstance(statement, ClassSpec):
        _define_spec_class(statement, view)
    elif isinstance(statement, ClassIncludes):
        members = [_to_member(m) for m in statement.members]
        view.define_virtual_class(
            statement.name, members, parameters=statement.parameters
        )
    elif isinstance(statement, ResolvePriority):
        view.resolver.set_priority(
            list(statement.classes), attribute=statement.attribute
        )
    else:
        raise LanguageError(f"unknown statement: {statement!r}")
    return view


def _require_view(current: Optional[View], statement: Statement) -> View:
    if current is None:
        raise LanguageError(
            f"statement {type(statement).__name__} before 'create view'"
        )
    return current


def _to_member(spec: MemberSpec) -> Member:
    if spec.kind == "class":
        return ClassMember(spec.class_name)
    if spec.kind == "like":
        return LikeMember(spec.class_name)
    if spec.kind == "query":
        return QueryMember(spec.query)
    if spec.kind == "imaginary":
        return ImaginaryMember(spec.query)
    raise LanguageError(f"unknown member kind: {spec.kind!r}")


def _define_spec_class(statement: ClassSpec, view: View) -> None:
    """A specification class (``On_Sale_Spec``): a schema-only class
    carrying the attributes behavioral generalization matches on."""
    attributes = {
        name: _resolve_type(texpr, view)
        for name, texpr in statement.attributes
    }
    view.define_spec_class(statement.name, attributes)


def _resolve_type(texpr: TypeExpr, view: View) -> Type:
    if texpr.kind == "name":
        if view.has_class(texpr.name):
            return ClassType(texpr.name)
        # Unknown names declare atoms ('dollar' in the paper).
        return AtomType(texpr.name)
    if texpr.kind == "tuple":
        return TupleType(
            {name: _resolve_type(f, view) for name, f in texpr.fields}
        )
    if texpr.kind == "set":
        return SetType(_resolve_type(texpr.element, view))
    raise LanguageError(f"unknown type expression: {texpr!r}")
