"""Parser of the view-definition language.

Statements are separated by semicolons. The grammar follows the paper's
examples closely — each of Examples 1–6 parses verbatim (modulo ASCII
spellings of ≥/≤):

.. code-block:: text

    create view My_View;
    import all classes from database Chrysler;
    import class Person from database Ford;
    hide attribute Salary in class Employee;
    hide attributes City, Street, Number in class Person;
    attribute Address in class Person has value
        [City: self.City, Street: self.Street, Zip_Code: self.Zip_Code];
    class Adult includes (select P from Person where P.Age >= 21);
    class Ship includes Tanker, Cruiser, Trawler;
    class On_Sale_Spec
        has attribute Price of type dollar;
        has attribute Discount of type integer;
    class On_Sale includes like On_Sale_Spec;
    class Adult(A) includes (select P from Person where P.Age > A);
    class Family includes imaginary
        (select [Husband: H, Wife: H.Spouse]
         from H in Person where H.Sex = 'male');
    resolve Print by priority Rich, Senior;
"""

from __future__ import annotations

from typing import List, Tuple

from ..query.lexer import TokenStream, tokenize
from ..query.parser import parse_expression_stream, parse_query_stream
from .ast import (
    AttributeStatement,
    ClassIncludes,
    ClassSpec,
    CreateView,
    HideAttributes,
    HideClass,
    ImportAll,
    ImportClasses,
    MemberSpec,
    ResolvePriority,
    Script,
    Statement,
    TypeExpr,
)


def parse_script(text: str) -> Script:
    """Parse a whole view-definition script."""
    stream = TokenStream(tokenize(text))
    statements: List[Statement] = []
    while not stream.at_end():
        if stream.accept_op(";"):
            continue
        statements.append(_parse_statement(stream))
        if not stream.at_end():
            stream.expect_op(";")
    return Script(tuple(statements))


def parse_statement(text: str) -> Statement:
    """Parse a single statement (trailing semicolon optional)."""
    stream = TokenStream(tokenize(text))
    statement = _parse_statement(stream)
    stream.accept_op(";")
    if not stream.at_end():
        raise stream.error("unexpected input after statement")
    return statement


def _parse_statement(stream: TokenStream) -> Statement:
    token = stream.peek()
    if token.is_keyword("create"):
        return _parse_create(stream)
    if token.is_keyword("import"):
        return _parse_import(stream)
    if token.is_keyword("hide"):
        return _parse_hide(stream)
    if token.is_keyword("attribute"):
        return _parse_attribute(stream)
    if token.is_keyword("class"):
        return _parse_class(stream)
    if token.is_keyword("resolve"):
        return _parse_resolve(stream)
    raise stream.error(f"expected a statement, found {token.text!r}")


def _parse_create(stream: TokenStream) -> CreateView:
    stream.expect_keyword("create")
    stream.expect_keyword("view")
    return CreateView(stream.expect_ident().text)


def _parse_import(stream: TokenStream) -> Statement:
    stream.expect_keyword("import")
    if stream.accept_keyword("all"):
        stream.expect_keyword("classes")
        stream.expect_keyword("from")
        stream.expect_keyword("database")
        return ImportAll(stream.expect_ident().text)
    if stream.accept_keyword("class") or stream.accept_keyword("classes"):
        names = [stream.expect_ident().text]
        while stream.accept_op(","):
            names.append(stream.expect_ident().text)
        stream.expect_keyword("from")
        stream.expect_keyword("database")
        return ImportClasses(tuple(names), stream.expect_ident().text)
    raise stream.error("expected 'all classes' or 'class' after import")


def _parse_hide(stream: TokenStream) -> Statement:
    stream.expect_keyword("hide")
    if stream.accept_keyword("class"):
        return HideClass(stream.expect_ident().text)
    if not (
        stream.accept_keyword("attribute")
        or stream.accept_keyword("attributes")
    ):
        raise stream.error("expected 'attribute(s)' or 'class' after hide")
    names = [stream.expect_ident().text]
    while stream.accept_op(","):
        names.append(stream.expect_ident().text)
    stream.expect_keyword("in")
    stream.expect_keyword("class")
    return HideAttributes(tuple(names), stream.expect_ident().text)


def _parse_attribute(stream: TokenStream) -> AttributeStatement:
    stream.expect_keyword("attribute")
    attribute = stream.expect_ident().text
    declared_type = None
    if stream.accept_keyword("of"):
        stream.expect_keyword("type")
        declared_type = _parse_type(stream)
    stream.expect_keyword("in")
    stream.expect_keyword("class")
    class_name = stream.expect_ident().text
    value = None
    if stream.accept_keyword("has"):
        stream.expect_keyword("value")
        value = parse_expression_stream(stream)
    return AttributeStatement(attribute, class_name, declared_type, value)


def _parse_class(stream: TokenStream) -> Statement:
    stream.expect_keyword("class")
    name = stream.expect_ident().text
    parameters: List[str] = []
    if stream.accept_op("("):
        parameters.append(stream.expect_ident().text)
        while stream.accept_op(","):
            parameters.append(stream.expect_ident().text)
        stream.expect_op(")")
    if stream.peek().is_keyword("has"):
        return _parse_class_spec(stream, name)
    stream.expect_keyword("includes")
    members = [_parse_member(stream)]
    while stream.accept_op(","):
        members.append(_parse_member(stream))
    return ClassIncludes(name, tuple(parameters), tuple(members))


def _parse_class_spec(stream: TokenStream, name: str) -> ClassSpec:
    """``class B has attribute A of type T; has attribute ...``

    The semicolon-plus-``has`` continuation mirrors the paper's layout
    of ``On_Sale_Spec``.
    """
    attributes: List[Tuple[str, TypeExpr]] = []
    while True:
        stream.expect_keyword("has")
        stream.expect_keyword("attribute")
        attribute = stream.expect_ident().text
        stream.expect_keyword("of")
        stream.expect_keyword("type")
        attributes.append((attribute, _parse_type(stream)))
        if stream.peek().is_op(";") and stream.peek(1).is_keyword("has"):
            stream.expect_op(";")
            continue
        break
    return ClassSpec(name, tuple(attributes))


def _parse_member(stream: TokenStream) -> MemberSpec:
    token = stream.peek()
    if token.is_keyword("like"):
        stream.next()
        return MemberSpec("like", class_name=stream.expect_ident().text)
    if token.is_keyword("imaginary"):
        stream.next()
        if stream.accept_op("("):
            query = parse_query_stream(stream)
            stream.expect_op(")")
        else:
            query = parse_query_stream(stream)
        return MemberSpec("imaginary", query=query)
    if token.is_op("("):
        stream.expect_op("(")
        query = parse_query_stream(stream)
        stream.expect_op(")")
        return MemberSpec("query", query=query)
    if token.is_keyword("select"):
        return MemberSpec("query", query=parse_query_stream(stream))
    if token.kind == "ident":
        return MemberSpec("class", class_name=stream.next().text)
    raise stream.error(f"expected a population member, found {token.text!r}")


def _parse_resolve(stream: TokenStream) -> ResolvePriority:
    stream.expect_keyword("resolve")
    attribute = stream.expect_ident().text
    stream.expect_keyword("by")
    stream.expect_keyword("priority")
    classes = [stream.expect_ident().text]
    while stream.accept_op(","):
        classes.append(stream.expect_ident().text)
    return ResolvePriority(attribute, tuple(classes))


def _parse_type(stream: TokenStream) -> TypeExpr:
    token = stream.peek()
    if token.is_op("["):
        stream.expect_op("[")
        fields: List[Tuple[str, TypeExpr]] = []
        if not stream.accept_op("]"):
            while True:
                fname = stream.expect_ident().text
                stream.expect_op(":")
                fields.append((fname, _parse_type(stream)))
                if stream.accept_op("]"):
                    break
                stream.expect_op(",")
        return TypeExpr("tuple", fields=tuple(fields))
    if token.is_op("{"):
        stream.expect_op("{")
        element = _parse_type(stream)
        stream.expect_op("}")
        return TypeExpr("set", element=element)
    if token.kind == "ident":
        return TypeExpr("name", name=stream.next().text)
    raise stream.error(f"expected a type, found {token.text!r}")
