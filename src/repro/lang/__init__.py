"""The view-definition language: the paper's DDL, parsed and executed.

Example::

    from repro.lang import Catalog, run_script

    result = run_script('''
        create view My_View;
        import all classes from database Staff;
        class Adult includes (select P from Person where P.Age >= 21);
        hide attribute Income in class Person;
    ''', Catalog(staff_db))
    adults = result.view.handles("Adult")
"""

from .ast import (
    AttributeStatement,
    ClassIncludes,
    ClassSpec,
    CreateView,
    HideAttributes,
    HideClass,
    ImportAll,
    ImportClasses,
    MemberSpec,
    ResolvePriority,
    Script,
    Statement,
    TypeExpr,
)
from .decompile import decompile_view
from .executor import Catalog, ScriptResult, run_script
from .parser import parse_script, parse_statement
from .printer import format_script, format_statement

__all__ = [
    "AttributeStatement",
    "Catalog",
    "ClassIncludes",
    "ClassSpec",
    "CreateView",
    "HideAttributes",
    "HideClass",
    "ImportAll",
    "ImportClasses",
    "MemberSpec",
    "ResolvePriority",
    "Script",
    "ScriptResult",
    "Statement",
    "TypeExpr",
    "decompile_view",
    "format_script",
    "format_statement",
    "parse_script",
    "parse_statement",
    "run_script",
]
