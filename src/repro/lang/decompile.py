"""Decompiling views back to view-definition language.

The analogue of SQL's ``SHOW CREATE VIEW``: every definition operation
a :class:`~repro.core.view.View` performs is recorded in its
``definition_log``; :func:`decompile_view` renders the log as a script
that — run against the same catalog — rebuilds an equivalent view.

Definitions only expressible in Python (callable-valued attributes,
Python predicates, update translators) cannot be textualized; they are
emitted as ``-- not textual:`` comments so the script is still valid
and the omission is visible.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.population import (
    ClassMember,
    ImaginaryMember,
    LikeMember,
    PredicateMember,
    QueryMember,
)
from ..engine.types import (
    AtomType,
    ClassType,
    SetType,
    TupleType,
    Type,
)
from ..query.ast import Expr, Select
from ..query.builder import SelectBuilder, as_expr
from ..query.parser import parse_expression
from ..query.printer import format_expression, format_query
from .ast import TypeExpr
from .printer import format_type


def decompile_view(view) -> str:
    """Render a view's definition as view-definition language."""
    lines: List[str] = [f"create view {view.name};"]
    for record in view.definition_log:
        rendered = _render(record)
        if rendered is not None:
            lines.append(rendered)
    return "\n".join(lines)


def _render(record: tuple) -> Optional[str]:
    kind = record[0]
    if kind == "import_all":
        return f"import all classes from database {record[1]};"
    if kind == "import_class":
        return f"import class {record[2]} from database {record[1]};"
    if kind == "hide_attribute":
        return f"hide attribute {record[2]} in class {record[1]};"
    if kind == "hide_class":
        return f"hide class {record[1]};"
    if kind == "define_attribute":
        return _render_attribute(record)
    if kind == "define_virtual_class":
        return _render_class(record)
    if kind == "define_spec_class":
        return _render_spec(record)
    return f"-- unknown definition record: {kind}"


def _render_attribute(record: tuple) -> str:
    _, class_name, attribute, adef, value = record
    type_clause = ""
    if adef.declared_type is not None:
        rendered_type = _render_type(adef.declared_type)
        if rendered_type is not None:
            type_clause = f" of type {rendered_type}"
    expr = _value_expression(value)
    if value is None:
        return f"attribute {attribute}{type_clause} in class {class_name};"
    if expr is None:
        return (
            f"-- not textual: attribute {attribute} in class"
            f" {class_name} has a Python-callable value"
        )
    return (
        f"attribute {attribute}{type_clause} in class {class_name}"
        f" has value {format_expression(expr)};"
    )


def _value_expression(value) -> Optional[Expr]:
    if isinstance(value, Expr):
        return value
    if isinstance(value, Select):
        return as_expr(value)
    if isinstance(value, SelectBuilder):
        return as_expr(value)
    if isinstance(value, str):
        try:
            return parse_expression(value)
        except Exception:
            return None
    return None


def _render_class(record: tuple) -> str:
    _, name, members, parameters = record
    rendered_members: List[str] = []
    for member in members:
        if isinstance(member, ClassMember):
            rendered_members.append(member.class_name)
        elif isinstance(member, LikeMember):
            rendered_members.append(f"like {member.spec_class}")
        elif isinstance(member, QueryMember):
            rendered_members.append(f"({format_query(member.query)})")
        elif isinstance(member, ImaginaryMember):
            rendered_members.append(
                f"imaginary ({format_query(member.query)})"
            )
        elif isinstance(member, PredicateMember):
            return (
                f"-- not textual: class {name} includes a Python"
                f" predicate over {member.source_class}"
            )
    header = name
    if parameters:
        header += "(" + ", ".join(parameters) + ")"
    return f"class {header} includes {', '.join(rendered_members)};"


def _render_spec(record: tuple) -> str:
    _, name, cdef = record
    clauses = []
    for attr_name, adef in cdef.attributes.items():
        rendered = (
            _render_type(adef.declared_type)
            if adef.declared_type is not None
            else None
        )
        clauses.append(
            f"has attribute {attr_name} of type {rendered or 'any'}"
        )
    return f"class {name} {'; '.join(clauses)};"


def _render_type(t: Type) -> Optional[str]:
    texpr = _type_to_surface(t)
    if texpr is None:
        return None
    return format_type(texpr)


def _type_to_surface(t: Type) -> Optional[TypeExpr]:
    if isinstance(t, AtomType):
        return TypeExpr("name", name=t.name)
    if isinstance(t, ClassType):
        return TypeExpr("name", name=t.class_name)
    if isinstance(t, SetType):
        element = _type_to_surface(t.element)
        if element is None:
            return None
        return TypeExpr("set", element=element)
    if isinstance(t, TupleType):
        fields: List[Tuple[str, TypeExpr]] = []
        for name, ftype in t.fields:
            surface = _type_to_surface(ftype)
            if surface is None:
                return None
            fields.append((name, surface))
        return TypeExpr("tuple", fields=tuple(fields))
    return None
