"""Statement AST of the view-definition language.

One dataclass per statement kind of the paper's DDL (§3–§5):
``create view``, ``import``, ``hide``, ``attribute … has value …``,
``class … includes …`` (with optional parameters, ``like`` members and
``imaginary`` members), plus spec-class declarations
(``class B has attribute A of type T``) and a resolution-priority
statement for schizophrenia policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..query.ast import Expr, Select


class Statement:
    __slots__ = ()


@dataclass(frozen=True)
class CreateView(Statement):
    name: str


@dataclass(frozen=True)
class ImportAll(Statement):
    """``import all classes from database D``."""

    database: str


@dataclass(frozen=True)
class ImportClasses(Statement):
    """``import class C1, C2 from database D``."""

    classes: Tuple[str, ...]
    database: str


@dataclass(frozen=True)
class HideAttributes(Statement):
    """``hide attribute(s) A1, A2 in class C``."""

    attributes: Tuple[str, ...]
    class_name: str


@dataclass(frozen=True)
class HideClass(Statement):
    class_name: str


@dataclass(frozen=True)
class TypeExpr:
    """A surface type expression, resolved by the executor.

    ``kind`` is one of ``name`` (atom or class), ``tuple``, ``set``.
    """

    kind: str
    name: str = ""
    fields: Tuple[Tuple[str, "TypeExpr"], ...] = ()
    element: Optional["TypeExpr"] = None


@dataclass(frozen=True)
class AttributeStatement(Statement):
    """``attribute A {of type T} in class C {has value V}``."""

    attribute: str
    class_name: str
    declared_type: Optional[TypeExpr] = None
    value: Optional[Expr] = None


@dataclass(frozen=True)
class MemberSpec:
    """One αi of an includes list.

    ``kind``: ``class`` | ``like`` | ``query`` | ``imaginary``.
    """

    kind: str
    class_name: str = ""
    query: Optional[Select] = None


@dataclass(frozen=True)
class ClassIncludes(Statement):
    """``class C {(P1,...)} includes α1, ..., αn``."""

    name: str
    parameters: Tuple[str, ...]
    members: Tuple[MemberSpec, ...]


@dataclass(frozen=True)
class ClassSpec(Statement):
    """``class B {has attribute A of type T}*`` — a specification class
    for behavioral generalization (``On_Sale_Spec``)."""

    name: str
    attributes: Tuple[Tuple[str, TypeExpr], ...]


@dataclass(frozen=True)
class ResolvePriority(Statement):
    """``resolve A by priority C1, C2`` — schizophrenia policy."""

    attribute: str
    classes: Tuple[str, ...]


@dataclass(frozen=True)
class Script:
    statements: Tuple[Statement, ...]
