"""Unparsing of view-definition statements.

``parse_statement(format_statement(s)) == s`` (round-trip property
test). Used by the CLI and for decompiling scripts.
"""

from __future__ import annotations

from ..query.printer import format_expression, format_query
from .ast import (
    AttributeStatement,
    ClassIncludes,
    ClassSpec,
    CreateView,
    HideAttributes,
    HideClass,
    ImportAll,
    ImportClasses,
    MemberSpec,
    ResolvePriority,
    Script,
    Statement,
    TypeExpr,
)


def format_script(script: Script) -> str:
    return "\n".join(
        format_statement(s) + ";" for s in script.statements
    )


def format_statement(statement: Statement) -> str:
    if isinstance(statement, CreateView):
        return f"create view {statement.name}"
    if isinstance(statement, ImportAll):
        return f"import all classes from database {statement.database}"
    if isinstance(statement, ImportClasses):
        keyword = "class" if len(statement.classes) == 1 else "classes"
        names = ", ".join(statement.classes)
        return f"import {keyword} {names} from database {statement.database}"
    if isinstance(statement, HideAttributes):
        keyword = (
            "attribute" if len(statement.attributes) == 1 else "attributes"
        )
        names = ", ".join(statement.attributes)
        return f"hide {keyword} {names} in class {statement.class_name}"
    if isinstance(statement, HideClass):
        return f"hide class {statement.class_name}"
    if isinstance(statement, AttributeStatement):
        parts = [f"attribute {statement.attribute}"]
        if statement.declared_type is not None:
            parts.append(f"of type {format_type(statement.declared_type)}")
        parts.append(f"in class {statement.class_name}")
        if statement.value is not None:
            parts.append(f"has value {format_expression(statement.value)}")
        return " ".join(parts)
    if isinstance(statement, ClassSpec):
        clauses = "; ".join(
            f"has attribute {name} of type {format_type(texpr)}"
            for name, texpr in statement.attributes
        )
        return f"class {statement.name} {clauses}"
    if isinstance(statement, ClassIncludes):
        name = statement.name
        if statement.parameters:
            name += "(" + ", ".join(statement.parameters) + ")"
        members = ", ".join(
            _format_member(m) for m in statement.members
        )
        return f"class {name} includes {members}"
    if isinstance(statement, ResolvePriority):
        classes = ", ".join(statement.classes)
        return f"resolve {statement.attribute} by priority {classes}"
    raise TypeError(f"unknown statement: {statement!r}")


def _format_member(member: MemberSpec) -> str:
    if member.kind == "class":
        return member.class_name
    if member.kind == "like":
        return f"like {member.class_name}"
    if member.kind == "query":
        return f"({format_query(member.query)})"
    if member.kind == "imaginary":
        return f"imaginary ({format_query(member.query)})"
    raise TypeError(f"unknown member kind: {member.kind!r}")


def format_type(texpr: TypeExpr) -> str:
    if texpr.kind == "name":
        return texpr.name
    if texpr.kind == "tuple":
        inner = ", ".join(
            f"{name}: {format_type(f)}" for name, f in texpr.fields
        )
        return f"[{inner}]"
    if texpr.kind == "set":
        return f"{{{format_type(texpr.element)}}}"
    raise TypeError(f"unknown type expression: {texpr!r}")
