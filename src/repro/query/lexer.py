"""Tokenizer shared by the query parser and the view-definition parser.

Conventions (matching the paper's informal syntax):

- Keywords are lowercase words (``select``, ``from``, ``where``, …);
  capitalized identifiers (``Person``, ``Age``) are never keywords, so
  schema names cannot collide with the grammar.
- Identifiers may contain ``&`` and ``#`` and ``_`` after the first
  letter (the paper uses ``Rich&Beautiful`` and ``SS#``).
- Numbers may use digit grouping: ``5,000`` lexes as the number 5000
  (Example 2 writes ``A.Income < 5,000``).
- Strings use single or double quotes.
- ``≥`` and ``≤`` are accepted as spellings of ``>=`` and ``<=``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from ..errors import QuerySyntaxError

KEYWORDS = frozenset(
    [
        "select",
        "the",
        "from",
        "in",
        "where",
        "and",
        "or",
        "not",
        "like",
        "imaginary",
        "class",
        "classes",
        "includes",
        "attribute",
        "attributes",
        "of",
        "type",
        "has",
        "value",
        "create",
        "view",
        "import",
        "hide",
        "all",
        "database",
        "self",
        "true",
        "false",
        "union",
        "method",
        "resolve",
        "by",
        "priority",
    ]
)

#: Token kinds: KEYWORD, IDENT, NUMBER, STRING, OP, EOF.
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<number>\d{1,3}(?:,\d{3})+(?:\.\d+)?|\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_&#]*)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<op><=|>=|!=|≥|≤|[=<>+\-*/().,:;\[\]{}])
    """,
    re.VERBOSE,
)

_OP_ALIASES = {"≥": ">=", "≤": "<="}


@dataclass(frozen=True)
class Token:
    kind: str  # "keyword" | "ident" | "number" | "string" | "op" | "eof"
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``, raising :class:`QuerySyntaxError` on garbage."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r}", position
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "number":
            tokens.append(Token("number", value.replace(",", ""), match.start()))
        elif match.lastgroup == "ident":
            kind = "keyword" if value in KEYWORDS else "ident"
            tokens.append(Token(kind, value, match.start()))
        elif match.lastgroup == "string":
            body = value[1:-1]
            body = body.replace("\\'", "'").replace('\\"', '"')
            body = body.replace("\\\\", "\\")
            tokens.append(Token("string", body, match.start()))
        else:
            op = _OP_ALIASES.get(value, value)
            tokens.append(Token("op", op, match.start()))
    tokens.append(Token("eof", "", length))
    return tokens


class TokenStream:
    """A cursor over a token list with the usual helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._index += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "eof"

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.next()
            return True
        return False

    def accept_op(self, op: str) -> bool:
        if self.peek().is_op(op):
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise QuerySyntaxError(
                f"expected {word!r}, found {token.text!r}", token.position
            )
        return self.next()

    def expect_op(self, op: str) -> Token:
        token = self.peek()
        if not token.is_op(op):
            raise QuerySyntaxError(
                f"expected {op!r}, found {token.text!r}", token.position
            )
        return self.next()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "ident":
            raise QuerySyntaxError(
                f"expected identifier, found {token.text!r}", token.position
            )
        return self.next()

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(message, self.peek().position)
