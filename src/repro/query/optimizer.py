"""Index-accelerated query evaluation.

The paper predates query optimization and never relies on it, but its
"Implementation Issues" discussion (§4.2) motivates why the unique-root
rule matters: fixed structure makes objects "stored uniformly along
with similar objects", i.e. amenable to physical access paths. This
module supplies the simplest such path: when a query's filter contains
an equality between an attribute path of the bound variable and a
constant, and the scope has a hash index on that attribute, the scan is
replaced by an index probe plus a residual filter.

Only single-binding selects over plain class sources are optimized;
anything else falls back to the interpretive evaluator — correctness is
never at stake (see the equivalence property test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .ast import (
    Binary,
    Binding,
    ClassSource,
    Expr,
    Literal,
    Path,
    Var,
)
from .builder import ensure_query


@dataclass(frozen=True)
class ProbePlan:
    """An index probe: class, attribute, constant, residual filter."""

    class_name: str
    variable: str
    attribute: str
    value: object
    residual: Optional[Expr]
    projection: Expr
    unique: bool

    def describe(self) -> str:
        residual = " + residual filter" if self.residual is not None else ""
        return (
            f"index probe {self.class_name}.{self.attribute} ="
            f" {self.value!r}{residual}"
        )


def plan(query, scope) -> Optional[ProbePlan]:
    """The probe plan for ``query`` on ``scope``, or ``None`` when the
    query is not optimizable (shape or missing index)."""
    query = ensure_query(query)
    indexes = getattr(scope, "indexes", None)
    if indexes is None:
        return None
    if len(query.bindings) != 1:
        return None
    binding: Binding = query.bindings[0]
    source = binding.source
    if not isinstance(source, ClassSource) or source.arguments:
        return None
    if query.where is None:
        return None
    conjuncts = list(_conjuncts(query.where))
    for position, conjunct in enumerate(conjuncts):
        probe = _equality_probe(conjunct, binding.variable)
        if probe is None:
            continue
        attribute, value = probe
        index = indexes.find(source.class_name, attribute)
        if index is None:
            continue
        residual = _conjoin(
            conjuncts[:position] + conjuncts[position + 1:]
        )
        return ProbePlan(
            source.class_name,
            binding.variable,
            attribute,
            value,
            residual,
            query.projection,
            query.unique,
        )
    return None


def explain(query, scope) -> str:
    """A one-line description of how the query would run."""
    probe = plan(query, scope)
    if probe is None:
        query = ensure_query(query)
        sources = ", ".join(
            b.source.class_name
            if isinstance(b.source, ClassSource)
            else "<expr>"
            for b in query.bindings
        )
        return f"full scan over {sources}"
    return probe.describe()


def evaluate_optimized(query, scope, bindings=None, functions=None):
    """Evaluate ``query``, using an index probe when one applies.

    Results are identical to :func:`repro.query.eval.evaluate` (the
    property test ``test_optimizer_equivalence`` pins this down).
    Since the planner landed this is a thin wrapper over
    :func:`repro.query.planner.execute`, which compiles the query to
    closures, caches the plan and additionally handles range
    predicates; ``plan``/``explain`` above are kept as the stable
    single-equality planning API.
    """
    from .planner import execute

    return execute(query, scope, bindings=bindings, functions=functions)


def _conjuncts(expr: Expr):
    if isinstance(expr, Binary) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _conjoin(conjuncts: List[Expr]) -> Optional[Expr]:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = Binary("and", result, conjunct)
    return result


def _equality_probe(
    expr: Expr, variable: str
) -> Optional[Tuple[str, object]]:
    """Match ``var.Attr = literal`` (either orientation)."""
    if not isinstance(expr, Binary) or expr.op != "=":
        return None
    for lhs, rhs in ((expr.left, expr.right), (expr.right, expr.left)):
        if (
            isinstance(lhs, Path)
            and len(lhs.attributes) == 1
            and isinstance(lhs.base, Var)
            and lhs.base.name == variable
            and isinstance(rhs, Literal)
        ):
            return lhs.attributes[0], rhs.value
    return None
