"""The O₂-style query language: parser, type checker, evaluator.

Quick use::

    from repro.query import evaluate
    adults = evaluate("select P from Person where P.Age >= 21", db)

or with the fluent builder::

    from repro.query import select, var
    adults = evaluate(select("P").from_("Person")
                      .where(var("P").Age >= 21).build(), db)
"""

from .analysis import guaranteed_classes, source_classes
from .ast import (
    Binary,
    Binding,
    Call,
    ClassSource,
    Expr,
    ExprSource,
    InClass,
    InExpr,
    InQuery,
    Literal,
    Node,
    Not,
    Path,
    QueryExpr,
    QuerySource,
    Select,
    SelfExpr,
    SetExpr,
    Source,
    TupleExpr,
    Var,
    free_variables,
    walk,
)
from .builder import (
    SelectBuilder,
    X,
    as_expr,
    call,
    class_,
    ensure_query,
    lit,
    record,
    select,
    select_the,
    self_,
    setof,
    var,
)
from .compile import CompiledQuery, Runtime, compile_query
from .eval import EvalEnv, evaluate, evaluate_expression
from .lexer import Token, TokenStream, tokenize
from .optimizer import ProbePlan, evaluate_optimized, explain, plan
from .planner import (
    IndexEqPlan,
    IndexRangePlan,
    PlanCache,
    ScanPlan,
    build_plan,
    execute,
    explain_plan,
    plan_cache_of,
)
from .printer import format_expression, format_query
from .parser import parse_expression, parse_query
from .typecheck import (
    TypeEnvironment,
    infer_element_type,
    infer_expr_type,
    infer_query_type,
)

__all__ = [
    "Binary",
    "Binding",
    "Call",
    "ClassSource",
    "CompiledQuery",
    "EvalEnv",
    "Expr",
    "ExprSource",
    "IndexEqPlan",
    "IndexRangePlan",
    "InClass",
    "InExpr",
    "InQuery",
    "Literal",
    "Node",
    "Not",
    "Path",
    "PlanCache",
    "ProbePlan",
    "QueryExpr",
    "QuerySource",
    "Runtime",
    "ScanPlan",
    "Select",
    "SelectBuilder",
    "SelfExpr",
    "SetExpr",
    "Source",
    "Token",
    "TokenStream",
    "TupleExpr",
    "TypeEnvironment",
    "Var",
    "X",
    "as_expr",
    "build_plan",
    "call",
    "class_",
    "compile_query",
    "ensure_query",
    "evaluate",
    "evaluate_expression",
    "evaluate_optimized",
    "execute",
    "explain",
    "explain_plan",
    "format_expression",
    "format_query",
    "free_variables",
    "guaranteed_classes",
    "infer_element_type",
    "infer_expr_type",
    "infer_query_type",
    "lit",
    "parse_expression",
    "parse_query",
    "plan",
    "plan_cache_of",
    "record",
    "select",
    "select_the",
    "self_",
    "setof",
    "source_classes",
    "tokenize",
    "var",
    "walk",
]
