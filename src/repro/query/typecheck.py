"""Static type inference for queries.

The paper leans on inference throughout: "static type inference
determines that attribute Address … is a tuple of type [City: string,
…]" (§2), and imaginary classes get their *core attributes* and types
from the type of their defining query (§5). This module implements that
inference.

Inference runs against a :class:`TypeEnvironment`, which adapts either a
database or a view; views override attribute types (hides, virtual
attributes) through their own ``attribute_type`` hook.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..engine.types import (
    ANY,
    BOOLEAN,
    INTEGER,
    NOTHING,
    REAL,
    STRING,
    ClassType,
    SetType,
    TupleType,
    Type,
    TypeContext,
    lub,
)
from ..errors import NoLeastUpperBoundError, QueryTypeError
from .ast import (
    Binary,
    Call,
    ClassSource,
    Expr,
    ExprSource,
    InClass,
    InExpr,
    InQuery,
    Literal,
    Not,
    Path,
    QueryExpr,
    QuerySource,
    Select,
    SelfExpr,
    SetExpr,
    TupleExpr,
    Var,
)


class TypeEnvironment:
    """What the type checker needs to know about a scope."""

    def __init__(self, scope):
        self._scope = scope

    @property
    def ctx(self) -> TypeContext:
        return self._scope.schema

    def class_exists(self, name: str) -> bool:
        if hasattr(self._scope, "has_class"):
            return self._scope.has_class(name)
        return name in self._scope.schema

    def attribute_type(self, class_name: str, attribute: str) -> Type:
        """Effective type of an attribute in this scope (``ANY`` if
        undeclared)."""
        if hasattr(self._scope, "attribute_type"):
            declared = self._scope.attribute_type(class_name, attribute)
        else:
            adef = self._scope.schema.resolve_attribute(class_name, attribute)
            declared = adef.declared_type
        return declared if declared is not None else ANY

    def function_type(self, name: str) -> Type:
        types = getattr(self._scope, "function_types", None)
        if types and name in types:
            return types[name]
        return ANY


def infer_query_type(
    query: Select,
    tenv: TypeEnvironment,
    variable_types: Optional[Dict[str, Type]] = None,
    self_type: Optional[Type] = None,
) -> Type:
    """Type of a query's result: ``{element}`` or the element for
    ``select the``."""
    element = infer_element_type(query, tenv, variable_types, self_type)
    if query.unique:
        return element
    return SetType(element)


def infer_element_type(
    query: Select,
    tenv: TypeEnvironment,
    variable_types: Optional[Dict[str, Type]] = None,
    self_type: Optional[Type] = None,
) -> Type:
    """Type of one element of the query's result set."""
    variables: Dict[str, Type] = dict(variable_types or {})
    for binding in query.bindings:
        variables[binding.variable] = _source_element_type(
            binding.source, tenv, variables, self_type
        )
    if query.where is not None:
        condition = infer_expr_type(query.where, tenv, variables, self_type)
        if condition is not BOOLEAN and condition is not ANY:
            raise QueryTypeError(
                f"where-clause is not boolean: {condition.describe()}"
            )
    return infer_expr_type(query.projection, tenv, variables, self_type)


def _source_element_type(
    source,
    tenv: TypeEnvironment,
    variables: Dict[str, Type],
    self_type: Optional[Type],
) -> Type:
    if isinstance(source, ClassSource):
        if not tenv.class_exists(source.class_name):
            raise QueryTypeError(f"unknown class: {source.class_name!r}")
        return ClassType(source.class_name)
    if isinstance(source, QuerySource):
        return infer_element_type(source.query, tenv, variables, self_type)
    if isinstance(source, ExprSource):
        collection = infer_expr_type(
            source.expression, tenv, variables, self_type
        )
        if isinstance(collection, SetType):
            return collection.element
        if collection is ANY:
            return ANY
        raise QueryTypeError(
            f"source expression is not a set: {collection.describe()}"
        )
    raise QueryTypeError(f"unknown source: {source!r}")


def infer_expr_type(
    expr: Expr,
    tenv: TypeEnvironment,
    variables: Optional[Dict[str, Type]] = None,
    self_type: Optional[Type] = None,
) -> Type:
    variables = variables or {}
    if isinstance(expr, Literal):
        return _literal_type(expr.value)
    if isinstance(expr, Var):
        if expr.name in variables:
            return variables[expr.name]
        raise QueryTypeError(f"unbound variable: {expr.name!r}")
    if isinstance(expr, SelfExpr):
        if self_type is None:
            raise QueryTypeError("'self' used outside an attribute body")
        return self_type
    if isinstance(expr, Path):
        return _path_type(expr, tenv, variables, self_type)
    if isinstance(expr, TupleExpr):
        return TupleType(
            {
                name: infer_expr_type(value, tenv, variables, self_type)
                for name, value in expr.fields
            }
        )
    if isinstance(expr, SetExpr):
        element: Type = NOTHING
        for item in expr.elements:
            item_type = infer_expr_type(item, tenv, variables, self_type)
            try:
                element = lub(element, item_type, tenv.ctx)
            except NoLeastUpperBoundError:
                element = ANY
        return SetType(element)
    if isinstance(expr, Binary):
        return _binary_type(expr, tenv, variables, self_type)
    if isinstance(expr, (Not, InClass, InExpr, InQuery)):
        # Operand types are still checked for errors.
        for child in _boolean_children(expr):
            infer_expr_type(child, tenv, variables, self_type)
        if isinstance(expr, InClass) and not tenv.class_exists(expr.class_name):
            raise QueryTypeError(f"unknown class: {expr.class_name!r}")
        if isinstance(expr, InQuery):
            infer_element_type(expr.query, tenv, variables, self_type)
        return BOOLEAN
    if isinstance(expr, QueryExpr):
        return infer_query_type(expr.query, tenv, variables, self_type)
    if isinstance(expr, Call):
        for arg in expr.arguments:
            infer_expr_type(arg, tenv, variables, self_type)
        return tenv.function_type(expr.function)
    raise QueryTypeError(f"unknown expression node: {expr!r}")


def _boolean_children(expr: Expr):
    if isinstance(expr, Not):
        return [expr.operand]
    if isinstance(expr, InClass):
        return [expr.operand, *expr.class_args]
    if isinstance(expr, InExpr):
        return [expr.operand, expr.container]
    if isinstance(expr, InQuery):
        return [expr.operand]
    return []


def _literal_type(value) -> Type:
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    if isinstance(value, str):
        return STRING
    return ANY


def _path_type(
    path: Path,
    tenv: TypeEnvironment,
    variables: Dict[str, Type],
    self_type: Optional[Type],
) -> Type:
    current = infer_expr_type(path.base, tenv, variables, self_type)
    for attribute in path.attributes:
        if current is ANY:
            return ANY
        if isinstance(current, ClassType):
            current = tenv.attribute_type(current.class_name, attribute)
        elif isinstance(current, TupleType):
            field = current.field_type(attribute)
            if field is None:
                raise QueryTypeError(
                    f"tuple type {current.describe()} has no field"
                    f" {attribute!r}"
                )
            current = field
        else:
            raise QueryTypeError(
                f"cannot select {attribute!r} from {current.describe()}"
            )
    return current


def _binary_type(
    expr: Binary,
    tenv: TypeEnvironment,
    variables: Dict[str, Type],
    self_type: Optional[Type],
) -> Type:
    left = infer_expr_type(expr.left, tenv, variables, self_type)
    right = infer_expr_type(expr.right, tenv, variables, self_type)
    if expr.op in ("and", "or"):
        for side, label in ((left, "left"), (right, "right")):
            if side is not BOOLEAN and side is not ANY:
                raise QueryTypeError(
                    f"{label} side of {expr.op!r} is not boolean:"
                    f" {side.describe()}"
                )
        return BOOLEAN
    if expr.op in ("=", "!=", "<", "<=", ">", ">="):
        return BOOLEAN
    # Arithmetic.
    if expr.op == "+" and left is STRING and right is STRING:
        return STRING
    for side in (left, right):
        if side in (INTEGER, REAL, ANY):
            continue
        raise QueryTypeError(
            f"arithmetic on non-number: {side.describe()}"
        )
    if expr.op == "/" or REAL in (left, right):
        return REAL
    if ANY in (left, right):
        return ANY
    return INTEGER
