"""Query evaluation.

Queries run against a *scope* — a :class:`~repro.engine.database.Database`
or a :class:`~repro.core.view.View`. The evaluator only relies on the
scope protocol (``extent``, ``get``, ``is_member``, ``access``) plus two
optional extensions provided by views:

- ``instantiate_family(name, args)`` for parameterized classes, and
- ``functions`` for registered named functions (the paper's ``gsd``).

Results are *sets* in the model sense: duplicates (by canonical value)
are removed, first-seen order is preserved so runs are deterministic.
``select the`` returns the single element and raises
:class:`~repro.errors.NonUniqueResultError` otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..engine.objects import ObjectHandle, TupleValue, unwrap, wrap_value
from ..engine.oid import Oid
from ..engine.tracking import (  # noqa: F401  (re-exported API)
    ACTIVE_TRACKERS,
    DependencySet,
    DependencyTracker,
    record_attribute_read,
    record_extent_read,
    replay_dependencies,
    tracking_active,
)
from ..engine.values import canonicalize
from ..errors import NonUniqueResultError, QueryError
from .ast import (
    Binary,
    Call,
    ClassSource,
    Expr,
    ExprSource,
    InClass,
    InExpr,
    InQuery,
    Literal,
    Not,
    Path,
    QueryExpr,
    QuerySource,
    Select,
    SelfExpr,
    SetExpr,
    Source,
    TupleExpr,
    Var,
)
from .parser import parse_query


def _builtin_count(collection) -> int:
    if collection is None:
        return 0
    return len(collection)


def _numbers(collection):
    return [unwrap(item) for item in (collection or [])]


def _builtin_avg(collection):
    if not collection:
        return None
    numbers = _numbers(collection)
    return sum(numbers) / len(numbers)


BUILTIN_FUNCTIONS = {
    # Aggregates over set/list values and query results; always
    # available (a scope-registered function of the same name wins).
    # Empty collections: count=0, sum=0, exists=false, min/max/avg=None.
    "count": _builtin_count,
    "sum": lambda c: sum(_numbers(c)),
    "min": lambda c: min(_numbers(c)) if c else None,
    "max": lambda c: max(_numbers(c)) if c else None,
    "avg": _builtin_avg,
    "exists": lambda c: bool(c),
}


class EvalEnv:
    """Evaluation environment: scope + variable/function bindings."""

    def __init__(
        self,
        scope,
        bindings: Optional[Dict[str, object]] = None,
        functions: Optional[Dict[str, object]] = None,
        self_value=None,
    ):
        self.scope = scope
        self.bindings = dict(bindings or {})
        self.functions = dict(functions or {})
        scope_functions = getattr(scope, "functions", None)
        if scope_functions:
            for name, fn in scope_functions.items():
                self.functions.setdefault(name, fn)
        for name, fn in BUILTIN_FUNCTIONS.items():
            self.functions.setdefault(name, fn)
        self.self_value = self_value
        # Memo for loop-invariant (closed) subqueries, shared across
        # the whole evaluation: a nested "F in (select ...)" would
        # otherwise re-run its subquery once per candidate.
        self.subquery_cache: Dict[int, object] = {}

    def child(self, variable: str, value) -> "EvalEnv":
        env = EvalEnv(self.scope, self.bindings, self.functions, self.self_value)
        env.bindings[variable] = value
        env.subquery_cache = self.subquery_cache
        return env


def evaluate(
    query,
    scope,
    bindings: Optional[Dict[str, object]] = None,
    functions: Optional[Dict[str, object]] = None,
    self_value=None,
):
    """Evaluate a query (AST or source text) against a scope.

    Returns a list of distinct results (or a single value for
    ``select the``).
    """
    if isinstance(query, str):
        query = parse_query(query)
    env = EvalEnv(scope, bindings, functions, self_value)
    return _eval_select(query, env)


def evaluate_tracked(
    query,
    scope,
    bindings: Optional[Dict[str, object]] = None,
    functions: Optional[Dict[str, object]] = None,
    self_value=None,
):
    """Evaluate a query while recording what it reads.

    Returns ``(result, deps)`` where ``deps`` is the
    :class:`DependencyTracker`'s :class:`DependencySet`: every class
    extent iterated or membership-tested and every (class, attribute)
    pair read during evaluation — including reads performed inside
    nested population evaluations, attribute bodies and Python
    predicates. Population caches key on these dependencies (see
    ``View.dependency_snapshot``), which is what lets a cached
    population survive mutations to unrelated classes.
    """
    with DependencyTracker() as tracker:
        result = evaluate(query, scope, bindings, functions, self_value)
    return result, tracker.deps


def evaluate_expression(
    expr,
    scope,
    self_value=None,
    bindings: Optional[Dict[str, object]] = None,
    functions: Optional[Dict[str, object]] = None,
):
    """Evaluate a bare expression (e.g. a virtual attribute body)."""
    env = EvalEnv(scope, bindings, functions, self_value)
    return _eval_expr(expr, env)


# ----------------------------------------------------------------------
# Select
# ----------------------------------------------------------------------


def _eval_select(select: Select, env: EvalEnv):
    results: List[object] = []
    seen = set()
    for row_env in _bind(select.bindings, 0, env):
        if select.where is not None and not _truthy(
            _eval_expr(select.where, row_env)
        ):
            continue
        value = _eval_expr(select.projection, row_env)
        key = canonicalize(unwrap(value))
        if key in seen:
            continue
        seen.add(key)
        results.append(value)
    if select.unique:
        if len(results) != 1:
            raise NonUniqueResultError(len(results))
        return results[0]
    return results


def _bind(bindings, index: int, env: EvalEnv):
    if index >= len(bindings):
        yield env
        return
    binding = bindings[index]
    for value in _iterate_source(binding.source, env):
        yield from _bind(bindings, index + 1, env.child(binding.variable, value))


def _iterate_source(source: Source, env: EvalEnv) -> Iterable[object]:
    if isinstance(source, ClassSource):
        scope = env.scope
        if source.arguments:
            args = tuple(
                unwrap(_eval_expr(arg, env)) for arg in source.arguments
            )
            instantiate = getattr(scope, "instantiate_family", None)
            if instantiate is None:
                raise QueryError(
                    f"scope {getattr(scope, 'scope_name', scope)!r} does"
                    " not support parameterized classes"
                )
            return [scope.get(oid) for oid in instantiate(source.class_name, args)]
        return [scope.get(oid) for oid in scope.extent(source.class_name)]
    if isinstance(source, QuerySource):
        result = _eval_select(source.query, env)
        return result if isinstance(result, list) else [result]
    if isinstance(source, ExprSource):
        value = _eval_expr(source.expression, env)
        return _as_collection(value)
    raise QueryError(f"unknown source node: {source!r}")


def _as_collection(value) -> Iterable[object]:
    if isinstance(value, (list, tuple)):
        return list(value)
    if isinstance(value, (set, frozenset)):
        # Deterministic order for reproducible results.
        return sorted(value, key=lambda item: canonicalize(unwrap(item)) if not isinstance(item, ObjectHandle) else ("o", item.oid.space, item.oid.number))
    if value is None:
        return []
    raise QueryError(
        f"source expression did not produce a collection: {value!r}"
    )


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def _eval_expr(expr: Expr, env: EvalEnv):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Var):
        if expr.name in env.bindings:
            return env.bindings[expr.name]
        raise QueryError(f"unbound variable: {expr.name!r}")
    if isinstance(expr, SelfExpr):
        if env.self_value is None:
            raise QueryError("'self' used outside an attribute body")
        return env.self_value
    if isinstance(expr, Path):
        return _eval_path(expr, env)
    if isinstance(expr, TupleExpr):
        return TupleValue(
            env.scope,
            {name: unwrap(_eval_expr(value, env)) for name, value in expr.fields},
        )
    if isinstance(expr, SetExpr):
        return frozenset(
            wrap_value(env.scope, unwrap(_eval_expr(item, env)))
            for item in expr.elements
        )
    if isinstance(expr, Binary):
        return _eval_binary(expr, env)
    if isinstance(expr, Not):
        return not _truthy(_eval_expr(expr.operand, env))
    if isinstance(expr, InClass):
        return _eval_in_class(expr, env)
    if isinstance(expr, InExpr):
        operand = _eval_expr(expr.operand, env)
        container = _eval_expr(expr.container, env)
        return _contains(container, operand)
    if isinstance(expr, InQuery):
        operand = _eval_expr(expr.operand, env)
        result = _eval_closed_subquery(expr.query, env)
        return _contains(result, operand)
    if isinstance(expr, QueryExpr):
        return _eval_select(expr.query, env)
    if isinstance(expr, Call):
        fn = env.functions.get(expr.function)
        if fn is None:
            raise QueryError(f"unknown function: {expr.function!r}")
        args = [_eval_expr(arg, env) for arg in expr.arguments]
        return wrap_value(env.scope, unwrap(fn(*args)))
    raise QueryError(f"unknown expression node: {expr!r}")


def _eval_closed_subquery(query: Select, env: EvalEnv):
    """Evaluate a subquery, memoizing it when it is *closed* (no free
    variables), since a closed subquery is loop-invariant within one
    evaluation."""
    from .ast import free_variables

    key = id(query)
    if key in env.subquery_cache:
        return env.subquery_cache[key]
    result = _eval_select(query, env)
    if not free_variables(query):
        canon = {canonicalize(unwrap(item)) for item in result}
        env.subquery_cache[key] = _CachedResult(result, canon)
        return env.subquery_cache[key]
    return result


class _CachedResult:
    """A memoized subquery result with O(1) membership tests."""

    __slots__ = ("items", "canonical")

    def __init__(self, items, canonical):
        self.items = items
        self.canonical = canonical

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)


def _eval_path(path: Path, env: EvalEnv):
    value = _eval_expr(path.base, env)
    for attribute in path.attributes:
        if value is None:
            return None
        if isinstance(value, (ObjectHandle, TupleValue)):
            value = getattr(value, attribute)
        elif isinstance(value, dict):
            value = wrap_value(env.scope, value.get(attribute))
        else:
            raise QueryError(
                f"cannot select attribute {attribute!r} from"
                f" {type(value).__name__}"
            )
    return value


def _eval_in_class(expr: InClass, env: EvalEnv):
    operand = _eval_expr(expr.operand, env)
    oid = _as_oid(operand)
    if oid is None:
        return False
    scope = env.scope
    if expr.class_args:
        args = tuple(
            unwrap(_eval_expr(arg, env)) for arg in expr.class_args
        )
        instantiate = getattr(scope, "instantiate_family", None)
        if instantiate is None:
            raise QueryError(
                "scope does not support parameterized classes"
            )
        return oid in instantiate(expr.class_name, args)
    return scope.is_member(oid, expr.class_name)


def _eval_binary(expr: Binary, env: EvalEnv):
    if expr.op == "and":
        return _truthy(_eval_expr(expr.left, env)) and _truthy(
            _eval_expr(expr.right, env)
        )
    if expr.op == "or":
        return _truthy(_eval_expr(expr.left, env)) or _truthy(
            _eval_expr(expr.right, env)
        )
    left = _eval_expr(expr.left, env)
    right = _eval_expr(expr.right, env)
    if expr.op == "=":
        return _model_equal(left, right)
    if expr.op == "!=":
        return not _model_equal(left, right)
    if expr.op in ("<", "<=", ">", ">="):
        return _compare(expr.op, left, right)
    if expr.op in ("+", "-", "*", "/"):
        return _arith(expr.op, left, right)
    raise QueryError(f"unknown operator: {expr.op!r}")


def _model_equal(left, right) -> bool:
    left = unwrap(left)
    right = unwrap(right)
    if left is None or right is None:
        return left is right
    try:
        return canonicalize(left) == canonicalize(right)
    except Exception:
        return left == right


def _compare(op: str, left, right) -> bool:
    left = unwrap(left)
    right = unwrap(right)
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        raise QueryError("booleans are not ordered")
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        raise QueryError(
            f"cannot order {type(left).__name__} and {type(right).__name__}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _arith(op: str, left, right):
    left = unwrap(left)
    right = unwrap(right)
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if not isinstance(left, (int, float)) or not isinstance(
        right, (int, float)
    ):
        raise QueryError(
            f"arithmetic on non-numbers:"
            f" {type(left).__name__} {op} {type(right).__name__}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if right == 0:
        raise QueryError("division by zero")
    return left / right


def _truthy(value) -> bool:
    if isinstance(value, bool):
        return value
    if value is None:
        return False
    raise QueryError(
        f"condition did not evaluate to a boolean: {value!r}"
    )


def _contains(container, operand) -> bool:
    target = canonicalize(unwrap(operand))
    if isinstance(container, _CachedResult):
        return target in container.canonical
    if isinstance(container, (list, tuple, set, frozenset)):
        return any(
            canonicalize(unwrap(item)) == target for item in container
        )
    if container is None:
        return False
    raise QueryError(f"'in' applied to non-collection: {container!r}")


def _as_oid(value) -> Optional[Oid]:
    if isinstance(value, ObjectHandle):
        return value.oid
    if isinstance(value, Oid):
        return value
    return None
