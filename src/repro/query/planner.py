"""Query planning: access-path selection plus a compiled-plan cache.

The planner sits between the callers that used to invoke the
interpreter directly (``Database.query``, ``View.query``, the shell,
virtual-class population, parameterized families) and the closure
compiler in :mod:`repro.query.compile`. For each query it builds one
of three plans:

- :class:`ScanPlan` — the compiled query run over full extents;
- :class:`IndexEqPlan` — an equality probe into a hash (or ordered)
  index plus a compiled residual filter;
- :class:`IndexRangePlan` — a ``bisect`` range scan over an ordered
  index (``<``/``<=``/``>``/``>=`` atoms intersected into one
  interval) plus a compiled residual.

Conjunctive ``where`` clauses are decomposed into indexable atoms and
a residual: among the equality atoms the one whose index has the most
distinct values (i.e. the most selective probe) wins; range atoms are
considered only when no equality atom has an index. Range plans are
additionally gated on the attribute's *declared* type (``integer``,
``real`` or ``string`` matching the literal bounds): the interpreter's
``_compare`` raises on mixed-type or boolean comparisons, and an index
scan that silently skipped such rows would diverge from it.

Plans are cached per scope in a :class:`PlanCache`, keyed on the
canonical query text and validated against a version token combining
the schema version, the view's schema/hide versions and the index
registry version — so server sessions and delta-driven view
re-population share compiled plans until a schema change, a ``hide``
or an index create/drop invalidates them.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..engine.objects import ObjectHandle, unwrap
from ..engine.tracking import ACTIVE_TRACKERS, record_attribute_read
from ..engine.types import INTEGER, REAL, STRING
from ..engine.values import canonicalize
from ..errors import NonUniqueResultError, QueryError
from ..obs import stats as _stats
from ..obs import trace as _trace
from .ast import (
    Binary,
    Binding,
    ClassSource,
    Expr,
    Literal,
    Path,
    Select,
    Var,
)
from .builder import ensure_query
from .compile import CompiledQuery, Runtime, compile_expression, compile_test
from .printer import format_expression, format_query

# A bounded cache: real servers run a finite statement vocabulary, but
# a misbehaving client generating unique query texts must not grow the
# cache without bound.
_PLAN_CACHE_CAP = 1024

# Loaded on first use: the scatter module pulls in the exec package
# (and through it the server wire codec), which must not happen while
# this module is still initializing.
_try_scatter = None


def _scatter_hook(query, scope, bindings, functions, self_value):
    """``repro.query.shard.try_scatter``, imported lazily."""
    global _try_scatter
    if _try_scatter is None:
        from .shard import try_scatter

        _try_scatter = try_scatter
    return _try_scatter(query, scope, bindings, functions, self_value)


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------


class PlanCache:
    """Compiled plans for one scope, keyed on canonical query text.

    Entries carry the version token current when they were compiled;
    a token mismatch on fetch recompiles (schema change, ``hide``,
    index create/drop). Thread-safe: server read requests run
    concurrently under the shared lock.
    """

    def __init__(self, cap: int = _PLAN_CACHE_CAP):
        self._lock = threading.Lock()
        self._cap = cap
        self._plans: Dict[str, Tuple[tuple, "Plan"]] = {}
        self.plans_compiled = 0
        self.plan_cache_hits = 0
        self.invalidations = 0
        self.index_probes = 0
        self.range_probes = 0

    def fetch(self, key: str, token: tuple, build) -> Tuple["Plan", bool]:
        """The cached plan for ``key`` at ``token``, or a fresh one.

        Returns ``(plan, hit)``.
        """
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                if entry[0] == token:
                    self.plan_cache_hits += 1
                    return entry[1], True
                self.invalidations += 1
        plan = build()
        with self._lock:
            self.plans_compiled += 1
            while len(self._plans) >= self._cap:
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = (token, plan)
        return plan, False

    def record_probe(self, kind: str) -> None:
        with self._lock:
            if kind == "range":
                self.range_probes += 1
            else:
                self.index_probes += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def reset_counters(self) -> None:
        with self._lock:
            self.plans_compiled = 0
            self.plan_cache_hits = 0
            self.invalidations = 0
            self.index_probes = 0
            self.range_probes = 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "plans_compiled": self.plans_compiled,
                "plan_cache_hits": self.plan_cache_hits,
                "invalidations": self.invalidations,
                "index_probes": self.index_probes,
                "range_probes": self.range_probes,
                "cached_plans": len(self._plans),
            }

    def describe(self) -> str:
        snap = self.snapshot()
        return "\n".join(
            [
                f"plans compiled:  {snap['plans_compiled']}",
                f"plan cache hits: {snap['plan_cache_hits']}",
                f"plan invalidations: {snap['invalidations']}",
                f"index probes:    {snap['index_probes']}",
                f"range probes:    {snap['range_probes']}",
                f"cached plans:    {snap['cached_plans']}",
            ]
        )


def plan_cache_of(scope) -> PlanCache:
    """The scope's plan cache, attached lazily."""
    cache = getattr(scope, "_plan_cache", None)
    if cache is None:
        cache = PlanCache()
        try:
            scope._plan_cache = cache
        except AttributeError:  # exotic read-only scope: plan per call
            pass
    return cache


def plan_token(scope) -> tuple:
    """The version token compiled plans are validated against."""
    # Database snapshots carry a precomputed token equal to their
    # origin's (they share its plan cache): data mutations never
    # invalidate plans, so live and frozen evaluation trade plans
    # freely until a DDL or index change installs.
    custom = getattr(scope, "plan_version_token", None)
    if custom is not None:
        return custom
    indexes = getattr(scope, "indexes", None)
    return (
        getattr(getattr(scope, "schema", None), "version", 0),
        getattr(scope, "schema_version", 0),
        getattr(scope, "hide_version", 0),
        indexes.version if indexes is not None else -1,
    )


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


class Plan:
    """A compiled access path for one query."""

    kind = "scan"
    # ``[(conjunct text, role)]`` — how each ``where`` conjunct is
    # dispatched (probe vs. residual). Set by the builder; consumed by
    # ``EXPLAIN ANALYZE``.
    conjunct_roles: Optional[List[Tuple[str, str]]] = None

    def execute(self, scope, cache, bindings, functions, self_value):
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class ScanPlan(Plan):
    """Run the compiled query over full extents."""

    kind = "scan"

    def __init__(self, select: Select):
        self.compiled = CompiledQuery(select)

    def execute(self, scope, cache, bindings, functions, self_value):
        return self.compiled.run(scope, bindings, functions, self_value)

    def describe(self) -> str:
        sources = ", ".join(
            b.source.class_name
            if isinstance(b.source, ClassSource)
            else "<expr>"
            for b in self.compiled.select.bindings
        )
        return f"compiled scan over {sources}"


class _ProbePlanBase(Plan):
    """Shared candidate-loop machinery for index-backed plans."""

    def __init__(
        self,
        select: Select,
        class_name: str,
        variable: str,
        attribute: str,
        residual: Optional[Expr],
    ):
        self.class_name = class_name
        self.variable = variable
        self.attribute = attribute
        self.residual = (
            compile_test(residual) if residual is not None else None
        )
        self.residual_text = residual is not None
        self.project = compile_expression(select.projection)
        self.unique = select.unique
        # The interpreter is always a valid fallback: used if the
        # index disappears between planning and execution (the version
        # token makes that a one-request race at worst).
        self._fallback = None
        self._select = select

    def _fallback_plan(self) -> ScanPlan:
        if self._fallback is None:
            self._fallback = ScanPlan(self._select)
        return self._fallback

    def _candidates(self, scope):
        """OidSet of candidates, or ``None`` to force a fallback."""
        raise NotImplementedError

    def execute(self, scope, cache, bindings, functions, self_value):
        candidates = self._candidates(scope)
        if candidates is None:
            return self._fallback_plan().execute(
                scope, cache, bindings, functions, self_value
            )
        cache.record_probe(self.kind)
        stats = getattr(scope, "stats", None)
        if stats is not None:
            if self.kind == "range":
                stats.record_range_probe()
            else:
                stats.record_index_probe()
        if ACTIVE_TRACKERS:
            # The probe consults the index instead of reading the
            # attribute per object; record the equivalent reads so
            # dependency-tracked callers still invalidate correctly.
            record_attribute_read(self.class_name, self.attribute)
        if _trace.ENABLED and _trace.current_trace() is not None:
            with _trace.span(
                "index_probe",
                kind=self.kind,
                attribute=f"{self.class_name}.{self.attribute}",
            ) as sp:
                results, scanned = self._filter(
                    scope, candidates, bindings, functions, self_value
                )
                sp.set(scanned=scanned, returned=len(results))
        else:
            results, scanned = self._filter(
                scope, candidates, bindings, functions, self_value
            )
        if self.unique:
            if len(results) != 1:
                raise NonUniqueResultError(len(results))
            return results[0]
        return results

    def _filter(self, scope, candidates, bindings, functions, self_value):
        """Run residual + projection over the probe's candidate set.

        Returns ``(results, scanned)`` — ``scanned`` counts candidates
        actually visited (probe selectivity, surfaced by EXPLAIN).
        """
        rt = Runtime(scope, functions, self_value)
        env = dict(bindings) if bindings else {}
        variable = self.variable
        residual = self.residual
        project = self.project
        is_member = scope.is_member
        class_name = self.class_name
        results: List[object] = []
        seen = set()
        scanned = 0
        # OidSet iteration is sorted; sort here too so probe results
        # come back in the same deterministic order as a scan.
        # Membership is tested per candidate (is_member) instead of
        # materializing the whole extent: a probe over a demand-paged
        # database streams through its candidates without building an
        # O(extent) set — and the membership test itself is a
        # directory lookup, never an object fault.
        for oid in sorted(candidates.members):
            if not is_member(oid, class_name):
                continue  # the index may cover a superclass
            scanned += 1
            env[variable] = ObjectHandle(scope, oid)
            if residual is not None and not residual(rt, env):
                continue
            value = project(rt, env)
            key = canonicalize(unwrap(value))
            if key in seen:
                continue
            seen.add(key)
            results.append(value)
        return results, scanned


class IndexEqPlan(_ProbePlanBase):
    """Equality probe into a hash or ordered index."""

    kind = "eq"

    def __init__(self, select, class_name, variable, attribute, value,
                 residual):
        super().__init__(select, class_name, variable, attribute, residual)
        self.value = value

    def _candidates(self, scope):
        indexes = getattr(scope, "indexes", None)
        index = (
            indexes.find(self.class_name, self.attribute)
            if indexes is not None
            else None
        )
        if index is None:
            return None
        return index.lookup(self.value)

    def describe(self) -> str:
        residual = " + residual filter" if self.residual_text else ""
        return (
            f"index probe {self.class_name}.{self.attribute} ="
            f" {self.value!r}{residual}"
        )


class IndexRangePlan(_ProbePlanBase):
    """Range scan over an ordered index."""

    kind = "range"

    def __init__(self, select, class_name, variable, attribute, interval,
                 residual):
        super().__init__(select, class_name, variable, attribute, residual)
        self.interval = interval

    def _candidates(self, scope):
        indexes = getattr(scope, "indexes", None)
        index = (
            indexes.find_ordered(self.class_name, self.attribute)
            if indexes is not None and hasattr(indexes, "find_ordered")
            else None
        )
        if index is None:
            return None
        interval = self.interval
        return index.range_lookup(
            low=interval.low,
            high=interval.high,
            low_strict=interval.low_strict,
            high_strict=interval.high_strict,
        )

    def describe(self) -> str:
        residual = " + residual filter" if self.residual_text else ""
        return (
            f"range probe {self.class_name}.{self.attribute}"
            f" {self.interval.describe()}{residual}"
        )


class _Interval:
    """A one-attribute interval: intersection of range atoms."""

    __slots__ = ("low", "high", "low_strict", "high_strict")

    def __init__(self):
        self.low = None
        self.high = None
        self.low_strict = False
        self.high_strict = False

    def add(self, op: str, value) -> None:
        if op in (">", ">="):
            strict = op == ">"
            if (
                self.low is None
                or value > self.low
                or (value == self.low and strict)
            ):
                self.low = value
                self.low_strict = strict
        else:
            strict = op == "<"
            if (
                self.high is None
                or value < self.high
                or (value == self.high and strict)
            ):
                self.high = value
                self.high_strict = strict

    def describe(self) -> str:
        parts = []
        if self.low is not None:
            parts.append(f"{'>' if self.low_strict else '>='} {self.low!r}")
        if self.high is not None:
            parts.append(f"{'<' if self.high_strict else '<='} {self.high!r}")
        return " and ".join(parts)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------

_RANGE_OPS = frozenset({"<", "<=", ">", ">="})
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _conjuncts(expr: Expr):
    if isinstance(expr, Binary) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _conjoin(conjuncts: List[Expr]) -> Optional[Expr]:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = Binary("and", result, conjunct)
    return result


def _attribute_atom(expr: Expr, variable: str):
    """Match ``var.Attr <op> literal`` (either orientation).

    Returns ``(attribute, op, value)`` with the attribute on the left
    (the comparison flipped if needed), or ``None``.
    """
    if not isinstance(expr, Binary):
        return None
    if expr.op != "=" and expr.op not in _RANGE_OPS:
        return None
    for lhs, rhs, op in (
        (expr.left, expr.right, expr.op),
        (expr.right, expr.left, _FLIP.get(expr.op, expr.op)),
    ):
        if (
            isinstance(lhs, Path)
            and len(lhs.attributes) == 1
            and isinstance(lhs.base, Var)
            and lhs.base.name == variable
            and isinstance(rhs, Literal)
            # A null literal is not probeable: `= null` matches absent
            # attributes (which indexes do not store) and a null range
            # bound would read as "unbounded".
            and rhs.value is not None
        ):
            return lhs.attributes[0], op, rhs.value
    return None


def _range_type_ok(scope, class_name: str, attribute: str, values) -> bool:
    """Whether a range plan is error-equivalent to the interpreter.

    ``_compare`` raises on boolean or mixed-type operands; an index
    scan would silently skip them. The declared attribute type rules
    that out: ``integer``/``real`` attributes can only hold non-bool
    numbers (see ``values.conforms``), ``string`` only strings — so a
    matching literal bound can never hit a type error row-by-row.
    """
    try:
        adef = scope.schema.resolve_attribute(class_name, attribute)
    except Exception:
        return False
    declared = adef.declared_type
    if declared is INTEGER or declared is REAL:
        return all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        )
    if declared is STRING:
        return all(isinstance(v, str) for v in values)
    return False


def build_plan(query, scope) -> Plan:
    """Choose an access path for ``query`` on ``scope``."""
    select = ensure_query(query)
    probe = _probe_plan(select, scope)
    if probe is not None:
        return probe
    plan = ScanPlan(select)
    if select.where is not None:
        plan.conjunct_roles = [
            (format_expression(c), "scan filter (no usable index)")
            for c in _conjuncts(select.where)
        ]
    return plan


def _probe_plan(select: Select, scope) -> Optional[Plan]:
    indexes = getattr(scope, "indexes", None)
    if indexes is None:
        return None
    if len(select.bindings) != 1:
        return None
    binding: Binding = select.bindings[0]
    source = binding.source
    if not isinstance(source, ClassSource) or source.arguments:
        return None
    if select.where is None:
        return None
    class_name = source.class_name
    variable = binding.variable
    conjuncts = list(_conjuncts(select.where))

    equalities = []  # (position, attribute, value, index)
    ranges: Dict[str, List[Tuple[int, str, object]]] = {}
    for position, conjunct in enumerate(conjuncts):
        atom = _attribute_atom(conjunct, variable)
        if atom is None:
            continue
        attribute, op, value = atom
        if op == "=":
            index = indexes.find(class_name, attribute)
            if index is not None:
                equalities.append((position, attribute, value, index))
        else:
            ranges.setdefault(attribute, []).append((position, op, value))

    if equalities:
        # Most distinct values == smallest expected bucket.
        position, attribute, value, _index = max(
            equalities, key=lambda entry: entry[3].distinct_values_count()
        )
        residual = _conjoin(
            conjuncts[:position] + conjuncts[position + 1:]
        )
        plan = IndexEqPlan(
            select, class_name, variable, attribute, value, residual
        )
        plan.conjunct_roles = [
            (
                format_expression(c),
                f"index probe ({class_name}.{attribute} index)"
                if i == position
                else "residual filter",
            )
            for i, c in enumerate(conjuncts)
        ]
        return plan

    find_ordered = getattr(indexes, "find_ordered", None)
    if find_ordered is None:
        return None
    best = None
    for attribute, atoms in ranges.items():
        index = find_ordered(class_name, attribute)
        if index is None:
            continue
        if not _range_type_ok(
            scope, class_name, attribute, [value for _, _, value in atoms]
        ):
            continue
        score = index.distinct_values_count()
        if best is None or score > best[0]:
            best = (score, attribute, atoms)
    if best is None:
        return None
    _score, attribute, atoms = best
    interval = _Interval()
    used = set()
    for position, op, value in atoms:
        interval.add(op, value)
        used.add(position)
    residual = _conjoin(
        [c for i, c in enumerate(conjuncts) if i not in used]
    )
    plan = IndexRangePlan(
        select, class_name, variable, attribute, interval, residual
    )
    plan.conjunct_roles = [
        (
            format_expression(c),
            f"range probe bound ({class_name}.{attribute} ordered index)"
            if i in used
            else "residual filter",
        )
        for i, c in enumerate(conjuncts)
    ]
    return plan


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def fetch_plan(query, scope) -> Tuple[Plan, bool, PlanCache]:
    """The cached-or-compiled plan for ``query`` on ``scope``.

    Returns ``(plan, hit, cache)`` and records the scope's plan-cache
    statistics — the shared front half of :func:`execute`, also used
    by ``EXPLAIN ANALYZE`` (which needs the plan object itself). Under
    an active trace the fetch is wrapped in a ``plan`` span (cache
    verdict, plan text) and a compile in a nested ``compile`` span.
    """
    select = ensure_query(query)
    cache = plan_cache_of(scope)
    key = format_query(select)
    token = plan_token(scope)
    if _trace.ENABLED and _trace.current_trace() is not None:
        with _trace.span("plan") as sp:
            plan, hit = cache.fetch(
                key, token, lambda: _traced_build(select, scope)
            )
            sp.set(
                verdict="hit" if hit else "compiled",
                kind=plan.kind,
                plan=plan.describe(),
            )
    else:
        plan, hit = cache.fetch(
            key, token, lambda: build_plan(select, scope)
        )
    stats = getattr(scope, "stats", None)
    if stats is not None:
        if hit:
            stats.record_plan_hit()
        else:
            stats.record_plan_compiled()
    return plan, hit, cache


def _traced_build(select: Select, scope) -> Plan:
    with _trace.span("compile"):
        return build_plan(select, scope)


def execute(
    query,
    scope,
    bindings: Optional[Dict[str, object]] = None,
    functions: Optional[Dict[str, object]] = None,
    self_value=None,
):
    """Evaluate ``query`` via the plan cache.

    The drop-in replacement for :func:`repro.query.eval.evaluate`:
    same result contract, but the query is compiled to closures once
    per (canonical text, version token) and may run as an index probe
    or range scan — or scatter across shard worker processes when the
    scope has a :class:`~repro.exec.ShardExecutor` attached and the
    query is eligible (see :mod:`repro.query.shard`).
    """
    if _stats.ENABLED:
        return _recorded_execute(
            query, scope, bindings, functions, self_value
        )
    handled, result = _scatter_hook(
        query, scope, bindings, functions, self_value
    )
    if handled:
        return result
    if _trace.ENABLED and _trace.current_trace() is not None:
        plan, _hit, cache = fetch_plan(query, scope)
        with _trace.span("execute", plan=plan.kind) as sp:
            result = plan.execute(
                scope, cache, bindings, functions, self_value
            )
            sp.set(rows=len(result) if isinstance(result, list) else 1)
            return result
    select = ensure_query(query)
    cache = plan_cache_of(scope)
    key = format_query(select)
    token = plan_token(scope)
    plan, hit = cache.fetch(key, token, lambda: build_plan(select, scope))
    stats = getattr(scope, "stats", None)
    if stats is not None:
        if hit:
            stats.record_plan_hit()
        else:
            stats.record_plan_compiled()
    return plan.execute(scope, cache, bindings, functions, self_value)


def _recorded_execute(query, scope, bindings, functions, self_value):
    """:func:`execute` with the statement registry armed: same result
    contract and spans, plus one
    :class:`~repro.obs.stats.StatementRegistry` record per call."""
    select = ensure_query(query)
    text = format_query(select)
    kind = type(scope).__name__
    hit = None
    result = None
    failed = True
    started = time.perf_counter()
    try:
        handled, result = _scatter_hook(
            select, scope, bindings, functions, self_value
        )
        if not handled:
            _stats.take_scatter()  # drop partial aggregate scatters
            plan, hit, cache = fetch_plan(select, scope)
            if _trace.ENABLED and _trace.current_trace() is not None:
                with _trace.span("execute", plan=plan.kind) as sp:
                    result = plan.execute(
                        scope, cache, bindings, functions, self_value
                    )
                    sp.set(
                        rows=len(result)
                        if isinstance(result, list)
                        else 1
                    )
            else:
                result = plan.execute(
                    scope, cache, bindings, functions, self_value
                )
        failed = False
        return result
    finally:
        rows = 0
        if not failed:
            rows = len(result) if isinstance(result, list) else 1
        _stats.record_call(text, kind, started, rows, hit, failed)


def explain_plan(query, scope) -> str:
    """A one-line description of the chosen access path."""
    return build_plan(query, scope).describe()


def aggregate_plan_stats(scopes) -> dict:
    """Summed plan-cache counters across ``scopes`` (server `.stats`)."""
    totals = {
        "plans_compiled": 0,
        "plan_cache_hits": 0,
        "invalidations": 0,
        "index_probes": 0,
        "range_probes": 0,
        "cached_plans": 0,
    }
    for scope in scopes:
        cache = getattr(scope, "_plan_cache", None)
        if cache is None:
            continue
        for field, value in cache.snapshot().items():
            totals[field] += value
    return totals
