"""Recursive-descent parser for the query dialect.

Entry points: :func:`parse_query` for a select, :func:`parse_expression`
for a bare expression (used for virtual-attribute bodies and class
parameters). The grammar is liberal, matching the paper's prose: both
``select P from Person where …`` (projection variable implicitly bound)
and ``select A in Adult where …`` (Example 2) are accepted, as are
multiple bindings, nested queries, tuple constructors, membership
predicates and parameterized class references.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import QuerySyntaxError
from .ast import (
    Binary,
    Binding,
    Call,
    ClassSource,
    Expr,
    ExprSource,
    InClass,
    InExpr,
    InQuery,
    Literal,
    Not,
    Path,
    QueryExpr,
    QuerySource,
    Select,
    SelfExpr,
    SetExpr,
    Source,
    TupleExpr,
    Var,
)
from .lexer import TokenStream, tokenize

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


def parse_query(text: str) -> Select:
    """Parse a complete ``select`` query."""
    stream = TokenStream(tokenize(text))
    query = _parse_select(stream)
    if not stream.at_end():
        token = stream.peek()
        raise QuerySyntaxError(
            f"unexpected input after query: {token.text!r}", token.position
        )
    return query


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (or a parenthesised select)."""
    stream = TokenStream(tokenize(text))
    expr = _parse_expr(stream)
    if not stream.at_end():
        token = stream.peek()
        raise QuerySyntaxError(
            f"unexpected input after expression: {token.text!r}",
            token.position,
        )
    return expr


def parse_query_stream(stream: TokenStream) -> Select:
    """Parse a select from an existing token stream (used by the
    view-definition language, which embeds queries in statements)."""
    return _parse_select(stream)


def parse_expression_stream(stream: TokenStream) -> Expr:
    """Parse an expression from an existing token stream."""
    return _parse_expr(stream)


def _parse_select(stream: TokenStream) -> Select:
    stream.expect_keyword("select")
    unique = stream.accept_keyword("the")
    # The projection is parsed at additive level: a top-level `in`
    # belongs to the binding ("select A in Adult"), not to a
    # membership predicate.
    projection = _parse_additive(stream)
    bindings: List[Binding] = []
    if stream.accept_keyword("in"):
        # "select A in Adult where ...": the projection names the variable.
        if not isinstance(projection, Var):
            raise stream.error(
                "the 'select VAR in SOURCE' form requires a bare variable"
            )
        bindings.append(Binding(projection.name, _parse_source(stream)))
    elif stream.accept_keyword("from"):
        bindings.extend(_parse_bindings(stream, projection))
    else:
        raise stream.error("expected 'from' or 'in' after the projection")
    where = None
    if stream.accept_keyword("where"):
        where = _parse_expr(stream)
    return Select(projection, tuple(bindings), where, unique)


def _parse_bindings(stream: TokenStream, projection: Expr) -> List[Binding]:
    bindings: List[Binding] = []
    while True:
        bindings.append(_parse_binding(stream, projection, bool(bindings)))
        if not stream.accept_op(","):
            break
    return bindings


def _parse_binding(
    stream: TokenStream, projection: Expr, have_bindings: bool
) -> Binding:
    # Either "VAR in SOURCE" or a bare source whose variable is the
    # projection variable ("select P from Person").
    token = stream.peek()
    if token.kind == "ident" and stream.peek(1).is_keyword("in"):
        variable = stream.expect_ident().text
        stream.expect_keyword("in")
        return Binding(variable, _parse_source(stream))
    source = _parse_source(stream)
    if not have_bindings:
        # "select P from Person" / "select P.City from Person": the
        # projection's root variable is bound to the source.
        if isinstance(projection, Var):
            return Binding(projection.name, source)
        if isinstance(projection, Path) and isinstance(
            projection.base, Var
        ):
            return Binding(projection.base.name, source)
    raise QuerySyntaxError(
        "a source without 'VAR in' requires a variable-rooted projection",
        token.position,
    )


def _parse_source(stream: TokenStream) -> Source:
    token = stream.peek()
    if token.is_op("("):
        if stream.peek(1).is_keyword("select"):
            stream.expect_op("(")
            query = _parse_select(stream)
            stream.expect_op(")")
            return QuerySource(query)
        stream.expect_op("(")
        expr = _parse_expr(stream)
        stream.expect_op(")")
        return ExprSource(expr)
    if token.kind == "ident":
        # Class name, parameterized class, or a navigation expression.
        if stream.peek(1).is_op("."):
            return ExprSource(_parse_expr(stream))
        name = stream.expect_ident().text
        if stream.accept_op("("):
            args = _parse_argument_list(stream)
            return ClassSource(name, tuple(args))
        return ClassSource(name)
    if token.is_keyword("self"):
        return ExprSource(_parse_expr(stream))
    raise stream.error(f"expected a source, found {token.text!r}")


def _parse_argument_list(stream: TokenStream) -> List[Expr]:
    args: List[Expr] = []
    if stream.accept_op(")"):
        return args
    while True:
        args.append(_parse_expr(stream))
        if stream.accept_op(")"):
            return args
        stream.expect_op(",")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def _parse_expr(stream: TokenStream) -> Expr:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> Expr:
    left = _parse_and(stream)
    while stream.accept_keyword("or"):
        left = Binary("or", left, _parse_and(stream))
    return left


def _parse_and(stream: TokenStream) -> Expr:
    left = _parse_not(stream)
    while stream.accept_keyword("and"):
        left = Binary("and", left, _parse_not(stream))
    return left


def _parse_not(stream: TokenStream) -> Expr:
    if stream.accept_keyword("not"):
        return Not(_parse_not(stream))
    return _parse_comparison(stream)


def _parse_comparison(stream: TokenStream) -> Expr:
    left = _parse_additive(stream)
    token = stream.peek()
    if token.kind == "op" and token.text in _COMPARISON_OPS:
        stream.next()
        right = _parse_additive(stream)
        return Binary(token.text, left, right)
    if token.is_keyword("in"):
        stream.next()
        return _parse_membership(stream, left)
    return left


def _parse_membership(stream: TokenStream, operand: Expr) -> Expr:
    token = stream.peek()
    if token.is_op("(") and stream.peek(1).is_keyword("select"):
        stream.expect_op("(")
        query = _parse_select(stream)
        stream.expect_op(")")
        return InQuery(operand, query)
    target = _parse_additive(stream)
    if isinstance(target, Var):
        return InClass(operand, target.name)
    if isinstance(target, Call):
        return InClass(operand, target.function, target.arguments)
    return InExpr(operand, target)


def _parse_additive(stream: TokenStream) -> Expr:
    left = _parse_term(stream)
    while True:
        if stream.accept_op("+"):
            left = Binary("+", left, _parse_term(stream))
        elif stream.accept_op("-"):
            left = Binary("-", left, _parse_term(stream))
        else:
            return left


def _parse_term(stream: TokenStream) -> Expr:
    left = _parse_path(stream)
    while True:
        if stream.accept_op("*"):
            left = Binary("*", left, _parse_path(stream))
        elif stream.accept_op("/"):
            left = Binary("/", left, _parse_path(stream))
        else:
            return left


def _parse_path(stream: TokenStream) -> Expr:
    base = _parse_primary(stream)
    attributes: List[str] = []
    while stream.accept_op("."):
        attributes.append(stream.expect_ident().text)
    if attributes:
        return Path(base, tuple(attributes))
    return base


def _parse_primary(stream: TokenStream) -> Expr:
    token = stream.peek()
    if token.kind == "number":
        stream.next()
        text = token.text
        return Literal(float(text) if "." in text else int(text))
    if token.kind == "string":
        stream.next()
        return Literal(token.text)
    if token.is_keyword("true"):
        stream.next()
        return Literal(True)
    if token.is_keyword("false"):
        stream.next()
        return Literal(False)
    if token.is_keyword("self"):
        stream.next()
        return SelfExpr()
    if token.kind == "ident":
        stream.next()
        if stream.accept_op("("):
            args = _parse_argument_list(stream)
            return Call(token.text, tuple(args))
        return Var(token.text)
    if token.is_op("("):
        if stream.peek(1).is_keyword("select"):
            stream.expect_op("(")
            query = _parse_select(stream)
            stream.expect_op(")")
            return QueryExpr(query)
        stream.expect_op("(")
        expr = _parse_expr(stream)
        stream.expect_op(")")
        return expr
    if token.is_op("["):
        return _parse_tuple(stream)
    if token.is_op("{"):
        return _parse_set(stream)
    if token.is_keyword("select"):
        # A bare select in expression position (attribute bodies).
        return QueryExpr(_parse_select(stream))
    raise stream.error(f"expected an expression, found {token.text!r}")


def _parse_tuple(stream: TokenStream) -> TupleExpr:
    stream.expect_op("[")
    fields: List[Tuple[str, Expr]] = []
    if stream.accept_op("]"):
        return TupleExpr(())
    while True:
        name = stream.expect_ident().text
        stream.expect_op(":")
        fields.append((name, _parse_expr(stream)))
        if stream.accept_op("]"):
            return TupleExpr(tuple(fields))
        stream.expect_op(",")


def _parse_set(stream: TokenStream) -> SetExpr:
    stream.expect_op("{")
    elements: List[Expr] = []
    if stream.accept_op("}"):
        return SetExpr(())
    while True:
        elements.append(_parse_expr(stream))
        if stream.accept_op("}"):
            return SetExpr(tuple(elements))
        stream.expect_op(",")
