"""Scatter–gather dispatch for the planner.

:func:`try_scatter` is the planner's hook into the sharded execution
engine (:mod:`repro.exec`): given a query about to execute on a scope,
decide whether it can be partitioned across the scope's shard workers,
and if so run it there and merge the per-shard results back into
exactly what serial execution would have produced.

Two shapes scatter:

- **Whole-query scatter** — a single-binding class scan whose
  projection and filter only touch the bound variable, supplied
  bindings, literals and builtin functions. Each worker scans its oid
  slice of the extent; the coordinator concatenates the per-shard rows
  *in shard order* (which reproduces the serial sorted-oid visit
  order), re-applies the global set-semantics dedup, and applies
  ``unique``.
- **Aggregate scatter** — ``count/sum/min/max/avg/exists`` over a
  *closed* shardable subquery anywhere in a larger query. The subquery
  scatters (``count``/``exists`` of a variable projection combine as
  per-shard partial counts — oid slices are disjoint, so no cross-
  shard dedup is needed; every other aggregate gathers the rows,
  dedups, and applies the builtin at the coordinator). The enclosing
  query then runs serially with the aggregate's value bound to a
  synthetic ``__scatterN`` variable.

Everything else — and every scatter that fails (:class:`Unscatterable`,
worker trouble, unencodable values) — falls back to ordinary serial
execution; ``serial_fallbacks`` counts the declines after eligibility.

Eligibility is deliberately conservative; the worker executes against
a *replica database*, so anything whose semantics depend on scope
state the replica does not have must stay serial:

- registered scope functions, ``self``, subqueries / membership-in-
  query, parameterized sources — never shipped;
- dependency tracking active (virtual-class population caching) —
  scatter would bypass read recording, so it declines;
- a :class:`~repro.core.view.View` scatters only when it is a plain
  window onto a single provider database: no virtual or parameterized
  classes, no hides, and class/attribute structure identical to the
  provider's (definition-by-definition), so view evaluation and
  replica evaluation coincide.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..engine.objects import unwrap, wrap_value
from ..engine.tracking import ACTIVE_TRACKERS
from ..engine.values import canonicalize
from ..errors import NonUniqueResultError
from ..exec.coordinator import Unscatterable, executor_of
from ..obs import stats as _stats
from ..obs import trace as _trace
from .ast import (
    Binary,
    Binding,
    Call,
    ClassSource,
    ExprSource,
    InClass,
    InExpr,
    InQuery,
    Literal,
    Not,
    Path,
    QueryExpr,
    QuerySource,
    Select,
    SelfExpr,
    SetExpr,
    TupleExpr,
    Var,
    free_variables,
    walk,
)
from .builder import ensure_query
from .eval import BUILTIN_FUNCTIONS
from .printer import format_query

_AGGREGATES = frozenset(BUILTIN_FUNCTIONS)

# Nodes whose presence anywhere makes a select unshippable: they need
# scope state (``self``), nested query evaluation, or sources the
# worker replica cannot reproduce.
_BANNED_NODES = (SelfExpr, QueryExpr, InQuery, QuerySource, ExprSource)


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------


def _structural_block(select: Select, scope) -> Optional[str]:
    """Why ``select`` cannot ship to shard workers (``None`` if it
    can)."""
    if len(select.bindings) != 1:
        return "multi-binding select"
    source = select.bindings[0].source
    if not isinstance(source, ClassSource):
        return "non-class source"
    if source.arguments:
        return "parameterized class source"
    schema = getattr(scope, "schema", None)
    if schema is None or source.class_name not in schema:
        return "unknown source class"
    scope_functions = getattr(scope, "functions", None) or {}
    for node in walk(select):
        if isinstance(node, _BANNED_NODES):
            return type(node).__name__
        if isinstance(node, InClass):
            if node.class_args:
                return "parameterized membership"
            if node.class_name not in schema:
                return "unknown membership class"
        elif isinstance(node, Call):
            if node.function not in BUILTIN_FUNCTIONS:
                return f"non-builtin function {node.function!r}"
            if node.function in scope_functions:
                return f"scope-registered function {node.function!r}"
    return None


def _view_blocked(view, provider) -> bool:
    """Whether ``view`` is anything more than a plain window onto
    ``provider`` (in which case worker replicas of the provider would
    not reproduce its semantics)."""
    if getattr(view, "_virtuals", None):
        return True
    if getattr(view, "_families", None):
        return True
    hides = getattr(view, "_hides", None)
    if hides is not None and (
        hides.attribute_declarations() or hides.hidden_classes()
    ):
        return True
    view_schema = getattr(view, "schema", None)
    provider_schema = getattr(provider, "schema", None)
    if view_schema is None or provider_schema is None:
        return True
    view_classes = set(view_schema.class_names())
    if view_classes != set(provider_schema.class_names()):
        return True
    for class_name in view_classes:
        ours = view_schema.attributes_of(class_name)
        theirs = provider_schema.attributes_of(class_name)
        if set(ours) != set(theirs):
            return True
        # Identity, not equality: an imported class shares its
        # AttributeDef objects with the provider; a same-named
        # view-level redefinition would not.
        if any(ours[name] is not theirs[name] for name in ours):
            return True
    return False


def _extent_big_enough(executor, provider) -> bool:
    counter = getattr(provider, "object_count", None)
    if callable(counter):
        total = counter()
    else:
        total = len(provider.all_oids())
    return total >= executor.min_scatter_extent


# ----------------------------------------------------------------------
# Aggregate rewrite
# ----------------------------------------------------------------------


def _closed_aggregate(node, scope) -> bool:
    """Is ``node`` an aggregate call over a closed, shippable
    subquery?"""
    return (
        isinstance(node, Call)
        and node.function in _AGGREGATES
        and len(node.arguments) == 1
        and isinstance(node.arguments[0], QueryExpr)
        and not free_variables(node.arguments[0].query)
        and _structural_block(node.arguments[0].query, scope) is None
    )


def _rewrite(node, scope, jobs: List[Tuple[str, str, Select]]):
    """Rebuild ``node`` with every closed shardable aggregate call
    replaced by a synthetic ``__scatterN`` variable, recording
    ``(variable, function, subquery)`` jobs."""
    if _closed_aggregate(node, scope):
        name = f"__scatter{len(jobs)}"
        jobs.append((name, node.function, node.arguments[0].query))
        return Var(name)
    if isinstance(node, (Literal, Var, SelfExpr)):
        return node
    if isinstance(node, Path):
        return dataclasses.replace(node, base=_rewrite(node.base, scope, jobs))
    if isinstance(node, TupleExpr):
        return dataclasses.replace(
            node,
            fields=tuple(
                (name, _rewrite(expr, scope, jobs))
                for name, expr in node.fields
            ),
        )
    if isinstance(node, SetExpr):
        return dataclasses.replace(
            node,
            elements=tuple(
                _rewrite(expr, scope, jobs) for expr in node.elements
            ),
        )
    if isinstance(node, Binary):
        return dataclasses.replace(
            node,
            left=_rewrite(node.left, scope, jobs),
            right=_rewrite(node.right, scope, jobs),
        )
    if isinstance(node, Not):
        return dataclasses.replace(
            node, operand=_rewrite(node.operand, scope, jobs)
        )
    if isinstance(node, InClass):
        return dataclasses.replace(
            node,
            operand=_rewrite(node.operand, scope, jobs),
            class_args=tuple(
                _rewrite(arg, scope, jobs) for arg in node.class_args
            ),
        )
    if isinstance(node, InExpr):
        return dataclasses.replace(
            node,
            operand=_rewrite(node.operand, scope, jobs),
            container=_rewrite(node.container, scope, jobs),
        )
    if isinstance(node, Call):
        return dataclasses.replace(
            node,
            arguments=tuple(
                _rewrite(arg, scope, jobs) for arg in node.arguments
            ),
        )
    if isinstance(node, ClassSource):
        return dataclasses.replace(
            node,
            arguments=tuple(
                _rewrite(arg, scope, jobs) for arg in node.arguments
            ),
        )
    if isinstance(node, ExprSource):
        return dataclasses.replace(
            node, expression=_rewrite(node.expression, scope, jobs)
        )
    if isinstance(node, Binding):
        return dataclasses.replace(
            node, source=_rewrite(node.source, scope, jobs)
        )
    if isinstance(node, Select):
        return dataclasses.replace(
            node,
            projection=_rewrite(node.projection, scope, jobs),
            bindings=tuple(
                _rewrite(binding, scope, jobs)
                for binding in node.bindings
            ),
            where=(
                _rewrite(node.where, scope, jobs)
                if node.where is not None
                else None
            ),
        )
    # InQuery / QueryExpr / QuerySource: the enclosing query runs
    # serially anyway; leave nested selects untouched.
    return node


def _count_mode(function: str, inner: Select) -> bool:
    """Partial-count combining is exact only when the subquery's rows
    are distinct by construction: a variable projection yields one
    distinct object per oid, and shard slices are disjoint oid
    ranges."""
    return (
        function in ("count", "exists")
        and not inner.unique
        and isinstance(inner.projection, Var)
        and inner.projection.name == inner.bindings[0].variable
    )


# ----------------------------------------------------------------------
# Scatter + merge
# ----------------------------------------------------------------------


def _run_scatter(executor, select: Select, bindings, mode: str, pin):
    """One traced scatter of ``select`` (``unique`` already stripped);
    emits per-shard spans — each carrying the worker's shipped span
    subtree — for EXPLAIN ANALYZE and the slow-query log."""
    text = format_query(select)
    if _trace.ENABLED and _trace.current_trace() is not None:
        with _trace.span(
            "scatter", shards=executor.shards, mode=mode
        ) as sp:
            outcome = executor.scatter(
                select, text, bindings, mode, pin, trace=True
            )
            for info in outcome.shard_info:
                _attach_shard_span(info)
            sp.set(
                version=outcome.version,
                gathered=(
                    sum(outcome.counts)
                    if mode == "count"
                    else len(outcome.rows)
                ),
            )
    else:
        outcome = executor.scatter(select, text, bindings, mode, pin)
    if _stats.ENABLED:
        _stats.note_scatter(
            sum(info["scanned"] for info in outcome.shard_info)
        )
    return outcome


def _oid_range(info: dict) -> str:
    """``lo..hi`` with ``*`` for an open end (the first/last slice)."""
    lo, hi = info.get("lo"), info.get("hi")
    low = "*" if lo is None else str(lo)
    high = "*" if hi is None else str(hi)
    return f"{low}..{high}"


def _attach_shard_span(info: dict) -> None:
    """One ``scatter.shard`` span — worker pid, shard index, oid
    range, wall-vs-CPU time — with the worker's shipped span tree
    re-attached beneath it (failovers ran serially on the coordinator
    and ship none)."""
    attrs = {
        "shard": info["shard"],
        "oids": _oid_range(info),
        "scanned": info["scanned"],
        "returned": info["returned"],
        "plan": "hit" if info["plan_hit"] else "compiled",
        "failover": info["failover"],
    }
    if info.get("pid") is not None:
        attrs["pid"] = info["pid"]
    if info.get("cpu") is not None:
        attrs["cpu_ms"] = round(info["cpu"] * 1e3, 3)
    span = _trace.Span("scatter.shard", attrs)
    span.duration = info["elapsed"]
    shipped = info.get("spans")
    if isinstance(shipped, dict):
        for child in shipped.get("children") or ():
            if isinstance(child, dict):
                span.children.append(_trace.span_from_dict(child))
    _trace.attach_span(span)


def _merge_rows(outcome, scope, unique: bool):
    """Re-apply global set semantics (and ``unique``) to the gathered
    rows. Rows arrive concatenated in shard order — the serial visit
    order — so first-occurrence dedup reproduces serial results
    exactly."""
    if _trace.ENABLED and _trace.current_trace() is not None:
        with _trace.span("scatter.merge", gathered=len(outcome.rows)) as sp:
            results = _dedup_wrapped(outcome.rows, scope)
            sp.set(returned=len(results))
    else:
        results = _dedup_wrapped(outcome.rows, scope)
    if unique:
        if len(results) != 1:
            raise NonUniqueResultError(len(results))
        return results[0]
    return results


def _dedup_wrapped(rows, scope) -> List[object]:
    results: List[object] = []
    seen = set()
    for raw in rows:
        key = canonicalize(raw)
        if key in seen:
            continue
        seen.add(key)
        results.append(wrap_value(scope, raw))
    return results


def _dedup_raw(rows) -> List[object]:
    out: List[object] = []
    seen = set()
    for raw in rows:
        key = canonicalize(raw)
        if key in seen:
            continue
        seen.add(key)
        out.append(raw)
    return out


def _aggregate_value(function: str, outcome) -> object:
    if outcome.mode == "count":
        total = sum(outcome.counts)
        return total > 0 if function == "exists" else total
    values = _dedup_raw(outcome.rows)
    return BUILTIN_FUNCTIONS[function](values)


def _serial_execute(select: Select, scope, bindings):
    from .planner import fetch_plan

    plan, _hit, cache = fetch_plan(select, scope)
    return plan.execute(scope, cache, bindings, None, None)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def try_scatter(
    query,
    scope,
    bindings: Optional[Dict[str, object]] = None,
    functions: Optional[Dict[str, object]] = None,
    self_value=None,
) -> Tuple[bool, object]:
    """Scatter ``query`` if a shard executor serves ``scope`` and the
    query is eligible.

    Returns ``(True, result)`` when the scatter (or aggregate rewrite)
    fully produced the query's result, ``(False, None)`` when the
    caller should execute serially as usual.
    """
    if functions or self_value is not None:
        return False, None
    if ACTIVE_TRACKERS:
        # Scattered execution would bypass dependency-read recording,
        # silently breaking virtual-population invalidation.
        return False, None
    executor, provider = executor_of(scope)
    if executor is None:
        return False, None
    select = ensure_query(query)
    if not _extent_big_enough(executor, provider):
        return False, None
    pin = provider if provider is not executor.db else None
    if scope is not provider and _view_blocked(scope, provider):
        return False, None

    supplied = dict(bindings) if bindings else {}
    if _structural_block(select, scope) is None:
        free = free_variables(select)
        if not free <= set(supplied):
            return False, None  # serial raises the unbound-var error
        shipped = dataclasses.replace(select, unique=False)
        ship_bindings = {name: unwrap(supplied[name]) for name in free}
        try:
            outcome = _run_scatter(
                executor, shipped, ship_bindings, "rows", pin
            )
        except Unscatterable:
            executor.stats.serial_fallbacks += 1
            return False, None
        return True, _merge_rows(outcome, scope, select.unique)

    jobs: List[Tuple[str, str, Select]] = []
    rewritten = _rewrite(select, scope, jobs)
    if not jobs:
        return False, None
    extra: Dict[str, object] = {}
    for name, function, inner in jobs:
        mode = "count" if _count_mode(function, inner) else "rows"
        shipped = dataclasses.replace(inner, unique=False)
        try:
            outcome = _run_scatter(executor, shipped, {}, mode, pin)
        except Unscatterable:
            executor.stats.serial_fallbacks += 1
            return False, None
        extra[name] = _aggregate_value(function, outcome)
    supplied.update(extra)
    return True, _serial_execute(rewritten, scope, supplied)
