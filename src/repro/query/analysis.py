"""Static analysis of queries for hierarchy inference.

Section 4.2 of the paper derives the position of a virtual class from
its population declaration. For a specialization — a virtual class
defined by a query — the superclasses are the classes that *every*
result of the query is statically guaranteed to belong to:

- the class the projection variable ranges over
  (``select P from Person where …`` ⇒ every result is a ``Person``);
- any class-membership conjunct on the projection variable
  (``select P from Rich where P in Beautiful`` ⇒ results are both
  ``Rich`` and ``Beautiful`` — the ``Rich&Beautiful`` example, which
  introduces multiple inheritance);
- classes guaranteed by a nested query the variable ranges over.

The analysis is conservative: it only mines top-level conjunctions, so
it never reports a class the results might not belong to.
"""

from __future__ import annotations

from typing import List

from .ast import (
    Binary,
    ClassSource,
    Expr,
    InClass,
    InQuery,
    QuerySource,
    Select,
    Var,
)


def guaranteed_classes(query: Select) -> List[str]:
    """Classes every result of ``query`` is statically known to be in.

    Returns an ordered, duplicate-free list. Empty when the projection
    is not a plain variable (e.g. a tuple constructor — those queries
    build values, not object selections).
    """
    if not isinstance(query.projection, Var):
        return []
    variable = query.projection.name
    classes: List[str] = []

    def add(name: str) -> None:
        if name not in classes:
            classes.append(name)

    for binding in query.bindings:
        if binding.variable != variable:
            continue
        source = binding.source
        if isinstance(source, ClassSource) and not source.arguments:
            add(source.class_name)
        elif isinstance(source, QuerySource):
            for name in guaranteed_classes(source.query):
                add(name)
    if query.where is not None:
        for conjunct in _conjuncts(query.where):
            if (
                isinstance(conjunct, InClass)
                and isinstance(conjunct.operand, Var)
                and conjunct.operand.name == variable
                and not conjunct.class_args
            ):
                add(conjunct.class_name)
            elif (
                isinstance(conjunct, InQuery)
                and isinstance(conjunct.operand, Var)
                and conjunct.operand.name == variable
            ):
                for name in guaranteed_classes(conjunct.query):
                    add(name)
    return classes


def _conjuncts(expr: Expr):
    if isinstance(expr, Binary) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def source_classes(query: Select) -> List[str]:
    """All class names any binding of the query ranges over (used to
    subscribe materialized virtual classes to the right update events)."""
    classes: List[str] = []

    def visit(select: Select) -> None:
        for binding in select.bindings:
            source = binding.source
            if isinstance(source, ClassSource):
                if source.class_name not in classes:
                    classes.append(source.class_name)
            elif isinstance(source, QuerySource):
                visit(source.query)

    visit(query)
    return classes
