"""A fluent Python API for building query ASTs.

For programs that prefer not to embed query text::

    from repro.query.builder import select, var

    adults = select("P").from_("Person").where(var("P").Age >= 21)

``select(...)`` returns a :class:`SelectBuilder`; anywhere the library
accepts a query it also accepts a builder (``.build()`` is called for
you). Expression wrappers overload the comparison operators, attribute
access (building paths) and provide ``in_class`` / ``in_`` membership
tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import QueryError
from .ast import (
    Binary,
    Binding,
    Call,
    ClassSource,
    Expr,
    ExprSource,
    InClass,
    InExpr,
    InQuery,
    Literal,
    Not,
    Path,
    QueryExpr,
    QuerySource,
    Select,
    SelfExpr,
    SetExpr,
    Source,
    TupleExpr,
    Var,
)


class X:
    """An expression wrapper with operator overloading."""

    __slots__ = ("node",)

    def __init__(self, node: Expr):
        object.__setattr__(self, "node", node)

    def __getattr__(self, name: str) -> "X":
        if name.startswith("_"):
            raise AttributeError(name)
        node = self.node
        if isinstance(node, Path):
            return X(Path(node.base, node.attributes + (name,)))
        return X(Path(node, (name,)))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("expression wrappers are immutable")

    # Comparisons -------------------------------------------------------

    def __eq__(self, other) -> "X":  # type: ignore[override]
        return X(Binary("=", self.node, as_expr(other)))

    def __ne__(self, other) -> "X":  # type: ignore[override]
        return X(Binary("!=", self.node, as_expr(other)))

    def __lt__(self, other) -> "X":
        return X(Binary("<", self.node, as_expr(other)))

    def __le__(self, other) -> "X":
        return X(Binary("<=", self.node, as_expr(other)))

    def __gt__(self, other) -> "X":
        return X(Binary(">", self.node, as_expr(other)))

    def __ge__(self, other) -> "X":
        return X(Binary(">=", self.node, as_expr(other)))

    __hash__ = None  # type: ignore[assignment]

    # Boolean connectives ----------------------------------------------

    def __and__(self, other) -> "X":
        return X(Binary("and", self.node, as_expr(other)))

    def __or__(self, other) -> "X":
        return X(Binary("or", self.node, as_expr(other)))

    def __invert__(self) -> "X":
        return X(Not(self.node))

    # Arithmetic --------------------------------------------------------

    def __add__(self, other) -> "X":
        return X(Binary("+", self.node, as_expr(other)))

    def __sub__(self, other) -> "X":
        return X(Binary("-", self.node, as_expr(other)))

    def __mul__(self, other) -> "X":
        return X(Binary("*", self.node, as_expr(other)))

    def __truediv__(self, other) -> "X":
        return X(Binary("/", self.node, as_expr(other)))

    # Membership --------------------------------------------------------

    def in_class(self, class_name: str, *args) -> "X":
        return X(
            InClass(
                self.node,
                class_name,
                tuple(as_expr(a) for a in args),
            )
        )

    def in_(self, container) -> "X":
        if isinstance(container, SelectBuilder):
            return X(InQuery(self.node, container.build()))
        if isinstance(container, Select):
            return X(InQuery(self.node, container))
        return X(InExpr(self.node, as_expr(container)))


def var(name: str) -> X:
    """A query variable reference."""
    return X(Var(name))


def self_() -> X:
    """The attribute-body receiver."""
    return X(SelfExpr())


def lit(value) -> X:
    """A literal constant."""
    return X(Literal(value))


def call(function: str, *args) -> X:
    """A call to a registered function (``call("gsd", self_())``)."""
    return X(Call(function, tuple(as_expr(a) for a in args)))


def record(**fields) -> X:
    """A tuple constructor: ``record(Husband=var("H"), ...)``."""
    return X(
        TupleExpr(
            tuple((name, as_expr(value)) for name, value in fields.items())
        )
    )


def setof(*elements) -> X:
    return X(SetExpr(tuple(as_expr(e) for e in elements)))


def as_expr(value) -> Expr:
    """Coerce a Python value / wrapper / AST node to an expression."""
    if isinstance(value, X):
        return value.node
    if isinstance(value, Expr):
        return value
    if isinstance(value, SelectBuilder):
        return QueryExpr(value.build())
    if isinstance(value, Select):
        return QueryExpr(value)
    if isinstance(value, (str, int, float, bool)):
        return Literal(value)
    if isinstance(value, dict):
        return TupleExpr(
            tuple((name, as_expr(item)) for name, item in value.items())
        )
    raise QueryError(f"cannot use {value!r} as a query expression")


def _as_source(source) -> Source:
    if isinstance(source, Source):
        return source
    if isinstance(source, SelectBuilder):
        return QuerySource(source.build())
    if isinstance(source, Select):
        return QuerySource(source)
    if isinstance(source, str):
        return ClassSource(source)
    if isinstance(source, X):
        return ExprSource(source.node)
    if isinstance(source, Expr):
        return ExprSource(source)
    raise QueryError(f"cannot use {source!r} as a query source")


def class_(name: str, *args) -> Source:
    """A (possibly parameterized) class source: ``class_("Adult", 21)``."""
    return ClassSource(name, tuple(as_expr(a) for a in args))


class SelectBuilder:
    """Accumulates the pieces of a :class:`Select`."""

    def __init__(self, projection, unique: bool = False):
        if isinstance(projection, str):
            projection = Var(projection)
        self._projection = as_expr(projection) if not isinstance(
            projection, Expr
        ) else projection
        self._bindings: Tuple[Binding, ...] = ()
        self._where: Optional[Expr] = None
        self._unique = unique

    def from_(self, *args) -> "SelectBuilder":
        """``.from_("Person")`` binds the projection variable;
        ``.from_("H", "Person")`` binds an explicit variable. May be
        called repeatedly for joins."""
        if len(args) == 1:
            projection = self._projection
            if not isinstance(projection, Var):
                raise QueryError(
                    "from_(source) without a variable requires a bare-"
                    "variable projection; use from_(var, source)"
                )
            variable = projection.name
            source = args[0]
        elif len(args) == 2:
            variable, source = args
        else:
            raise QueryError("from_ takes (source) or (variable, source)")
        binding = Binding(variable, _as_source(source))
        clone = self._clone()
        clone._bindings = self._bindings + (binding,)
        return clone

    def where(self, condition) -> "SelectBuilder":
        clone = self._clone()
        condition = as_expr(condition)
        if self._where is None:
            clone._where = condition
        else:
            clone._where = Binary("and", self._where, condition)
        return clone

    def the(self) -> "SelectBuilder":
        clone = self._clone()
        clone._unique = True
        return clone

    def build(self) -> Select:
        if not self._bindings:
            raise QueryError("query has no from/in binding")
        return Select(
            self._projection, self._bindings, self._where, self._unique
        )

    def _clone(self) -> "SelectBuilder":
        clone = SelectBuilder(self._projection, self._unique)
        clone._bindings = self._bindings
        clone._where = self._where
        return clone


def select(projection) -> SelectBuilder:
    """Start building a query: ``select("P")``, ``select(record(...))``."""
    return SelectBuilder(projection)


def select_the(projection) -> SelectBuilder:
    """Start a ``select the`` (unique result) query."""
    return SelectBuilder(projection, unique=True)


def ensure_query(query) -> Select:
    """Coerce text / builder / AST to a :class:`Select`."""
    from .parser import parse_query

    if isinstance(query, Select):
        return query
    if isinstance(query, SelectBuilder):
        return query.build()
    if isinstance(query, str):
        return parse_query(query)
    raise QueryError(f"not a query: {query!r}")
