"""Unparsing: render query ASTs back to source text.

``parse_query(format_query(q)) == q`` for every query the parser
accepts (pinned by a round-trip property test). Used by the CLI's
``explain``, error messages, and the view decompiler.
"""

from __future__ import annotations

from .ast import (
    Binary,
    Binding,
    Call,
    ClassSource,
    Expr,
    ExprSource,
    InClass,
    InExpr,
    InQuery,
    Literal,
    Not,
    Path,
    QueryExpr,
    QuerySource,
    Select,
    SelfExpr,
    SetExpr,
    Source,
    TupleExpr,
    Var,
)

#: Binding strength of each operator (higher binds tighter).
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "=": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "in": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
}
_ATOM = 7


def format_query(query: Select) -> str:
    """Render a select query as parseable text."""
    parts = ["select"]
    if query.unique:
        parts.append("the")
    parts.append(format_expression(query.projection))
    parts.append("from")
    parts.append(
        ", ".join(_format_binding(b) for b in query.bindings)
    )
    if query.where is not None:
        parts.append("where")
        parts.append(format_expression(query.where))
    return " ".join(parts)


def _format_binding(binding: Binding) -> str:
    return f"{binding.variable} in {_format_source(binding.source)}"


def _format_source(source: Source) -> str:
    if isinstance(source, ClassSource):
        if source.arguments:
            args = ", ".join(
                format_expression(a) for a in source.arguments
            )
            return f"{source.class_name}({args})"
        return source.class_name
    if isinstance(source, QuerySource):
        return f"({format_query(source.query)})"
    if isinstance(source, ExprSource):
        return f"({format_expression(source.expression)})"
    raise TypeError(f"unknown source: {source!r}")


def format_expression(expr: Expr) -> str:
    """Render an expression as parseable text."""
    return _format(expr, 0)


def _format(expr: Expr, parent_precedence: int) -> str:
    text, precedence = _render(expr)
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _render(expr: Expr):
    if isinstance(expr, Literal):
        return _render_literal(expr.value), _ATOM
    if isinstance(expr, Var):
        return expr.name, _ATOM
    if isinstance(expr, SelfExpr):
        return "self", _ATOM
    if isinstance(expr, Path):
        base = _format(expr.base, _ATOM)
        return base + "".join(f".{a}" for a in expr.attributes), _ATOM
    if isinstance(expr, TupleExpr):
        inner = ", ".join(
            f"{name}: {format_expression(value)}"
            for name, value in expr.fields
        )
        return f"[{inner}]", _ATOM
    if isinstance(expr, SetExpr):
        inner = ", ".join(
            format_expression(e) for e in expr.elements
        )
        return f"{{{inner}}}", _ATOM
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            # Comparisons are non-associative in the grammar: both
            # operands must sit strictly above comparison level.
            left = _format(expr.left, precedence + 1)
        else:
            # Arithmetic and boolean connectives associate left.
            left = _format(expr.left, precedence)
        right = _format(expr.right, precedence + 1)
        return f"{left} {expr.op} {right}", precedence
    if isinstance(expr, Not):
        precedence = _PRECEDENCE["not"]
        return f"not {_format(expr.operand, precedence)}", precedence
    if isinstance(expr, InClass):
        precedence = _PRECEDENCE["in"]
        operand = _format(expr.operand, precedence + 1)
        if expr.class_args:
            args = ", ".join(
                format_expression(a) for a in expr.class_args
            )
            return f"{operand} in {expr.class_name}({args})", precedence
        return f"{operand} in {expr.class_name}", precedence
    if isinstance(expr, InExpr):
        precedence = _PRECEDENCE["in"]
        operand = _format(expr.operand, precedence + 1)
        container = _format(expr.container, precedence + 1)
        return f"{operand} in {container}", precedence
    if isinstance(expr, InQuery):
        precedence = _PRECEDENCE["in"]
        operand = _format(expr.operand, precedence + 1)
        return f"{operand} in ({format_query(expr.query)})", precedence
    if isinstance(expr, QueryExpr):
        return f"({format_query(expr.query)})", _ATOM
    if isinstance(expr, Call):
        args = ", ".join(format_expression(a) for a in expr.arguments)
        return f"{expr.function}({args})", _ATOM
    raise TypeError(f"unknown expression: {expr!r}")


def _render_literal(value) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, float):
        text = repr(value)
        return text if "." in text or "e" in text else text + ".0"
    return str(value)
