"""Query compilation: lowering ``Select`` ASTs into Python closures.

The interpreter in :mod:`repro.query.eval` walks the AST once per
candidate object: every expression evaluation is an ``isinstance``
dispatch over node types, and every row allocates a fresh
:class:`~repro.query.eval.EvalEnv` (copying the bindings dict). For
view re-population and server workloads that re-run the same query
over tens of thousands of objects, that per-row dispatch dominates.

This module performs the lowering *once per query*: each AST node
becomes a closure ``fn(rt, env)`` where ``rt`` is a per-execution
:class:`Runtime` (scope, functions, ``self``, subquery memo) and
``env`` is a plain dict of variable bindings. The per-object inner
loop is then a chain of direct function calls. On top of the plain
lowering the compiler applies:

- **constant folding** — literal subtrees (arithmetic, comparisons,
  short-circuit ``and``/``or`` with a literal left operand) collapse
  to constants at compile time; folds that would *raise* are left as
  runtime closures so errors still surface exactly when the
  interpreter would raise them;
- **loop-invariant subquery hoisting** — closed subqueries (no free
  variables) are evaluated once per execution and memoized in the
  runtime, mirroring the interpreter's ``_eval_closed_subquery``;
- **per-expression specialization** — single-attribute paths, single
  bindings and boolean contexts get dedicated closures with no
  generic dispatch.

Semantics are pinned to the interpreter by the property suite in
``tests/test_query_compile.py``: the compiled closures reuse the
interpreter's value helpers (``_model_equal``, ``_compare``,
``_arith``, ``_truthy``, ``_contains``) so results, errors *and*
recorded read-dependencies match the interpretive path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..engine.objects import ObjectHandle, TupleValue, unwrap, wrap_value
from ..engine.values import canonicalize
from ..errors import NonUniqueResultError, QueryError
from .ast import (
    Binary,
    Call,
    ClassSource,
    Expr,
    ExprSource,
    InClass,
    InExpr,
    InQuery,
    Literal,
    Not,
    Path,
    QueryExpr,
    QuerySource,
    Select,
    SelfExpr,
    SetExpr,
    Source,
    TupleExpr,
    Var,
    free_variables,
)
from .builder import ensure_query
from .eval import (
    BUILTIN_FUNCTIONS,
    _arith,
    _as_collection,
    _as_oid,
    _CachedResult,
    _compare,
    _contains,
    _model_equal,
    _truthy,
)

# Sentinel: "this expression did not fold to a constant".
_NOT_CONST = object()

# Binary operators whose closures already return a plain bool, so a
# boolean context needs no extra _truthy wrapper.
_BOOL_OPS = frozenset({"and", "or", "=", "!=", "<", "<=", ">", ">="})


class Runtime:
    """Per-execution state shared by every closure of one compiled
    query: the scope, the merged function table, the ``self`` value
    and the memo for hoisted (closed) subqueries."""

    __slots__ = ("scope", "functions", "self_value", "memo")

    def __init__(self, scope, functions=None, self_value=None):
        self.scope = scope
        merged = dict(functions) if functions else {}
        scope_functions = getattr(scope, "functions", None)
        if scope_functions:
            for name, fn in scope_functions.items():
                merged.setdefault(name, fn)
        for name, fn in BUILTIN_FUNCTIONS.items():
            merged.setdefault(name, fn)
        self.functions = merged
        self.self_value = self_value
        # id(node) -> memoized result for closed subqueries; one memo
        # per execution so mutations between executions are seen.
        self.memo: Dict[int, object] = {}


# ----------------------------------------------------------------------
# Expression lowering
# ----------------------------------------------------------------------


def _compile(expr: Expr):
    """Lower one expression to ``(closure, constant)``.

    ``constant`` is the folded value when the expression is a
    compile-time constant, else :data:`_NOT_CONST`. The closure is
    always valid either way.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return (lambda rt, env: value), value
    if isinstance(expr, Var):
        name = expr.name

        def run_var(rt, env):
            try:
                return env[name]
            except KeyError:
                raise QueryError(f"unbound variable: {name!r}") from None

        return run_var, _NOT_CONST
    if isinstance(expr, SelfExpr):

        def run_self(rt, env):
            if rt.self_value is None:
                raise QueryError("'self' used outside an attribute body")
            return rt.self_value

        return run_self, _NOT_CONST
    if isinstance(expr, Path):
        return _compile_path(expr), _NOT_CONST
    if isinstance(expr, TupleExpr):
        fields = [(name, _compile(value)[0]) for name, value in expr.fields]

        def run_tuple(rt, env):
            return TupleValue(
                rt.scope, {name: unwrap(fn(rt, env)) for name, fn in fields}
            )

        return run_tuple, _NOT_CONST
    if isinstance(expr, SetExpr):
        elements = [_compile(item)[0] for item in expr.elements]

        def run_set(rt, env):
            scope = rt.scope
            return frozenset(
                wrap_value(scope, unwrap(fn(rt, env))) for fn in elements
            )

        return run_set, _NOT_CONST
    if isinstance(expr, Binary):
        return _compile_binary(expr)
    if isinstance(expr, Not):
        fn, const = _compile(expr.operand)
        if const is not _NOT_CONST:
            try:
                folded = not _truthy(const)
            except QueryError:
                pass
            else:
                return (lambda rt, env: folded), folded

        def run_not(rt, env):
            return not _truthy(fn(rt, env))

        return run_not, _NOT_CONST
    if isinstance(expr, InClass):
        return _compile_in_class(expr), _NOT_CONST
    if isinstance(expr, InExpr):
        operand = _compile(expr.operand)[0]
        container = _compile(expr.container)[0]

        def run_in(rt, env):
            value = operand(rt, env)
            return _contains(container(rt, env), value)

        return run_in, _NOT_CONST
    if isinstance(expr, InQuery):
        return _compile_in_query(expr), _NOT_CONST
    if isinstance(expr, QueryExpr):
        return _compile_query_expr(expr), _NOT_CONST
    if isinstance(expr, Call):
        name = expr.function
        args = [_compile(arg)[0] for arg in expr.arguments]

        def run_call(rt, env):
            fn = rt.functions.get(name)
            if fn is None:
                raise QueryError(f"unknown function: {name!r}")
            values = [arg(rt, env) for arg in args]
            return wrap_value(rt.scope, unwrap(fn(*values)))

        return run_call, _NOT_CONST
    raise QueryError(f"unknown expression node: {expr!r}")


def _compile_path(path: Path) -> Callable:
    base = _compile(path.base)[0]
    attributes = path.attributes
    if len(attributes) == 1:
        attribute = attributes[0]

        def run_path1(rt, env):
            value = base(rt, env)
            if value is None:
                return None
            if isinstance(value, (ObjectHandle, TupleValue)):
                return getattr(value, attribute)
            if isinstance(value, dict):
                return wrap_value(rt.scope, value.get(attribute))
            raise QueryError(
                f"cannot select attribute {attribute!r} from"
                f" {type(value).__name__}"
            )

        return run_path1

    def run_path(rt, env):
        value = base(rt, env)
        for attribute in attributes:
            if value is None:
                return None
            if isinstance(value, (ObjectHandle, TupleValue)):
                value = getattr(value, attribute)
            elif isinstance(value, dict):
                value = wrap_value(rt.scope, value.get(attribute))
            else:
                raise QueryError(
                    f"cannot select attribute {attribute!r} from"
                    f" {type(value).__name__}"
                )
        return value

    return run_path


def _compile_binary(expr: Binary):
    op = expr.op
    left, left_const = _compile(expr.left)
    right, right_const = _compile(expr.right)
    if op == "and" or op == "or":
        # Fold only through the short-circuit rules: a literal left
        # operand decides whether the right side is ever evaluated, so
        # `false and <error>` must stay `false` — exactly as the
        # interpreter behaves row by row.
        stop = op == "or"  # `or` stops on truthy left, `and` on falsy
        if left_const is not _NOT_CONST:
            try:
                left_truth = _truthy(left_const)
            except QueryError:
                pass
            else:
                if left_truth is stop:
                    return (lambda rt, env: stop), stop
                if right_const is not _NOT_CONST:
                    try:
                        folded = _truthy(right_const)
                    except QueryError:
                        pass
                    else:
                        return (lambda rt, env: folded), folded

                def run_right(rt, env):
                    return _truthy(right(rt, env))

                return run_right, _NOT_CONST
        if op == "and":

            def run_and(rt, env):
                return _truthy(left(rt, env)) and _truthy(right(rt, env))

            return run_and, _NOT_CONST

        def run_or(rt, env):
            return _truthy(left(rt, env)) or _truthy(right(rt, env))

        return run_or, _NOT_CONST

    both_const = (
        left_const is not _NOT_CONST and right_const is not _NOT_CONST
    )
    if op == "=":
        if both_const:
            folded = _model_equal(left_const, right_const)
            return (lambda rt, env: folded), folded

        def run_eq(rt, env):
            return _model_equal(left(rt, env), right(rt, env))

        return run_eq, _NOT_CONST
    if op == "!=":
        if both_const:
            folded = not _model_equal(left_const, right_const)
            return (lambda rt, env: folded), folded

        def run_ne(rt, env):
            return not _model_equal(left(rt, env), right(rt, env))

        return run_ne, _NOT_CONST
    if op in ("<", "<=", ">", ">="):
        if both_const:
            try:
                folded = _compare(op, left_const, right_const)
            except QueryError:
                pass  # raise at evaluation time, like the interpreter
            else:
                return (lambda rt, env: folded), folded

        def run_cmp(rt, env):
            return _compare(op, left(rt, env), right(rt, env))

        return run_cmp, _NOT_CONST
    if op in ("+", "-", "*", "/"):
        if both_const:
            try:
                folded = _arith(op, left_const, right_const)
            except QueryError:
                pass
            else:
                return (lambda rt, env: folded), folded

        def run_arith(rt, env):
            return _arith(op, left(rt, env), right(rt, env))

        return run_arith, _NOT_CONST
    raise QueryError(f"unknown operator: {op!r}")


def _compile_in_class(expr: InClass) -> Callable:
    operand = _compile(expr.operand)[0]
    class_name = expr.class_name
    if expr.class_args:
        args = [_compile(arg)[0] for arg in expr.class_args]

        def run_in_family(rt, env):
            oid = _as_oid(operand(rt, env))
            if oid is None:
                return False
            scope = rt.scope
            values = tuple(unwrap(fn(rt, env)) for fn in args)
            instantiate = getattr(scope, "instantiate_family", None)
            if instantiate is None:
                raise QueryError(
                    "scope does not support parameterized classes"
                )
            return oid in instantiate(class_name, values)

        return run_in_family

    def run_in_class(rt, env):
        oid = _as_oid(operand(rt, env))
        if oid is None:
            return False
        return rt.scope.is_member(oid, class_name)

    return run_in_class


def _compile_in_query(expr: InQuery) -> Callable:
    operand = _compile(expr.operand)[0]
    subquery = compile_select(expr.query)
    key = id(expr)
    if not free_variables(expr.query):
        # Loop-invariant: evaluate once per execution, answer later
        # membership tests from the canonical set.
        def run_in_closed(rt, env):
            value = operand(rt, env)
            cached = rt.memo.get(key)
            if cached is None:
                result = subquery(rt, env)
                canon = {canonicalize(unwrap(item)) for item in result}
                cached = rt.memo[key] = _CachedResult(result, canon)
            return _contains(cached, value)

        return run_in_closed

    def run_in_query(rt, env):
        value = operand(rt, env)
        return _contains(subquery(rt, env), value)

    return run_in_query


def _compile_query_expr(expr: QueryExpr) -> Callable:
    subquery = compile_select(expr.query)
    if not free_variables(expr.query):
        key = id(expr)

        def run_closed(rt, env):
            cached = rt.memo.get(key)
            if cached is None:
                cached = rt.memo[key] = subquery(rt, env)
            return cached

        return run_closed

    return subquery


def compile_test(expr: Expr) -> Callable:
    """Compile an expression for a boolean context (``where``).

    The returned closure yields a plain ``bool``, raising
    :class:`QueryError` exactly where the interpreter's ``_truthy``
    would.
    """
    fn, const = _compile(expr)
    if const is not _NOT_CONST:
        try:
            folded = _truthy(const)
        except QueryError:
            pass
        else:
            return (lambda rt, env: True) if folded else (
                lambda rt, env: False
            )
    if isinstance(expr, (Not, InClass, InExpr, InQuery)) or (
        isinstance(expr, Binary) and expr.op in _BOOL_OPS
    ):
        return fn  # already produces a bool

    def run_test(rt, env):
        return _truthy(fn(rt, env))

    return run_test


def compile_expression(expr: Expr) -> Callable:
    """Compile a bare expression to a closure ``fn(rt, env)``."""
    return _compile(expr)[0]


# ----------------------------------------------------------------------
# Sources and selects
# ----------------------------------------------------------------------


def _compile_source(source: Source) -> Callable:
    """Lower a binding source to ``fn(rt, env) -> list of values``."""
    if isinstance(source, ClassSource):
        class_name = source.class_name
        if source.arguments:
            args = [_compile(arg)[0] for arg in source.arguments]

            def iterate_family(rt, env):
                scope = rt.scope
                values = tuple(unwrap(fn(rt, env)) for fn in args)
                instantiate = getattr(scope, "instantiate_family", None)
                if instantiate is None:
                    raise QueryError(
                        f"scope"
                        f" {getattr(scope, 'scope_name', scope)!r} does"
                        " not support parameterized classes"
                    )
                get = scope.get
                return [get(oid) for oid in instantiate(class_name, values)]

            return iterate_family

        def iterate_class(rt, env):
            scope = rt.scope
            get = scope.get
            return [get(oid) for oid in scope.extent(class_name)]

        return iterate_class
    if isinstance(source, QuerySource):
        subquery = compile_select(source.query)
        closed = not free_variables(source.query)
        key = id(source)

        def iterate_query(rt, env):
            if closed:
                cached = rt.memo.get(key)
                if cached is not None:
                    return cached
            result = subquery(rt, env)
            items = result if isinstance(result, list) else [result]
            if closed:
                rt.memo[key] = items
            return items

        return iterate_query
    if isinstance(source, ExprSource):
        fn = _compile(source.expression)[0]

        def iterate_expr(rt, env):
            return _as_collection(fn(rt, env))

        return iterate_expr
    raise QueryError(f"unknown source node: {source!r}")


def compile_select(select: Select) -> Callable:
    """Lower a ``Select`` to ``fn(rt, outer_env) -> result``.

    The closure copies ``outer_env`` once per execution (not per row),
    so nested subqueries cannot clobber an enclosing query's bindings
    while the hot loop mutates a single dict in place.
    """
    project = _compile(select.projection)[0]
    where = compile_test(select.where) if select.where is not None else None
    binders = [
        (binding.variable, _compile_source(binding.source))
        for binding in select.bindings
    ]
    unique = select.unique

    if len(binders) == 1:
        variable, iterate = binders[0]

        def run_single(rt, outer_env):
            env = dict(outer_env) if outer_env else {}
            results = []
            seen = set()
            add_result = results.append
            mark_seen = seen.add
            for value in iterate(rt, env):
                env[variable] = value
                if where is not None and not where(rt, env):
                    continue
                projected = project(rt, env)
                key = canonicalize(unwrap(projected))
                if key in seen:
                    continue
                mark_seen(key)
                add_result(projected)
            if unique:
                if len(results) != 1:
                    raise NonUniqueResultError(len(results))
                return results[0]
            return results

        return run_single

    def run_select(rt, outer_env):
        env = dict(outer_env) if outer_env else {}
        results = []
        seen = set()

        def loop(index):
            if index == len(binders):
                if where is not None and not where(rt, env):
                    return
                projected = project(rt, env)
                key = canonicalize(unwrap(projected))
                if key in seen:
                    return
                seen.add(key)
                results.append(projected)
                return
            variable, iterate = binders[index]
            for value in iterate(rt, env):
                env[variable] = value
                loop(index + 1)

        loop(0)
        if unique:
            if len(results) != 1:
                raise NonUniqueResultError(len(results))
            return results[0]
        return results

    return run_select


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


class CompiledQuery:
    """A ``Select`` lowered to closures, ready to run repeatedly."""

    __slots__ = ("select", "_run")

    def __init__(self, select: Select):
        self.select = ensure_query(select)
        self._run = compile_select(self.select)

    def run(
        self,
        scope,
        bindings: Optional[Dict[str, object]] = None,
        functions: Optional[Dict[str, object]] = None,
        self_value=None,
    ):
        rt = Runtime(scope, functions, self_value)
        return self._run(rt, bindings)


def compile_query(query) -> CompiledQuery:
    """Compile a query (AST, builder or source text) to closures."""
    return CompiledQuery(ensure_query(query))
