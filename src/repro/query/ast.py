"""Abstract syntax of the query dialect.

The dialect is the paper's ``select … from … where …`` language (after
the O₂ query language [4] it borrows from). All nodes are immutable
dataclasses; a query is a :class:`Select`.

Notable productions used in the paper and supported here:

- ``select P from Person where P.Age >= 21`` — implicit binding of the
  projection variable to the source;
- ``select A in Adult where …`` — the ``in`` binding form (Example 2);
- ``select [Husband: H, Wife: H.Spouse] from H in Person …`` — tuple
  projections (imaginary classes, §5);
- ``select the A in Address where …`` — uniqueness (Example 5);
- ``… where P in Beautiful`` — class membership predicates, which the
  hierarchy inference mines for superclasses (``Rich&Beautiful``);
- ``Resident(X)`` — parameterized class sources (§4.2);
- ``gsd(self)`` — calls to registered functions (Example 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class Node:
    """Base class of all AST nodes."""

    __slots__ = ()


class Expr(Node):
    """Base class of expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: string, integer, real, or boolean."""

    value: object


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference (query variable or view parameter)."""

    name: str


@dataclass(frozen=True)
class SelfExpr(Expr):
    """The receiver of a virtual attribute (``self``)."""


@dataclass(frozen=True)
class Path(Expr):
    """Attribute navigation: ``base.A1.A2...`` (dereference + select)."""

    base: Expr
    attributes: Tuple[str, ...]


@dataclass(frozen=True)
class TupleExpr(Expr):
    """A tuple constructor ``[Name: expr, ...]``."""

    fields: Tuple[Tuple[str, "Expr"], ...]

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)


@dataclass(frozen=True)
class SetExpr(Expr):
    """A set literal ``{e1, e2, ...}``."""

    elements: Tuple[Expr, ...]


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operation.

    ``op`` is one of ``= != < <= > >= + - * / and or``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class InClass(Expr):
    """Membership in a (possibly virtual) class: ``P in Beautiful``."""

    operand: Expr
    class_name: str
    class_args: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class InExpr(Expr):
    """Membership in a computed collection: ``P in self.Children``."""

    operand: Expr
    container: Expr


@dataclass(frozen=True)
class InQuery(Expr):
    """Membership in a subquery's result: ``F in (select ...)``."""

    operand: Expr
    query: "Select"


@dataclass(frozen=True)
class QueryExpr(Expr):
    """A subquery in expression position (e.g. a virtual attribute body
    that is a select, as in the ``Children`` attribute of ``Family``)."""

    query: "Select"


@dataclass(frozen=True)
class Call(Expr):
    """A call to a registered function: ``gsd(self)``."""

    function: str
    arguments: Tuple[Expr, ...]


class Source(Node):
    """What a query variable ranges over."""

    __slots__ = ()


@dataclass(frozen=True)
class ClassSource(Source):
    """A class extent, optionally a parameterized class instance."""

    class_name: str
    arguments: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class QuerySource(Source):
    """A nested query."""

    query: "Select"


@dataclass(frozen=True)
class ExprSource(Source):
    """An expression evaluating to a collection (``self.Children``)."""

    expression: Expr


@dataclass(frozen=True)
class Binding(Node):
    """One ``var in source`` binding of a select."""

    variable: str
    source: Source


@dataclass(frozen=True)
class Select(Node):
    """A select query.

    Attributes:
        projection: The expression computed for each binding of the
            variables that satisfies ``where``.
        bindings: The variable bindings, evaluated left-to-right (later
            bindings may reference earlier variables).
        where: Optional filter.
        unique: ``select the`` — the result must be a single value.
    """

    projection: Expr
    bindings: Tuple[Binding, ...]
    where: Optional[Expr] = None
    unique: bool = False


def walk(node: Node):
    """Yield ``node`` and all nodes beneath it (pre-order)."""
    yield node
    if isinstance(node, Path):
        yield from walk(node.base)
    elif isinstance(node, TupleExpr):
        for _, expr in node.fields:
            yield from walk(expr)
    elif isinstance(node, SetExpr):
        for expr in node.elements:
            yield from walk(expr)
    elif isinstance(node, Binary):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, Not):
        yield from walk(node.operand)
    elif isinstance(node, InClass):
        yield from walk(node.operand)
        for arg in node.class_args:
            yield from walk(arg)
    elif isinstance(node, InExpr):
        yield from walk(node.operand)
        yield from walk(node.container)
    elif isinstance(node, InQuery):
        yield from walk(node.operand)
        yield from walk(node.query)
    elif isinstance(node, Call):
        for arg in node.arguments:
            yield from walk(arg)
    elif isinstance(node, QueryExpr):
        yield from walk(node.query)
    elif isinstance(node, ClassSource):
        for arg in node.arguments:
            yield from walk(arg)
    elif isinstance(node, QuerySource):
        yield from walk(node.query)
    elif isinstance(node, ExprSource):
        yield from walk(node.expression)
    elif isinstance(node, Binding):
        yield from walk(node.source)
    elif isinstance(node, Select):
        yield from walk(node.projection)
        for binding in node.bindings:
            yield from walk(binding)
        if node.where is not None:
            yield from walk(node.where)


def free_variables(node: Node) -> set:
    """Names of :class:`Var` nodes not bound by an enclosing select."""
    if isinstance(node, Var):
        return {node.name}
    if isinstance(node, Select):
        free = free_variables(node.projection)
        if node.where is not None:
            free |= free_variables(node.where)
        for binding in node.bindings:
            free |= free_variables(binding.source)
        return free - {b.variable for b in node.bindings}
    if isinstance(node, Path):
        return free_variables(node.base)
    if isinstance(node, TupleExpr):
        return set().union(
            *(free_variables(expr) for _, expr in node.fields)
        ) if node.fields else set()
    if isinstance(node, SetExpr):
        return set().union(
            *(free_variables(expr) for expr in node.elements)
        ) if node.elements else set()
    if isinstance(node, Binary):
        return free_variables(node.left) | free_variables(node.right)
    if isinstance(node, Not):
        return free_variables(node.operand)
    if isinstance(node, InClass):
        free = free_variables(node.operand)
        for arg in node.class_args:
            free |= free_variables(arg)
        return free
    if isinstance(node, InExpr):
        return free_variables(node.operand) | free_variables(node.container)
    if isinstance(node, InQuery):
        return free_variables(node.operand) | free_variables(node.query)
    if isinstance(node, Call):
        return set().union(
            *(free_variables(arg) for arg in node.arguments)
        ) if node.arguments else set()
    if isinstance(node, QueryExpr):
        return free_variables(node.query)
    if isinstance(node, ClassSource):
        return set().union(
            *(free_variables(arg) for arg in node.arguments)
        ) if node.arguments else set()
    if isinstance(node, QuerySource):
        return free_variables(node.query)
    if isinstance(node, ExprSource):
        return free_variables(node.expression)
    if isinstance(node, Binding):
        return free_variables(node.source)
    return set()
