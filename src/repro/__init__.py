"""repro — a reproduction of "Objects and Views" (Abiteboul & Bonner,
SIGMOD 1991).

An object-oriented database view mechanism:

- :mod:`repro.engine` — the O₂-style OODB substrate (classes, types,
  objects, extents, events, indexes);
- :mod:`repro.query` — the ``select … from … where …`` query dialect
  with static type inference;
- :mod:`repro.core` — the paper's contribution: views with import/hide,
  virtual attributes, virtual classes (specialization, generalization,
  behavioral ``like``), parameterized class families, inferred
  hierarchy placement, upward inheritance, schizophrenia policies, and
  imaginary objects with stable identity;
- :mod:`repro.lang` — the view-definition language (the paper's DDL);
- :mod:`repro.storage` — ZODB-like persistence (codec, append-only
  stores, journaling, transactions);
- :mod:`repro.relational` — a relational substrate and the
  relational→object bridge;
- :mod:`repro.workloads` — deterministic synthetic data.

Quickstart::

    from repro import Database, View

    db = Database("Staff")
    db.define_class("Person", attributes={"Name": "string",
                                          "Age": "integer"})
    db.create("Person", Name="Maggy", Age=65)

    view = View("My_View")
    view.import_database(db)
    view.define_virtual_class(
        "Adult", includes=["select P from Person where P.Age >= 21"])
    adults = view.handles("Adult")
"""

from .engine import Database, declare_atom
from .core import (
    ConflictPolicy,
    View,
    imaginary,
    like,
    predicate,
)
from .errors import ReproError
from .lang import Catalog, run_script
from .query import evaluate, parse_query, select, var

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "ConflictPolicy",
    "Database",
    "ReproError",
    "View",
    "__version__",
    "declare_atom",
    "evaluate",
    "imaginary",
    "like",
    "parse_query",
    "predicate",
    "run_script",
    "select",
    "var",
]
