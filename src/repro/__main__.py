"""``python -m repro`` — the interactive shell."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
