"""Imaginary classes: virtual classes populated by *new* objects.

§5 of the paper. The population of an imaginary class is given by a
query returning tuples; the system attaches a fresh oid to each tuple.
The crux (§5.1) is identity stability:

    "For each tuple t returned by the query, we use the expression C(t)
    to denote the oid assigned to t. From an implementation point of
    view, there could be a table giving the mapping between the tuples
    and oid's. In this way, we are guaranteed that the same tuple will
    be assigned the same oid each time the class C is invoked."

:class:`ImaginaryClass` implements exactly that table, keyed on the
canonical form of the tuple. Consequences faithfully reproduced:

- repeated queries, joins and intersections over the class agree (the
  paper's two "seemingly equivalent" Family queries);
- a different class assigns different oids to the same tuple (each
  imaginary class allocates from its own oid space);
- updating a **core attribute** changes the tuple, hence the oid — the
  object's identity (Example 6's poorly designed ``Client`` view);
  old oids remain dereferenceable "in other parts of the view";
- **virtual attributes** added to the class do not affect identity.

Churn counters (`fresh_count`, `vanished_count`) make the identity
behaviour measurable — experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..engine.oid import EMPTY_OID_SET, Oid, OidGenerator, OidSet
from ..engine.objects import TupleValue, unwrap
from ..engine.schema import AttributeDef, AttributeKind
from ..engine.tracking import (
    ACTIVE_TRACKERS,
    DependencyTracker,
    FrozenDependencySet,
    replay_dependencies,
)
from ..engine.types import TupleType
from ..engine.values import canonicalize
from ..errors import ImaginaryObjectError, UnknownOidError
from ..query.ast import Select
from ..query.planner import execute as plan_execute
from ..query.typecheck import TypeEnvironment, infer_element_type


@dataclass(frozen=True)
class MergeRecord:
    """Footnote 1: several old objects matched one new tuple by key.

    ``survivors`` lists the candidate oids; ``chosen`` absorbed the new
    tuple (the others' identities lapse — an observed object merge).
    """

    candidates: Tuple[Oid, ...]
    chosen: Oid
    key: object


class ImaginaryClass:
    """The identity table and population of one imaginary class."""

    def __init__(self, view, name: str, query: Select):
        self._view = view
        self._name = name
        self._query = query
        self._space = f"{view.scope_name}/{name}"
        self._oids = OidGenerator(self._space)
        self._by_tuple: Dict[object, Oid] = {}
        self._values: Dict[Oid, Dict[str, object]] = {}
        self._current: Set[Oid] = set()
        # What the last refresh read, and the version snapshot over it;
        # the population is re-evaluated only when a dependency moved.
        self._refresh_deps: Optional[FrozenDependencySet] = None
        self._refresh_snapshot: Optional[tuple] = None
        # Footnote 1 ("more sophisticated approaches in which an object
        # preserves its identity when its core attributes change"):
        # when set, tuples are matched to vanished predecessors by this
        # subset of core attributes.
        self._identity_keys: Optional[Tuple[str, ...]] = None
        # Statistics for experiment E9 (core-attribute design).
        self.refresh_count = 0
        self.fresh_count = 0
        self.vanished_count = 0
        self.preserved_count = 0
        self.merge_log: List[MergeRecord] = []

    @property
    def name(self) -> str:
        return self._name

    @property
    def space(self) -> str:
        return self._space

    @property
    def query(self) -> Select:
        return self._query

    # ------------------------------------------------------------------
    # Core attributes
    # ------------------------------------------------------------------

    def core_attributes(self) -> Dict[str, AttributeDef]:
        """The attributes of the defining tuples, with inferred types.

        Static inference is attempted first (the paper: "by static type
        inference, it declares that class Family has two attributes");
        if it fails, the attribute names are derived from an actual
        refresh and left untyped.
        """
        element = self._static_element_type()
        if isinstance(element, TupleType):
            return {
                name: AttributeDef(
                    name,
                    ftype,
                    AttributeKind.STORED,
                    None,
                    0,
                    self._name,
                )
                for name, ftype in element.fields
            }
        names: Set[str] = set()
        for value in self._values.values():
            names.update(value)
        if not names:
            for value in self._evaluate():
                names.update(value)
        return {
            name: AttributeDef(
                name, None, AttributeKind.STORED, None, 0, self._name
            )
            for name in sorted(names)
        }

    def _static_element_type(self):
        try:
            tenv = TypeEnvironment(self._view)
            return infer_element_type(self._query, tenv)
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def population(self) -> OidSet:
        """The current population, refreshing if a dependency moved."""
        view = self._view
        snapshot_of = getattr(view, "dependency_snapshot", None)
        if snapshot_of is not None and self._refresh_deps is not None:
            if snapshot_of(self._refresh_deps) == self._refresh_snapshot:
                view.stats.record_hit()
                if ACTIVE_TRACKERS:
                    replay_dependencies(self._refresh_deps)
                if not self._current:
                    return EMPTY_OID_SET
                return OidSet.of(self._current)
        self._refresh_with_guard()
        if not self._current:
            return EMPTY_OID_SET
        return OidSet.of(self._current)

    def _refresh_with_guard(self) -> bool:
        """Refresh, participating in the view's population-recursion
        protocol (see :meth:`VirtualClass.population`). Returns True
        when the refresh ran in a tainted (cycle-truncated) window and
        must not be treated as up to date."""
        view = self._view
        snapshot_of = getattr(view, "dependency_snapshot", None)

        def tracked_refresh() -> None:
            if snapshot_of is None:
                self.refresh()
                return
            tracker = DependencyTracker()
            with tracker:
                self.refresh()
            deps = tracker.deps.frozen()
            self._refresh_deps = deps
            self._refresh_snapshot = snapshot_of(deps)
            view.stats.record_full_recompute()

        stack = getattr(view, "_population_stack", None)
        if stack is None:
            tracked_refresh()
            return False
        taint = view._population_taint
        marker = f"~{self._name}"
        if marker in stack:
            taint.update(range(stack.index(marker) + 1, len(stack)))
            return True
        frame = len(stack)
        stack.append(marker)
        try:
            tracked_refresh()
        finally:
            tainted = frame in taint
            taint.discard(frame)
            stack.pop()
        if tainted:
            # The refresh consumed a cycle-truncated population; do not
            # treat it as up to date.
            self._refresh_deps = None
            self._refresh_snapshot = None
        return tainted

    def preserve_identity_on(self, keys) -> None:
        """Enable footnote-1 identity preservation.

        ``keys`` is a subset of the core attributes treated as the
        object's *essence*: a new tuple that matches a vanished tuple
        on all keys inherits its oid instead of minting a fresh one
        (so e.g. a ``Client`` keyed on ``SS#`` survives an address
        change even though ``Address`` is a core attribute). When
        several vanished objects match one new tuple the candidates are
        *merged* deterministically and the event is recorded in
        :attr:`merge_log` — exactly the complication the footnote
        predicts.
        """
        self._identity_keys = tuple(keys)

    @property
    def identity_keys(self) -> Optional[Tuple[str, ...]]:
        return self._identity_keys

    def refresh(self) -> OidSet:
        """Re-evaluate the defining query and update the identity table.

        Tuples seen before keep their oid; new tuples get fresh oids
        (or, under :meth:`preserve_identity_on`, inherit a vanished
        predecessor's oid by key match); tuples that disappeared leave
        the population but stay in the table (their oids remain
        dereferenceable, and are re-used should the same tuple
        reappear).
        """
        self.refresh_count += 1
        new_tuples = self._evaluate()
        current: Set[Oid] = set()
        old_by_key = None
        if self._identity_keys is not None:
            new_full_keys = {canonicalize(v) for v in new_tuples}
            old_by_key = {}
            for oid in self._current:
                value = self._values[oid]
                if canonicalize(value) in new_full_keys:
                    continue  # this object's tuple still exists
                old_by_key.setdefault(
                    self._key_of(value), []
                ).append(oid)
        for value in new_tuples:
            full_key = canonicalize(value)
            oid = self._by_tuple.get(full_key)
            if oid is None and old_by_key is not None:
                oid = self._adopt_predecessor(value, full_key, old_by_key)
            if oid is None:
                oid = self._oids.fresh()
                self._by_tuple[full_key] = oid
                self._values[oid] = dict(value)
                self.fresh_count += 1
            current.add(oid)
        self.vanished_count += len(self._current - current)
        self._current = current
        if not current:
            return EMPTY_OID_SET
        return OidSet.of(current)

    def _key_of(self, value: Dict[str, object]):
        assert self._identity_keys is not None
        return canonicalize(
            {k: value.get(k) for k in self._identity_keys}
        )

    def _adopt_predecessor(self, value, full_key, old_by_key) -> Optional[Oid]:
        """Key-match a new tuple to a vanished object, migrating the
        identity table entry (and recording merges)."""
        key = self._key_of(value)
        candidates = old_by_key.get(key)
        if not candidates:
            return None
        chosen = min(candidates)
        if len(candidates) > 1:
            self.merge_log.append(
                MergeRecord(tuple(sorted(candidates)), chosen, key)
            )
        candidates.remove(chosen)
        # Migrate: the old exact-tuple alias must go, or a reappearance
        # of the old tuple would collide with the new identity.
        old_value = self._values[chosen]
        self._by_tuple.pop(canonicalize(old_value), None)
        self._values[chosen] = dict(value)
        self._by_tuple[full_key] = chosen
        self.preserved_count += 1
        return chosen

    def _evaluate(self) -> List[Dict[str, object]]:
        with self._view.internal_evaluation():
            results = plan_execute(self._query, self._view)
        if not isinstance(results, list):
            results = [results]
        tuples: List[Dict[str, object]] = []
        for result in results:
            value = unwrap(result)
            if not isinstance(value, dict):
                raise ImaginaryObjectError(
                    f"imaginary class {self._name!r}: the defining query"
                    f" must return tuples, got {type(value).__name__}"
                )
            tuples.append(value)
        return tuples

    # ------------------------------------------------------------------
    # Object service (the view delegates here for our oid space)
    # ------------------------------------------------------------------

    def contains(self, oid: Oid) -> bool:
        self.population()
        return oid in self._current

    def ever_issued(self, oid: Oid) -> bool:
        return oid in self._values

    def value(self, oid: Oid) -> Dict[str, object]:
        value = self._values.get(oid)
        if value is None:
            raise UnknownOidError(oid)
        return value

    def oid_for(self, tuple_value) -> Optional[Oid]:
        """The oid the table has assigned to a tuple (None if never
        seen). ``C(t)`` in the paper's notation."""
        if isinstance(tuple_value, TupleValue):
            tuple_value = tuple_value.as_dict()
        self.population()
        return self._by_tuple.get(canonicalize(unwrap(tuple_value)))

    def table_size(self) -> int:
        return len(self._by_tuple)
