"""Upward inheritance: attributes a virtual class acquires from its
members.

§4.3 of the paper: if a virtual class C includes classes C1…Ck and
objects selected from Ck+1…Cn, and *every* Ci has an attribute A whose
types have a least upper bound τ, then C has attribute A of type τ.
(The classic example: ``Merchant_Vessel`` acquires ``Cargo`` because
both ``Tanker`` and ``Trawler`` have it.)

Acquired attributes are schema-level facts — they give the virtual
class a richer type, visible to queries and further ``like`` matching —
but they never resolve a concrete access: each member object's own
class already defines the attribute, and per-object resolution finds
that definition. They are therefore flagged ``acquired=True`` and
skipped by the resolver.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..engine.schema import AttributeDef, AttributeKind, Schema
from ..engine.types import Type, lub
from ..errors import NoLeastUpperBoundError
from ..query.analysis import guaranteed_classes
from .population import (
    ClassMember,
    ImaginaryMember,
    LikeMember,
    Member,
    PredicateMember,
    QueryMember,
)

AttrMap = Dict[str, AttributeDef]


def acquired_attributes(
    schema: Schema,
    class_name: str,
    members: Sequence[Member],
    like_matches: Callable[[str], Sequence[str]],
    imaginary_attrs: Optional[AttrMap] = None,
) -> AttrMap:
    """Attributes common to every population member, typed at the LUB.

    ``imaginary_attrs`` supplies the core-attribute map used for
    imaginary members (computed by the imaginary-class machinery from
    the defining query's type).
    """
    maps: List[Optional[AttrMap]] = []
    for member in members:
        maps.append(
            _member_attributes(schema, member, like_matches, imaginary_attrs)
        )
    constraining = [m for m in maps if m is not None]
    if not constraining:
        return {}
    common_names = set(constraining[0])
    for attr_map in constraining[1:]:
        common_names &= set(attr_map)
    acquired: AttrMap = {}
    for name in sorted(common_names):
        defs = [attr_map[name] for attr_map in constraining]
        declared = _lub_type(schema, [d.declared_type for d in defs])
        if declared is _NO_LUB:
            # §4.3: no least upper bound ⇒ the attribute is undefined
            # in the virtual class.
            continue
        acquired[name] = AttributeDef(
            name,
            declared,
            AttributeKind.STORED,
            None,
            0,
            class_name,
            acquired=True,
        )
    return acquired


_NO_LUB = object()


def _lub_type(schema: Schema, types: List[Optional[Type]]):
    """LUB of the member types; ``None`` (untyped) when any is unknown,
    the ``_NO_LUB`` sentinel when the LUB does not exist."""
    if any(t is None for t in types):
        return None
    result = types[0]
    for t in types[1:]:
        try:
            result = lub(result, t, schema)
        except NoLeastUpperBoundError:
            return _NO_LUB
    return result


def _member_attributes(
    schema: Schema,
    member: Member,
    like_matches: Callable[[str], Sequence[str]],
    imaginary_attrs: Optional[AttrMap],
) -> Optional[AttrMap]:
    """The attributes every object contributed by ``member`` carries.

    ``None`` means the member contributes no objects right now and must
    not constrain the intersection (e.g. a ``like`` spec with no
    matches yet).
    """
    if isinstance(member, ClassMember):
        return dict(schema.attributes_of(member.class_name))
    if isinstance(member, PredicateMember):
        return dict(schema.attributes_of(member.source_class))
    if isinstance(member, QueryMember):
        guaranteed = [
            g for g in guaranteed_classes(member.query) if g in schema
        ]
        if not guaranteed:
            return {}
        # The selected objects belong to *all* guaranteed classes, so
        # the union of their attributes is available on each object.
        merged: AttrMap = {}
        for class_name in guaranteed:
            for name, adef in schema.attributes_of(class_name).items():
                existing = merged.get(name)
                if existing is None or schema.isa(
                    adef.origin, existing.origin
                ):
                    merged[name] = adef
        return merged
    if isinstance(member, LikeMember):
        matches = list(like_matches(member.spec_class))
        if not matches:
            return None
        common: Optional[AttrMap] = None
        for match in matches:
            attrs = dict(schema.attributes_of(match))
            if common is None:
                common = attrs
            else:
                common = {
                    name: common[name]
                    for name in common
                    if name in attrs
                }
        return common or {}
    if isinstance(member, ImaginaryMember):
        return dict(imaginary_attrs or {})
    raise TypeError(f"unknown member kind: {member!r}")
