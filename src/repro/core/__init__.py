"""The paper's contribution: the object-oriented view mechanism.

Public surface:

- :class:`View` — import/hide, virtual attributes, virtual classes,
  imaginary classes, parameterized families, conflict policies;
- population spec helpers :func:`like`, :func:`predicate`,
  :func:`imaginary`;
- :class:`ConflictPolicy` for schizophrenia handling;
- :class:`MaterializedClass` for maintained populations.
"""

from .hiding import HideSet
from .hierarchy import Placement, apply_placement, infer_placement
from .imaginary import ImaginaryClass, MergeRecord
from .updates import update_through_view
from .materialize import MaintenanceStats, MaterializedClass
from .parameterized import ClassFamily
from .population import (
    ClassMember,
    ImaginaryMember,
    LikeMember,
    Member,
    PredicateMember,
    QueryMember,
    imaginary,
    like,
    normalize_includes,
    predicate,
)
from .resolution import (
    ConflictPolicy,
    ConflictRecord,
    ResolutionStats,
    Resolver,
)
from .stats import ViewStats
from .upward import acquired_attributes
from .view import View
from .virtual_classes import VirtualClass

__all__ = [
    "ClassFamily",
    "ClassMember",
    "ConflictPolicy",
    "ConflictRecord",
    "HideSet",
    "ImaginaryClass",
    "ImaginaryMember",
    "LikeMember",
    "MaintenanceStats",
    "MaterializedClass",
    "Member",
    "MergeRecord",
    "Placement",
    "PredicateMember",
    "QueryMember",
    "ResolutionStats",
    "Resolver",
    "View",
    "ViewStats",
    "VirtualClass",
    "acquired_attributes",
    "apply_placement",
    "imaginary",
    "infer_placement",
    "like",
    "normalize_includes",
    "predicate",
    "update_through_view",
]
