"""Inference of a virtual class's position in the hierarchy.

§4.2 of the paper gives two rules. If a virtual class C includes whole
classes C1…Ck and objects selected from classes Ck+1…Cn:

1. if D is a superclass of C1…Cn, then D is a superclass of C;
2. each Ci (i ≤ k) is a subclass of C.

This module computes the consequences: the *parents* of the virtual
class (the minimal common superclasses of all members — several
incomparable minima introduce multiple inheritance, the
``Rich&Beautiful`` example) and its *children* (the whole classes it
includes, which is how virtual classes get inserted into the middle of
the hierarchy, e.g. ``Merchant_Vessel`` between ``Ship`` and
``Tanker``).

For whole-class members the common superclasses are *strict* ancestors
(``Merchant_Vessel includes Tanker`` must not make ``Tanker`` a parent
of ``Merchant_Vessel`` — it becomes a child); for query members the
guaranteed classes themselves count (``Adult`` selected from ``Person``
makes ``Person`` the parent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..engine.schema import Schema
from ..errors import HierarchyCycleError
from ..query.analysis import guaranteed_classes
from .population import (
    ClassMember,
    ImaginaryMember,
    LikeMember,
    Member,
    PredicateMember,
    QueryMember,
)


@dataclass(frozen=True)
class Placement:
    """The inferred position of a virtual class."""

    parents: tuple
    children: tuple


def infer_placement(
    schema: Schema,
    members: Sequence[Member],
    like_matches,
) -> Placement:
    """Compute the inferred parents and children of a virtual class.

    Args:
        schema: The view's schema (member classes must be defined).
        members: The normalized population members.
        like_matches: Callable mapping a spec class name to the list of
            classes currently matching ``like spec`` (supplied by the
            view, which owns behavioral matching).
    """
    guarantee_sets: List[Optional[Set[str]]] = []
    children: List[str] = []
    for member in members:
        if isinstance(member, ClassMember):
            schema.require(member.class_name)
            children.append(member.class_name)
            guarantee_sets.append(set(schema.ancestors(member.class_name)))
        elif isinstance(member, QueryMember):
            guaranteed = guaranteed_classes(member.query)
            closure: Set[str] = set()
            for name in guaranteed:
                if name in schema:
                    closure.add(name)
                    closure.update(schema.ancestors(name))
            guarantee_sets.append(closure)
        elif isinstance(member, PredicateMember):
            schema.require(member.source_class)
            closure = {member.source_class}
            closure.update(schema.ancestors(member.source_class))
            guarantee_sets.append(closure)
        elif isinstance(member, LikeMember):
            matches = list(like_matches(member.spec_class))
            for match in matches:
                if match not in children:
                    children.append(match)
            if matches:
                common: Optional[Set[str]] = None
                for match in matches:
                    closure = set(schema.ancestors(match))
                    common = closure if common is None else common & closure
                guarantee_sets.append(common or set())
            else:
                # No matching class yet: nothing can be guaranteed, and
                # nothing should constrain the intersection either.
                guarantee_sets.append(None)
        elif isinstance(member, ImaginaryMember):
            # Imaginary objects are brand new: no existing class
            # contains them, so the class gets no inferred parents.
            guarantee_sets.append(set())
        else:
            raise TypeError(f"unknown member kind: {member!r}")

    constraining = [s for s in guarantee_sets if s is not None]
    if constraining:
        common = set(constraining[0])
        for s in constraining[1:]:
            common &= s
    else:
        common = set()
    # Children (and their descendants) cannot be parents.
    excluded = set(children)
    for child in children:
        excluded.update(schema.descendants(child))
    common -= excluded
    parents = _minimal(schema, common)
    return Placement(tuple(parents), tuple(dict.fromkeys(children)))


def _minimal(schema: Schema, classes: Set[str]) -> List[str]:
    """The most specific elements of a set of classes."""
    return sorted(
        c
        for c in classes
        if not any(
            other != c and schema.isa(other, c) for other in classes
        )
    )


def apply_placement(
    schema: Schema, class_name: str, placement: Placement
) -> Placement:
    """Install the inferred edges in the schema.

    Child edges are installed first; a parent edge that would create a
    cycle (a class included both as a whole member and as the source of
    a selection) is skipped — generalization wins.
    """
    applied_children = []
    for child in placement.children:
        try:
            schema.add_parent(child, class_name)
            applied_children.append(child)
        except HierarchyCycleError:
            continue
    applied_parents = []
    for parent in placement.parents:
        try:
            schema.add_parent(class_name, parent)
            applied_parents.append(parent)
        except HierarchyCycleError:
            continue
    return Placement(tuple(applied_parents), tuple(applied_children))
