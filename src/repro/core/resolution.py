"""Attribute (method) resolution in views, including *schizophrenia*.

§4.2–4.3 of the paper: under the view mechanism the classical *upward
resolution* rule breaks — an object selected into a virtual class may
receive behavior from classes that are not superclasses of its real
class. Resolution must therefore consider **every class the object
belongs to in the view**. When two incomparable classes both define the
attribute, the object "doesn't know which personality to choose" — the
paper calls this **schizophrenia** and prescribes that a view system
"should not strictly disallow schizophrenia, but should provide a
default instead".

Policies provided:

- ``DEFAULT`` — deterministic choice (alphabetically first among the
  most specific candidates); every conflict is recorded in the
  conflict log, so "a meaningless default" is at least an observable
  one;
- ``PRIORITY`` — an explicit, user-supplied class priority list (the
  paper mentions "explicitly assigning levels of priority");
- ``ERROR`` — refuse, raising :class:`SchizophreniaError` (the paper's
  "forbidding schemas with conflicts").

Explicit conflict resolution by *overlap classes* (``Rich&Beautiful``)
needs no special machinery: an overlap class that redefines the
attribute is more specific than both conflicting classes, so the
most-specific filter selects it before any policy applies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine.oid import Oid
from ..engine.schema import AttributeDef
from ..engine.tracking import (
    ACTIVE_TRACKERS,
    DependencyTracker,
    FrozenDependencySet,
    record_attribute_read,
    record_extent_read,
    replay_dependencies,
)
from ..errors import (
    HiddenAttributeError,
    SchizophreniaError,
    UnknownAttributeError,
)


class ConflictPolicy(enum.Enum):
    DEFAULT = "default"
    PRIORITY = "priority"
    ERROR = "error"


@dataclass
class ConflictRecord:
    """One observed schizophrenia incident."""

    oid: Oid
    attribute: str
    candidates: Tuple[str, ...]
    chosen: str


@dataclass
class ResolutionStats:
    """Counters for benchmarking resolution behaviour (E10)."""

    resolutions: int = 0
    conflicts: int = 0
    membership_tests: int = 0


class Resolver:
    """Resolves attribute definitions for objects within one view."""

    def __init__(self, view, policy: ConflictPolicy = ConflictPolicy.DEFAULT):
        self._view = view
        self._policy = policy
        self._priority: List[str] = []
        self._attribute_priority: Dict[str, List[str]] = {}
        self.conflict_log: List[ConflictRecord] = []
        self.stats = ResolutionStats()
        # Dependency-keyed memo: the paper notes "in practice, static
        # method resolution is preferred". A resolution is stable until
        # something it *read* changes — the defining classes'
        # memberships, the object's real class chain, the relevant
        # hides — so each entry carries its read set and a version
        # snapshot over it, and survives unrelated mutations.
        self._memo: Dict[
            Tuple[Oid, str, bool],
            Tuple[AttributeDef, FrozenDependencySet, tuple],
        ] = {}

    @property
    def policy(self) -> ConflictPolicy:
        return self._policy

    def set_policy(self, policy: ConflictPolicy) -> None:
        self._policy = policy
        self._memo.clear()

    def set_priority(
        self, class_names: List[str], attribute: Optional[str] = None
    ) -> None:
        """Earlier classes win conflicts under the PRIORITY policy.

        With ``attribute`` the priority applies to that attribute only
        (``resolve Print by priority Rich, Senior``); otherwise it is
        the global order.
        """
        if attribute is None:
            self._priority = list(class_names)
        else:
            self._attribute_priority[attribute] = list(class_names)
        self._policy = ConflictPolicy.PRIORITY
        self._memo.clear()

    # ------------------------------------------------------------------

    def resolve(self, oid: Oid, attribute: str) -> AttributeDef:
        """The effective definition of ``attribute`` for this object.

        Considers every class the object belongs to in the view that
        writes its own (non-acquired, non-hidden) definition, keeps the
        most specific ones, and applies the conflict policy if several
        incomparable definitions remain.
        """
        view = self._view
        schema = view.schema
        self.stats.resolutions += 1
        # View-internal evaluation (population queries, attribute
        # bodies) ignores hides: §3 hides bind the view's *users*.
        honor_hides = not getattr(view, "in_internal_evaluation", False)
        snapshot_of = getattr(view, "dependency_snapshot", None)
        memo_key = (oid, attribute, honor_hides)
        if snapshot_of is not None:
            cached = self._memo.get(memo_key)
            if cached is not None:
                adef, deps, snapshot = cached
                if snapshot_of(deps) == snapshot:
                    if ACTIVE_TRACKERS:
                        replay_dependencies(deps)
                    return adef
            tracker = DependencyTracker()
            with tracker:
                resolved = self._resolve_uncached(
                    view, schema, oid, attribute, honor_hides
                )
            deps = tracker.deps.frozen()
            self._memo[memo_key] = (resolved, deps, snapshot_of(deps))
            return resolved
        return self._resolve_uncached(
            view, schema, oid, attribute, honor_hides
        )

    def _resolve_uncached(
        self, view, schema, oid: Oid, attribute: str, honor_hides: bool
    ) -> AttributeDef:
        defining = view.classes_defining(attribute)
        candidates: List[str] = []
        hidden_seen = False
        for class_name in defining:
            if ACTIVE_TRACKERS:
                # Attribute hides bump the (class, attribute) version of
                # the hidden class and its descendants; recording the
                # pair here makes memoized resolutions notice new hides
                # without a schema-wide invalidation.
                record_attribute_read(class_name, attribute)
            if honor_hides and view.hides.definition_hidden(
                schema, class_name, attribute
            ):
                hidden_seen = True
                continue
            self.stats.membership_tests += 1
            if view.is_member(oid, class_name):
                candidates.append(class_name)
        if not candidates:
            # Fallback through the object's real class chain. This is
            # what serves imaginary objects whose tuple has vanished
            # from the current population: "the object ... may still
            # be used in other parts of the view" (§5.1).
            real = view.class_of(oid)
            if ACTIVE_TRACKERS:
                record_extent_read(real)
            for cls in schema.linearize(real):
                adef = schema.require(cls).own_attribute(attribute)
                if adef is None or adef.acquired:
                    continue
                if honor_hides:
                    if ACTIVE_TRACKERS:
                        record_attribute_read(cls, attribute)
                    if view.hides.definition_hidden(
                        schema, cls, attribute
                    ):
                        hidden_seen = True
                        continue
                return adef
            if hidden_seen or view.hides.attribute_mentioned(attribute):
                raise HiddenAttributeError(real, attribute)
            raise UnknownAttributeError(real, attribute)
        minimal = [
            c
            for c in candidates
            if not any(
                other != c and schema.isa(other, c) for other in candidates
            )
        ]
        if len(minimal) == 1:
            chosen = minimal[0]
        else:
            chosen = self._arbitrate(oid, attribute, minimal)
        return schema.require(chosen).own_attribute(attribute)

    # ------------------------------------------------------------------

    def _arbitrate(
        self, oid: Oid, attribute: str, minimal: List[str]
    ) -> str:
        self.stats.conflicts += 1
        if self._policy is ConflictPolicy.ERROR:
            raise SchizophreniaError(attribute, minimal)
        chosen: Optional[str] = None
        if self._policy is ConflictPolicy.PRIORITY:
            ordered = self._attribute_priority.get(attribute, self._priority)
            for name in ordered:
                if name in minimal:
                    chosen = name
                    break
        if chosen is None:
            # The paper's "default (even a meaningless default)":
            # deterministic alphabetical choice.
            chosen = sorted(minimal)[0]
        self.conflict_log.append(
            ConflictRecord(oid, attribute, tuple(sorted(minimal)), chosen)
        )
        return chosen
