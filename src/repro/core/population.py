"""Population specifications of virtual classes.

§4.1 of the paper: ``class C includes α1, α2, ..., αn`` where each αi
is (1) a previously defined class, (2) a query returning a set of
objects, or (3) ``like B`` for a previously defined class B. §5 adds
``imaginary`` members: queries returning tuples, each of which receives
a fresh (but stable) oid.

This module defines one dataclass per member kind plus the coercions
that let application code write terse specs::

    view.define_virtual_class("Ship", includes=["Tanker", "Cruiser"])
    view.define_virtual_class("Adult",
        includes=["select P from Person where P.Age >= 21"])
    view.define_virtual_class("On_Sale", includes=[like("On_Sale_Spec")])
    view.define_virtual_class("Minor",
        includes=[predicate("Person", lambda p: p.Age < 21)])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Tuple, Union

from ..errors import VirtualClassError
from ..query.ast import Select
from ..query.builder import SelectBuilder, ensure_query


class Member:
    """One αi of an ``includes`` declaration."""

    __slots__ = ()


@dataclass(frozen=True)
class ClassMember(Member):
    """Generalization: include a whole existing class (rule αi = name)."""

    class_name: str


@dataclass(frozen=True)
class QueryMember(Member):
    """Specialization: include the objects a query returns."""

    query: Select


@dataclass(frozen=True)
class LikeMember(Member):
    """Behavioral generalization: include every class whose type is at
    least as specific as the spec class's type (``like B``)."""

    spec_class: str


@dataclass(frozen=True)
class PredicateMember(Member):
    """Python-predicate specialization: a convenience equivalent of a
    query member (``select X from SOURCE where predicate(X)``)."""

    source_class: str
    predicate: Callable


@dataclass(frozen=True)
class ImaginaryMember(Member):
    """Imaginary population: a query returning tuples, each assigned a
    stable fresh oid (§5)."""

    query: Select


def like(spec_class: str) -> LikeMember:
    """Spell ``like B`` in Python code."""
    return LikeMember(spec_class)


def predicate(source_class: str, fn: Callable) -> PredicateMember:
    """A specialization by Python predicate over a source class."""
    return PredicateMember(source_class, fn)


def imaginary(query) -> ImaginaryMember:
    """Mark a tuple-producing query as imaginary (``includes imaginary
    (select […] from …)``)."""
    return ImaginaryMember(ensure_query(query))


IncludeSpec = Union[
    str, Select, SelectBuilder, Member, Tuple[str, Callable]
]


def normalize_includes(items: Iterable[IncludeSpec]) -> List[Member]:
    """Coerce terse include specs into :class:`Member` objects.

    Strings are class names, ``"like B"``, or query text (anything
    starting with ``select``). ``(source, callable)`` pairs become
    predicate members.
    """
    members: List[Member] = []
    for item in items:
        members.append(_normalize_one(item))
    if not members:
        raise VirtualClassError(
            "a virtual class must include at least one member"
        )
    return members


def _normalize_one(item: IncludeSpec) -> Member:
    if isinstance(item, Member):
        return item
    if isinstance(item, (Select, SelectBuilder)):
        return QueryMember(ensure_query(item))
    if isinstance(item, tuple) and len(item) == 2 and callable(item[1]):
        return PredicateMember(item[0], item[1])
    if isinstance(item, str):
        stripped = item.strip()
        lowered = stripped.lower()
        if lowered.startswith("select ") or lowered.startswith("select\n"):
            return QueryMember(ensure_query(stripped))
        if lowered.startswith("like ") :
            return LikeMember(stripped[5:].strip())
        if stripped.isidentifier() or all(
            ch.isalnum() or ch in "_&#" for ch in stripped
        ):
            return ClassMember(stripped)
    raise VirtualClassError(f"cannot interpret include member: {item!r}")
