"""Materialized virtual classes with incremental maintenance.

The paper notes (§6) that "materialized views … acquire a new dimension
in the context of objects". This module supplies the machinery the
benchmarks (experiment E2) compare against on-demand recomputation:

- the population of a virtual class is computed once and kept;
- base-database events drive maintenance: when every population member
  admits a cheap single-object membership test
  (:meth:`VirtualClass.has_cheap_membership`), a create/update/delete
  touches exactly one object's membership; otherwise the class is
  re-populated in full;
- counters expose how much work maintenance did, so the recompute /
  materialize crossover is measurable.

This is the *eager* end of the maintenance spectrum: every event is
applied immediately. The default (non-materialized) tier is lazy —
:class:`VirtualClass` buffers events and delta-patches its dependency-
keyed cache on the next read (see :mod:`repro.engine.tracking`). Both
rely on the same per-object tests and share the contract that
predicates read only the candidate object's own attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from ..engine.events import (
    ClassDefined,
    Event,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from ..engine.oid import EMPTY_OID_SET, Oid, OidSet
from .virtual_classes import VirtualClass


@dataclass
class MaintenanceStats:
    incremental_steps: int = 0
    full_recomputes: int = 0
    events_seen: int = 0


class MaterializedClass:
    """A continuously maintained copy of a virtual class's population."""

    def __init__(self, view, virtual_class: VirtualClass):
        self._view = view
        self._vclass = virtual_class
        self._members: Set[Oid] = set(virtual_class.population().members)
        self._incremental = virtual_class.has_cheap_membership()
        self.stats = MaintenanceStats()
        self._unsubscribe = view.events.subscribe(self._on_event)

    @property
    def name(self) -> str:
        return self._vclass.name

    @property
    def incremental(self) -> bool:
        return self._incremental

    def population(self) -> OidSet:
        # Copy under the view's maintenance lock: the committing
        # thread's _on_event (which runs under the same lock) edits the
        # member set in place.
        with self._view.maintenance_lock:
            if not self._members:
                return EMPTY_OID_SET
            return OidSet.of(self._members)

    def contains(self, oid: Oid) -> bool:
        with self._view.maintenance_lock:
            return oid in self._members

    def drop(self) -> None:
        self._unsubscribe()

    # ------------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        # Usually already held (the view republishes provider events
        # under its maintenance lock); re-entrant for direct publishes.
        with self._view.maintenance_lock:
            self.stats.events_seen += 1
            if isinstance(event, ClassDefined):
                # Behavioral members may start matching the new class.
                self._recompute()
                return
            if not self._incremental:
                self._recompute()
                return
            if isinstance(event, ObjectDeleted):
                self._members.discard(event.oid)
                self.stats.incremental_steps += 1
                return
            if isinstance(event, (ObjectCreated, ObjectUpdated)):
                oid = event.oid
                self.stats.incremental_steps += 1
                if self._test(oid):
                    self._members.add(oid)
                else:
                    self._members.discard(oid)

    def _test(self, oid: Oid) -> bool:
        for member in self._vclass.members:
            result = self._vclass.member_test(member, oid)
            if result:
                return True
            if result is None:
                # Should not happen for incremental classes; degrade
                # gracefully.
                return oid in self._vclass.population(use_cache=False)
        return False

    def _recompute(self) -> None:
        self.stats.full_recomputes += 1
        self._members = set(
            self._vclass.population(use_cache=False).members
        )
