"""Virtual attributes: computed attribute definitions for views.

§2 of the paper erases the distinction between stored attributes and
methods: an attribute may be declared with a ``has value`` procedure and
accessed exactly like a stored one (``Maggy.Address``). In a view, such
declarations overlay imported classes without touching the base
database.

A value specification may be:

- a Python callable receiving the receiver handle (and extra args),
- query-dialect expression text (``"[City: self.City, ...]"``),
- a parsed :class:`~repro.query.ast.Expr`, or
- a query (text starting with ``select``, AST, or builder) — evaluated
  with ``self`` bound to the receiver.

Types are inferred statically when possible, as the paper prescribes
("the view system should relieve the user of mundane tasks like
specifying a type when the type can be inferred").
"""

from __future__ import annotations

from typing import Optional

from ..engine.schema import AttributeDef, AttributeKind
from ..engine.types import ClassType, Type, type_from_signature
from ..errors import ViewError
from ..query.ast import Expr, Select
from ..query.builder import SelectBuilder, as_expr
from ..query.eval import evaluate_expression
from ..query.parser import parse_expression
from ..query.typecheck import TypeEnvironment, infer_expr_type


def build_virtual_attribute(
    view,
    class_name: str,
    attribute: str,
    value,
    declared_type=None,
    arity: int = 0,
    updater=None,
) -> AttributeDef:
    """Create the :class:`AttributeDef` for a view-level declaration
    ``attribute A {of type T} in class C {has value V}``.

    When ``value`` is ``None`` the attribute is *stored* (its values
    live in the base objects); otherwise it is computed against the
    view. ``updater`` optionally makes a computed attribute writable:
    it receives ``(receiver, new_value)`` and performs the base
    updates (see :mod:`repro.core.updates`).
    """
    if declared_type is not None:
        declared_type = type_from_signature(declared_type)
    if value is None:
        return AttributeDef(
            attribute,
            declared_type,
            AttributeKind.STORED,
            None,
            0,
            class_name,
        )
    procedure, expr = _as_procedure(view, value)
    if declared_type is None and expr is not None:
        declared_type = _infer_type(view, class_name, expr)
    return AttributeDef(
        attribute,
        declared_type,
        AttributeKind.COMPUTED,
        procedure,
        arity,
        class_name,
        updater=updater,
    )


def _as_procedure(view, value):
    """Coerce a value spec to ``(procedure, expr-or-None)``.

    Either way the body runs under the view's *internal evaluation*
    context: hide declarations bind the view's users, not its own
    attribute definitions (§3's definition order puts hides last).
    """
    if callable(value) and not isinstance(
        value, (Expr, Select, SelectBuilder)
    ):

        def callable_procedure(receiver, *args):
            with view.internal_evaluation():
                return value(receiver, *args)

        return callable_procedure, None
    if isinstance(value, str):
        expr = parse_expression(value)
    elif isinstance(value, (Select, SelectBuilder)):
        expr = as_expr(value)
    elif isinstance(value, Expr):
        expr = value
    else:
        raise ViewError(
            f"cannot interpret attribute value specification: {value!r}"
        )

    def procedure(receiver, *args):
        bindings = {f"arg{i + 1}": arg for i, arg in enumerate(args)}
        with view.internal_evaluation():
            return evaluate_expression(
                expr, view, self_value=receiver, bindings=bindings
            )

    return procedure, expr


def _infer_type(view, class_name: str, expr: Expr) -> Optional[Type]:
    """Best-effort static inference of the attribute's type."""
    try:
        tenv = TypeEnvironment(view)
        return infer_expr_type(
            expr, tenv, variables={}, self_type=ClassType(class_name)
        )
    except Exception:
        # The paper keeps explicit type declarations available exactly
        # because inference cannot always succeed.
        return None
