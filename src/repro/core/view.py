"""The view: a database with no proper data of its own.

§3 of the paper: "a view can be thought of as a database that imports
all its data from other databases. That is, a view has a schema, like
all databases, but no proper data of its own", and a view definition
has the general structure::

    create view My_View;
    { import and hide specifications }
    { class and method definitions }
    { hide specifications }

:class:`View` implements that structure over one or more base
databases (or other views — views stack). It is a
:class:`~repro.engine.objects.Scope`, so handles, queries and the DDL
executor all work against it exactly as against a database — the
paper's principle (1): "a view should be treated as a database".
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..engine.events import (
    ClassDefined,
    Event,
    EventBus,
    ObjectCreated,
    ObjectDeleted,
    ObjectUpdated,
)
from ..engine.objects import ObjectHandle, Scope
from ..engine.oid import EMPTY_OID_SET, Oid, OidSet
from ..engine.schema import AttributeDef, ClassKind, Schema
from ..engine.tracking import ACTIVE_TRACKERS, record_extent_read
from ..engine.types import Type, is_subtype, type_from_signature
from ..errors import (
    HiddenAttributeError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownOidError,
    ViewError,
    VirtualClassError,
)
from ..query.eval import evaluate
from .hiding import HideSet
from .imaginary import ImaginaryClass
from .materialize import MaterializedClass
from .parameterized import ClassFamily
from .population import (
    ImaginaryMember,
    LikeMember,
    Member,
    normalize_includes,
)
from .resolution import ConflictPolicy, Resolver
from .stats import ViewStats
from .upward import acquired_attributes
from .hierarchy import apply_placement, infer_placement
from .virtual_attributes import build_virtual_attribute
from .virtual_classes import VirtualClass


class View(Scope):
    """An object-oriented view over one or more base scopes."""

    def __init__(self, name: str):
        self._name = name
        self._schema = Schema()
        self._providers: List[Scope] = []
        self._import_all: set = set()  # indices into _providers
        self._hides = HideSet()
        self._virtuals: Dict[str, VirtualClass] = {}
        self._imaginaries: Dict[str, ImaginaryClass] = {}  # by space
        self._families: Dict[str, ClassFamily] = {}
        self._materialized: Dict[str, MaterializedClass] = {}
        self._resolver = Resolver(self)
        self._events = EventBus()
        # Version vector for dependency-keyed cache invalidation:
        # - _schema_version covers structural change (imports, class
        #   and attribute definitions, class hides) — everything keys
        #   on it;
        # - _extent_versions[C] bumps when C's extent may have changed
        #   (create/delete of a C object or of an object real in a
        #   descendant of C);
        # - _attr_versions[(C, a)] bumps when reads of attribute a on
        #   objects real in C may change (update events bump C and its
        #   ancestors; attribute hides bump the hidden class and its
        #   descendants);
        # - _epoch is the monotone sum of all of the above, kept for
        #   `version` (any-change detection).
        self._schema_version = 0
        # Hides invalidate compiled query plans but deliberately do
        # NOT bump _schema_version (population caches evaluate with
        # hides off and must survive); the plan cache keys on both.
        self._hide_version = 0
        self._extent_versions: Dict[str, int] = {}
        self._attr_versions: Dict[Tuple[str, str], int] = {}
        self._epoch = 0
        self._bump_targets_cache: Dict[str, Tuple[str, ...]] = {}
        # Serializes maintenance against cache validation: a provider
        # commit bumps versions, forwards deltas and republishes under
        # this lock; a reader's currency-check / delta-buffer swap /
        # cache store takes it too, so the version vector and the
        # buffers can never be observed half-updated. Re-entrant
        # because event fanout can trigger a materialized recompute,
        # which evaluates a population, which checks caches — all on
        # the committing thread. Lock order: a thread may take a
        # database commit lock and then this lock, never the reverse
        # (population evaluation pins snapshots without holding it).
        self._maintenance_lock = threading.RLock()
        self.stats = ViewStats()
        self._defining_map: Optional[Dict[str, List[str]]] = None
        self._membership_in_progress: set = set()
        self._internal_depth = 0
        # Population-evaluation recursion control (see VirtualClass).
        self._population_stack: List[str] = []
        self._population_taint: set = set()
        # Ordered record of definition operations, for decompilation
        # back to view-definition language (repro.lang.decompile).
        self.definition_log: List[tuple] = []
        self.functions: Dict[str, Callable] = {}
        self.function_types: Dict[str, Type] = {}

    # ------------------------------------------------------------------
    # Scope protocol
    # ------------------------------------------------------------------

    @property
    def scope_name(self) -> str:
        return self._name

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def events(self) -> EventBus:
        return self._events

    @property
    def version(self) -> int:
        """Monotone counter bumped on every base mutation or view
        redefinition. Caches no longer key on this coarse counter —
        they key on :meth:`dependency_snapshot` — but it remains the
        cheap "did anything at all change" signal."""
        return self._epoch

    @property
    def schema_version(self) -> int:
        """Bumped on every structural change (imports, definitions,
        class hides); all dependency snapshots include it."""
        return self._schema_version

    @property
    def hide_version(self) -> int:
        """Bumped on every hide; cached query plans key on it."""
        return self._hide_version

    @property
    def hides(self) -> HideSet:
        return self._hides

    @property
    def maintenance_lock(self) -> threading.RLock:
        """The lock serializing provider-event maintenance against
        population-cache validation (see ``__init__``)."""
        return self._maintenance_lock

    @property
    def resolver(self) -> Resolver:
        return self._resolver

    # ------------------------------------------------------------------
    # Version vector (dependency-keyed invalidation)
    # ------------------------------------------------------------------

    def extent_version(self, class_name: str) -> int:
        return self._extent_versions.get(class_name, 0)

    def attribute_version(self, class_name: str, attribute: str) -> int:
        return self._attr_versions.get((class_name, attribute), 0)

    def dependency_snapshot(self, deps) -> tuple:
        """The current versions of a frozen dependency set's reads.

        A cached result stored with ``(deps, snapshot)`` is current
        exactly when ``dependency_snapshot(deps) == snapshot`` — i.e.
        no class it read from has seen a relevant mutation and the
        schema is structurally unchanged.
        """
        extent_versions = self._extent_versions
        attr_versions = self._attr_versions
        return (
            self._schema_version,
            tuple(extent_versions.get(c, 0) for c in deps.extents),
            tuple(attr_versions.get(k, 0) for k in deps.attributes),
        )

    def dependencies_current(self, deps, snapshot) -> bool:
        return (
            snapshot is not None
            and snapshot == self.dependency_snapshot(deps)
        )

    def reads_are_current(self) -> bool:
        """False while the calling thread holds a stale snapshot pin
        on any (transitive) provider database.

        Population caches are bypassed for such a reader — a cache
        keyed on the *latest* version vector can neither serve nor be
        filled by an evaluation of an older pinned version.
        """
        for provider in self._providers:
            check = getattr(provider, "reads_are_current", None)
            if check is not None and not check():
                return False
        return True

    def _bump_targets(
        self, class_name: str, provider: Optional[Scope] = None
    ) -> Tuple[str, ...]:
        """The class and every class whose extent covers it.

        Mutation events bump *upward*: an object created in ``Tanker``
        also changes the extent of ``Ship`` (and of any virtual class
        placed above ``Tanker``), so all ancestors' versions move.
        """
        targets = self._bump_targets_cache.get(class_name)
        if targets is not None:
            return targets
        if class_name in self._schema:
            targets = (class_name, *self._schema.ancestors(class_name))
            self._bump_targets_cache[class_name] = targets
            return targets
        if provider is not None and class_name in provider.schema:
            # Not visible in the view, but its objects may surface
            # through imported ancestors; don't cache (provider-local).
            return (class_name, *provider.schema.ancestors(class_name))
        return (class_name,)

    def _bump_extents(self, class_name: str, provider: Optional[Scope]) -> None:
        versions = self._extent_versions
        for target in self._bump_targets(class_name, provider):
            versions[target] = versions.get(target, 0) + 1

    def _bump_attribute(
        self,
        class_name: str,
        attribute: str,
        provider: Optional[Scope] = None,
        targets: Optional[Tuple[str, ...]] = None,
    ) -> None:
        versions = self._attr_versions
        if targets is None:
            targets = self._bump_targets(class_name, provider)
        for target in targets:
            key = (target, attribute)
            versions[key] = versions.get(key, 0) + 1

    def reset_stats(self) -> None:
        self.stats.reset()

    def internal_evaluation(self):
        """Context manager marking view-internal evaluation.

        §3's hide specifications come *last* in a view definition: they
        hide attributes from the view's users, not from the view's own
        class and attribute definitions (Example 5 hides the very
        attributes its imaginary ``Address`` class is built from).
        While this context is active, the resolver ignores hides.
        """
        return _InternalEvaluation(self)

    @property
    def in_internal_evaluation(self) -> bool:
        return self._internal_depth > 0

    # ------------------------------------------------------------------
    # Imports (§3)
    # ------------------------------------------------------------------

    def import_database(self, source: Scope) -> None:
        """``import all classes from database S``."""
        index = self._add_provider(source)
        self._import_all.add(index)
        self._schema.copy_classes_from(source.schema)
        self.definition_log.append(("import_all", source.scope_name))
        self._invalidate_schema()

    def import_class(self, source: Scope, class_name: str) -> None:
        """``import class C from database S``.

        The class becomes visible "together with its subclasses, the
        objects in the classes, their values and behaviors".
        """
        source.schema.require(class_name)
        self._add_provider(source)
        self._schema.copy_classes_from(source.schema, [class_name])
        self.definition_log.append(
            ("import_class", source.scope_name, class_name)
        )
        self._invalidate_schema()

    def _add_provider(self, source: Scope) -> int:
        for index, existing in enumerate(self._providers):
            if existing is source:
                return index
        source_hides = getattr(source, "hides", None)
        if source_hides is not None:
            # Importing from a view: its hides travel with it.
            self._hides.merge(source_hides)
        self._providers.append(source)
        index = len(self._providers) - 1
        source.events.subscribe(
            lambda event, _i=index: self._on_provider_event(event, _i)
        )
        return index

    def _on_provider_event(self, event: Event, provider_index: int) -> None:
        # The whole maintenance step — version bump, delta forwarding,
        # republish to subscribers (materialized classes, stacked
        # views) — is atomic w.r.t. cache validation on reader threads.
        with self._maintenance_lock:
            provider = self._providers[provider_index]
            if isinstance(event, ObjectUpdated):
                # An update changes no extent of a *base* class; only
                # reads of this attribute (on the class or an ancestor)
                # can differ. Virtual-class extents that depend on the
                # attribute recorded it as a dependency and invalidate
                # through the attribute version.
                self.stats.record_invalidation(event.class_name)
                self._bump_attribute(
                    event.class_name, event.attribute, provider
                )
                self._epoch += 1
                self._forward_delta(event)
            elif isinstance(event, (ObjectCreated, ObjectDeleted)):
                self.stats.record_invalidation(event.class_name)
                self._bump_extents(event.class_name, provider)
                self._epoch += 1
                self._forward_delta(event)
            elif isinstance(event, ClassDefined):
                name = event.class_name
                if name not in self._schema and self._covers_new_class(
                    provider_index, provider, name
                ):
                    self._schema.copy_classes_from(provider.schema, [name])
                self._invalidate_schema()
            else:
                # Unknown event kinds are treated as structural so no
                # cache can go stale silently.
                self._invalidate_schema()
            self._events.publish(event)

    def _forward_delta(self, event: Event) -> None:
        """Buffer an object-level event with every virtual class so a
        stale cached population can be delta-patched instead of fully
        recomputed."""
        for vclass in self._virtuals.values():
            vclass.note_event(event)

    def _covers_new_class(
        self, provider_index: int, provider: Scope, name: str
    ) -> bool:
        if provider_index in self._import_all:
            return True
        # Subtree imports: a new subclass of an already-imported class
        # becomes visible too.
        return any(
            parent in self._schema
            for parent in provider.schema.ancestors(name)
        )

    def _invalidate_schema(self) -> None:
        self._defining_map = None
        self._bump_targets_cache.clear()
        self._schema_version += 1
        self._epoch += 1

    # ------------------------------------------------------------------
    # Hiding (§3)
    # ------------------------------------------------------------------

    def hide_attribute(self, class_name: str, attribute: str) -> None:
        """``hide attribute A in class C`` — hides the definitions of A
        in C and all its subclasses.

        Invalidation is *targeted*: hiding an attribute can change only
        how that attribute resolves at C and below (hides bind the
        view's users — populations evaluate with hides off), so only
        the ``(class, attribute)`` versions of that subtree move. A
        cached population that never read the attribute survives.
        """
        self._schema.require(class_name)
        self._hides.hide_attribute(class_name, attribute)
        self.definition_log.append(
            ("hide_attribute", class_name, attribute)
        )
        self._bump_attribute(
            class_name,
            attribute,
            targets=(class_name, *self._schema.descendants(class_name)),
        )
        self._hide_version += 1
        self._epoch += 1

    def hide_attributes(
        self, class_name: str, attributes: Sequence[str]
    ) -> None:
        for attribute in attributes:
            self.hide_attribute(class_name, attribute)

    def hide_class(self, class_name: str) -> None:
        self._schema.require(class_name)
        self._hides.hide_class(class_name)
        self.definition_log.append(("hide_class", class_name))
        self._hide_version += 1
        self._invalidate_schema()

    # ------------------------------------------------------------------
    # Virtual attributes (§2)
    # ------------------------------------------------------------------

    def define_attribute(
        self,
        class_name: str,
        attribute: str,
        declared_type=None,
        value=None,
        arity: int = 0,
        updater=None,
    ) -> AttributeDef:
        """``attribute A {of type T} in class C {has value V}``.

        ``value`` may be a Python callable, expression text, a parsed
        expression, or a query; the attribute is stored when ``value``
        is omitted. The type is inferred when not declared. ``updater``
        makes a computed attribute writable through the view (the
        view-update inverse; see :meth:`update`).
        """
        cdef = self._schema.require(class_name)
        adef = build_virtual_attribute(
            self, class_name, attribute, value, declared_type, arity,
            updater,
        )
        cdef.attributes[attribute] = adef
        self.definition_log.append(
            ("define_attribute", class_name, attribute, adef, value)
        )
        self._invalidate_schema()
        return adef

    def update(self, target, attribute: str, new_value) -> None:
        """Update an attribute *through* the view.

        Stored attributes route to the owning base database; computed
        attributes require an update translator (``updater=`` on
        :meth:`define_attribute`); hidden attributes refuse. §6 of the
        paper defers view updates — this implements the part its
        machinery determines (see :mod:`repro.core.updates`).
        """
        from .updates import update_through_view

        update_through_view(self, target, attribute, new_value)

    # ------------------------------------------------------------------
    # Virtual classes (§4) and imaginary classes (§5)
    # ------------------------------------------------------------------

    def define_virtual_class(
        self,
        name: str,
        includes: Sequence,
        parameters: Sequence[str] = (),
        doc: str = "",
    ):
        """``class C {(parameters)} includes α1, ..., αn``.

        Returns the :class:`VirtualClass` (or :class:`ClassFamily` when
        parameters are given). Hierarchy placement, upward inheritance
        and (for imaginary members) core attributes are inferred here —
        the paper's principle (4): the user specifies the population,
        the system derives type and behaviour.
        """
        members = normalize_includes(includes)
        self.definition_log.append(
            ("define_virtual_class", name, tuple(members), tuple(parameters))
        )
        if parameters:
            family = ClassFamily(self, name, parameters, members)
            self._families[name] = family
            self._invalidate_schema()
            return family
        if name in self._schema:
            raise VirtualClassError(f"class already defined: {name!r}")
        imaginary_members = [
            m for m in members if isinstance(m, ImaginaryMember)
        ]
        if len(imaginary_members) > 1 or (
            imaginary_members and len(members) > 1
        ):
            raise VirtualClassError(
                "an imaginary member must be the only member of its"
                " class"
            )
        kind = ClassKind.IMAGINARY if imaginary_members else ClassKind.VIRTUAL
        cdef = self._schema.define_class(name, (), {}, kind, doc)
        imaginary_class = None
        if imaginary_members:
            imaginary_class = ImaginaryClass(
                self, name, imaginary_members[0].query
            )
            self._imaginaries[imaginary_class.space] = imaginary_class
        vclass = VirtualClass(self, name, members, imaginary_class)
        self._virtuals[name] = vclass
        placement = infer_placement(self._schema, members, self.like_matches)
        apply_placement(self._schema, name, placement)
        core_attrs = (
            imaginary_class.core_attributes() if imaginary_class else None
        )
        acquired = acquired_attributes(
            self._schema, name, members, self.like_matches, core_attrs
        )
        cdef.attributes.update(acquired)
        if core_attrs:
            # Core attributes are genuine stored attributes of the
            # imaginary class (served from the identity table), not
            # merely acquired type information.
            cdef.attributes.update(core_attrs)
        self._invalidate_schema()
        return vclass

    def define_spec_class(
        self, name: str, attributes: Mapping, doc: str = ""
    ):
        """Define a *specification class*: a schema-only class carrying
        the attributes a behavioral ``like`` declaration matches on
        (the paper's ``On_Sale_Spec``). It has no population."""
        cdef = self._schema.define_class(
            name,
            (),
            attributes,
            ClassKind.VIRTUAL,
            doc or "specification class",
        )
        self.definition_log.append(("define_spec_class", name, cdef))
        self._invalidate_schema()
        return cdef

    def define_imaginary_class(self, name: str, query, doc: str = ""):
        """``class C includes imaginary (select [..] from ...)``."""
        from .population import imaginary as imaginary_member

        return self.define_virtual_class(
            name, [imaginary_member(query)], doc=doc
        )

    def virtual_class(self, name: str) -> VirtualClass:
        vclass = self._virtuals.get(name)
        if vclass is None:
            raise UnknownClassError(name)
        return vclass

    def virtual_classes(self) -> List[VirtualClass]:
        """All virtual classes defined in this view (the tier-2 bench
        invariant iterates these to compare maintained populations with
        from-scratch evaluation)."""
        return list(self._virtuals.values())

    def family(self, name: str) -> ClassFamily:
        family = self._families.get(name)
        if family is None:
            raise UnknownClassError(name)
        return family

    def imaginary_class(self, name: str) -> ImaginaryClass:
        vclass = self.virtual_class(name)
        if vclass.imaginary is None:
            raise VirtualClassError(f"class {name!r} is not imaginary")
        return vclass.imaginary

    def materialize(self, name: str) -> MaterializedClass:
        """Keep the population of a virtual class materialized, with
        incremental maintenance where possible."""
        existing = self._materialized.get(name)
        if existing is not None:
            return existing
        materialized = MaterializedClass(self, self.virtual_class(name))
        self._materialized[name] = materialized
        return materialized

    def dematerialize(self, name: str) -> None:
        materialized = self._materialized.pop(name, None)
        if materialized is not None:
            materialized.drop()

    # ------------------------------------------------------------------
    # Behavioral generalization (§4.1/4.2)
    # ------------------------------------------------------------------

    def like_matches(self, spec_class: str) -> List[str]:
        """Classes whose type is at least as specific as the spec's.

        Matching is dynamic: a class imported or defined after the
        ``like`` declaration is matched automatically (the flexibility
        argument of §4.2). Classes themselves defined by ``like`` are
        excluded to keep behavioral definitions well-founded.
        """
        spec_type = self._schema.tuple_type_of(spec_class)
        matches = []
        for cdef in self._schema:
            name = cdef.name
            if name == spec_class:
                continue
            if self._hides.class_hidden(name):
                continue
            if self._is_like_class(name):
                continue
            if is_subtype(
                self._schema.tuple_type_of(name), spec_type, self._schema
            ):
                matches.append(name)
        return sorted(matches)

    def _is_like_class(self, name: str) -> bool:
        vclass = self._virtuals.get(name)
        if vclass is None:
            return False
        return any(isinstance(m, LikeMember) for m in vclass.members)

    # ------------------------------------------------------------------
    # Extents and membership
    # ------------------------------------------------------------------

    def has_class(self, name: str) -> bool:
        if name in self._families:
            return True
        return name in self._schema and not self._hides.class_hidden(name)

    def extent(self, class_name: str, deep: bool = True) -> OidSet:
        """All members of a class in this view.

        For a base class: the union of the providers' extents over the
        class and its non-virtual descendants. For a virtual class: its
        (possibly materialized) population.

        Virtual *descendants* are deliberately **not** re-evaluated:
        hierarchy inference (rule (1), §4.2) only places a virtual
        class below C when its whole population is guaranteed to lie in
        C's extent already, so their contribution is always redundant —
        and skipping them avoids an exponential cascade of sibling
        population evaluations. The only exception is an imaginary
        class manually edged below C (imaginary populations are new
        objects), which is still included.
        """
        if self._hides.class_hidden(class_name):
            raise UnknownClassError(class_name)
        if class_name in self._families:
            raise VirtualClassError(
                f"{class_name!r} is a parameterized class family; supply"
                f" arguments, e.g. extent of {class_name}(x)"
            )
        self._schema.require(class_name)
        if ACTIVE_TRACKERS:
            record_extent_read(class_name)
        members: set = set()
        members.update(self._class_population(class_name).members)
        if deep:
            for name in self._schema.descendants(class_name):
                vclass = self._virtuals.get(name)
                if vclass is not None:
                    if vclass.is_imaginary():
                        members.update(self._class_population(name).members)
                    continue
                for provider in self._providers:
                    if name in provider.schema:
                        members.update(
                            provider.extent(name, deep=False).members
                        )
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def _class_population(self, name: str) -> OidSet:
        """Immediate members of one class (virtual population or the
        providers' shallow extents)."""
        vclass = self._virtuals.get(name)
        if vclass is not None:
            materialized = self._materialized.get(name)
            if materialized is not None and self.reads_are_current():
                # A stale-pinned reader skips the (eagerly maintained,
                # therefore latest-version) copy and evaluates against
                # its own pinned version instead.
                return materialized.population()
            return vclass.population()
        members: set = set()
        for provider in self._providers:
            if name in provider.schema:
                members.update(provider.extent(name, deep=False).members)
        if not members:
            return EMPTY_OID_SET
        return OidSet.of(members)

    def handles(self, class_name: str, deep: bool = True) -> List[ObjectHandle]:
        return [self.get(oid) for oid in self.extent(class_name, deep)]

    def is_member(self, oid: Oid, class_name: str) -> bool:
        if ACTIVE_TRACKERS:
            record_extent_read(class_name)
        if self._hides.class_hidden(class_name):
            return False
        if class_name in self._families:
            raise VirtualClassError(
                f"membership in family {class_name!r} requires arguments"
            )
        if class_name not in self._schema:
            return False
        guard_key = (oid, class_name)
        if guard_key in self._membership_in_progress:
            return False
        self._membership_in_progress.add(guard_key)
        try:
            # Base membership through any provider (the provider's own
            # deep extent covers its subclasses).
            for provider in self._providers:
                if class_name in provider.schema and provider.is_member(
                    oid, class_name
                ):
                    return True
            # Cross-provider descendants reachable only through
            # view-added edges.
            try:
                real = self.class_of(oid)
            except UnknownOidError:
                return False
            if real not in self._virtuals and self._schema.isa(
                real, class_name
            ):
                return True
            # Direct virtual membership.
            vclass = self._virtuals.get(class_name)
            if vclass is not None and vclass.contains(oid):
                return True
            # Rule (1) guarantees the population of every
            # inferred-placement virtual subclass already lies in this
            # class's extent, so those need no re-check; imaginary
            # subclasses (only possible via manual edges) do.
            for name, sub in self._virtuals.items():
                if name == class_name or not sub.is_imaginary():
                    continue
                if self._schema.isa(name, class_name) and sub.contains(oid):
                    return True
            return False
        finally:
            self._membership_in_progress.discard(guard_key)

    def instantiate_family(self, name: str, args: Tuple) -> OidSet:
        """The population of a parameterized class instance."""
        return self.family(name).instantiate(args)

    # ------------------------------------------------------------------
    # Object service
    # ------------------------------------------------------------------

    def class_of(self, oid: Oid) -> str:
        imaginary = self._imaginaries.get(oid.space)
        if imaginary is not None and imaginary.ever_issued(oid):
            return imaginary.name
        for provider in self._providers:
            if provider.contains_oid(oid):
                return provider.class_of(oid)
        raise UnknownOidError(oid)

    def contains_oid(self, oid: Oid) -> bool:
        imaginary = self._imaginaries.get(oid.space)
        if imaginary is not None and imaginary.ever_issued(oid):
            return True
        return any(p.contains_oid(oid) for p in self._providers)

    def raw_value(self, oid: Oid) -> Dict[str, object]:
        imaginary = self._imaginaries.get(oid.space)
        if imaginary is not None and imaginary.ever_issued(oid):
            return imaginary.value(oid)
        for provider in self._providers:
            if provider.contains_oid(oid):
                return provider.raw_value(oid)
        raise UnknownOidError(oid)

    def resolve_attribute_for(self, oid: Oid, attribute: str) -> AttributeDef:
        return self._resolver.resolve(oid, attribute)

    def create(self, class_name: str, *args, **kwargs):
        raise ViewError(
            "views have no proper data of their own (§3); create objects"
            " in a base database"
        )

    # ------------------------------------------------------------------
    # Resolution configuration
    # ------------------------------------------------------------------

    def set_conflict_policy(self, policy) -> None:
        if isinstance(policy, str):
            policy = ConflictPolicy(policy)
        self._resolver.set_policy(policy)

    def set_resolution_priority(self, class_names: Sequence[str]) -> None:
        self._resolver.set_priority(list(class_names))

    @property
    def conflict_log(self):
        return self._resolver.conflict_log

    # ------------------------------------------------------------------
    # Schema-level attribute typing (for the type checker)
    # ------------------------------------------------------------------

    def attribute_type(self, class_name: str, attribute: str):
        """Effective declared type of an attribute, honoring hides."""
        if self._hides.class_hidden(class_name):
            raise UnknownClassError(class_name)
        found_hidden = False
        for cls in self._schema.linearize(class_name):
            adef = self._schema.require(cls).own_attribute(attribute)
            if adef is None:
                continue
            if self._hides.definition_hidden(self._schema, cls, attribute):
                found_hidden = True
                continue
            return adef.declared_type
        if found_hidden or self._hides.attribute_mentioned(attribute):
            raise HiddenAttributeError(class_name, attribute)
        raise UnknownAttributeError(class_name, attribute)

    def attributes_of(self, class_name: str) -> Dict[str, AttributeDef]:
        """The visible effective attributes of a class in this view."""
        result: Dict[str, AttributeDef] = {}
        for cls in reversed(self._schema.linearize(class_name)):
            for name, adef in self._schema.require(cls).attributes.items():
                if self._hides.definition_hidden(self._schema, cls, name):
                    result.pop(name, None)
                    continue
                result[name] = adef
        return result

    # ------------------------------------------------------------------
    # Resolution support
    # ------------------------------------------------------------------

    def classes_defining(self, attribute: str) -> List[str]:
        """Classes writing their own (non-acquired) definition of an
        attribute; cached and invalidated on schema change."""
        if self._defining_map is None:
            defining: Dict[str, List[str]] = {}
            for cdef in self._schema:
                for name, adef in cdef.attributes.items():
                    if adef.acquired:
                        continue
                    defining.setdefault(name, []).append(cdef.name)
            for classes in defining.values():
                classes.sort()
            self._defining_map = defining
        return self._defining_map.get(attribute, [])

    # ------------------------------------------------------------------
    # Functions and queries
    # ------------------------------------------------------------------

    def register_function(
        self, name: str, fn: Callable, result_type=None
    ) -> None:
        """Register a named function usable in queries and attribute
        bodies (the paper's ``gsd(self)``)."""
        self.functions[name] = fn
        if result_type is not None:
            self.function_types[name] = type_from_signature(result_type)

    def query(self, query, **parameters):
        """Evaluate a query against this view (via the plan cache)."""
        from ..query.planner import execute

        return execute(query, self, bindings=parameters or None)


class _InternalEvaluation:
    """Re-entrant marker for view-internal evaluation (hides off)."""

    def __init__(self, view: View):
        self._view = view

    def __enter__(self):
        self._view._internal_depth += 1
        return self._view

    def __exit__(self, *exc):
        self._view._internal_depth -= 1
        return False
