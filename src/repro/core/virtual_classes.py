"""Virtual classes: population evaluation and membership.

A :class:`VirtualClass` owns the normalized member list of one
``class C includes …`` declaration and computes its population against
the view:

- **generalization** members contribute the (deep) extents of the
  included classes;
- **specialization** members contribute the objects their query
  returns (it is a :class:`~repro.errors.VirtualClassError` for the
  query to return non-objects — tuple-producing queries belong to
  imaginary classes);
- **behavioral** members (``like B``) contribute the extents of every
  class currently matching the spec — matching is dynamic, so classes
  added later join automatically (the paper's ``On_Sale`` vs
  ``On_Sale_Bis`` argument, experiment E4);
- **imaginary** members delegate to the class's
  :class:`~repro.core.imaginary.ImaginaryClass` identity table.

Populations are cached with the *dependency set* the evaluation read
(which extents it iterated, which ``(class, attribute)`` pairs it
consulted) plus a snapshot of the view's version vector over that set.
A cached population is served as long as no recorded dependency has
been bumped — mutations to unrelated classes leave it untouched. When
a dependency *is* bumped, specialization populations whose members all
admit cheap per-object tests are **delta-patched**: only the oids
carried by the buffered mutation events are re-tested against the
member predicates, instead of re-running the defining queries over the
whole extent.

Direct insertion is impossible by construction: the paper notes "it is
not possible for a user to insert an object directly into a virtual
class" — there is simply no API for it; views refuse ``create`` on
virtual classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine.events import Event, ObjectDeleted
from ..engine.oid import EMPTY_OID_SET, Oid, OidSet
from ..engine.objects import ObjectHandle
from ..engine.tracking import (
    ACTIVE_TRACKERS,
    DependencySet,
    DependencyTracker,
    FrozenDependencySet,
    replay_dependencies,
)
from ..errors import VirtualClassError
from ..obs import trace as _trace
from ..query.ast import Binding, ClassSource, Select, Var
from ..query.compile import Runtime, compile_test
from ..query.planner import execute as plan_execute
from .imaginary import ImaginaryClass
from .population import (
    ClassMember,
    ImaginaryMember,
    LikeMember,
    Member,
    PredicateMember,
    QueryMember,
)

# A virtual class stops buffering mutation events (and falls back to a
# full recompute on the next stale access) once this many accumulate:
# past that point re-testing the deltas costs as much as re-evaluating.
DELTA_BUFFER_LIMIT = 512


class VirtualClass:
    """One defined virtual (possibly imaginary) class within a view."""

    def __init__(
        self,
        view,
        name: str,
        members: Sequence[Member],
        imaginary: Optional[ImaginaryClass] = None,
    ):
        self._view = view
        self._name = name
        self._members = tuple(members)
        self._imaginary = imaginary
        # Cache: the population, the dependency set its evaluation
        # read, and the version snapshot over that set. ``_cache_deps``
        # is None until the first (untainted) evaluation.
        self._cache: OidSet = EMPTY_OID_SET
        self._cache_deps: Optional[FrozenDependencySet] = None
        self._cache_snapshot: Optional[tuple] = None
        # Mutation events buffered since the cache was filled, for
        # delta patching.
        self._delta_events: List[Event] = []
        self._delta_overflow = False
        self._evaluating = False
        # Compiled per-member where-closures for the quick membership
        # test, keyed by member identity (member ASTs are immutable).
        self._member_tests: Dict[int, object] = {}

    @property
    def name(self) -> str:
        return self._name

    @property
    def members(self) -> Tuple[Member, ...]:
        return self._members

    @property
    def imaginary(self) -> Optional[ImaginaryClass]:
        return self._imaginary

    def is_imaginary(self) -> bool:
        return self._imaginary is not None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def population(self, use_cache: bool = True) -> OidSet:
        """All members of the virtual class, as an oid set.

        Serving order: a cached population whose dependency snapshot is
        still current is returned as-is (a *hit* — its stored read set
        is replayed into any enclosing tracker); a stale one is
        repaired by :meth:`_try_delta_patch` when every member admits a
        cheap per-object test; otherwise the defining members are
        evaluated from scratch under a fresh
        :class:`~repro.engine.tracking.DependencyTracker`.

        Recursion control: population evaluation may (via deep extents)
        re-enter another virtual class that is itself mid-evaluation.
        The re-entered class yields the empty set to break the cycle,
        and *taints* every evaluation frame currently on the stack —
        tainted frames return their (possibly truncated) value but do
        not cache it, so no caller ever observes a stale truncated
        population on a later call.
        """
        view = self._view
        # A reader pinned to an older database version bypasses the
        # cache entirely: the cache tracks the latest version, the
        # reader must see its own (View.reads_are_current).
        pinned_current = view.reads_are_current()
        if use_cache and pinned_current and self._cache_deps is not None:
            # Currency check and buffer clear are atomic against a
            # provider commit's bump+buffer step (same lock in
            # View._on_provider_event), so an event can never land
            # between "snapshot is current" and "drop the buffer".
            with view.maintenance_lock:
                if self._cache_deps is not None and (
                    view.dependency_snapshot(self._cache_deps)
                    == self._cache_snapshot
                ):
                    view.stats.record_hit()
                    if ACTIVE_TRACKERS:
                        replay_dependencies(self._cache_deps)
                    # Buffered events that left the snapshot intact
                    # cannot concern any dependency; drop them.
                    self._delta_events.clear()
                    self._delta_overflow = False
                    return self._cache
            patched = self._try_delta_patch()
            if patched is not None:
                return patched
        stack = getattr(view, "_population_stack", None)
        if stack is None:
            stack = []
            taint = set()
            view._population_stack = stack
            view._population_taint = taint
        else:
            taint = view._population_taint
        if self._name in stack:
            # Cycle: yield empty (one fixpoint iteration) and taint the
            # frames *above* our own — they consumed a truncated value
            # and must not cache. Our own frame's eventual result is
            # the fixpoint and stays cacheable.
            taint.update(range(stack.index(self._name) + 1, len(stack)))
            return EMPTY_OID_SET
        frame = len(stack)
        stack.append(self._name)
        self._evaluating = True
        # Epoch guard: evaluation runs outside the maintenance lock
        # (it may reach into provider views, whose locks a committing
        # writer acquires in the opposite order). If a commit lands
        # while we evaluate, the result may mix pre- and post-commit
        # reads — return it, but do not cache it.
        epoch0 = view._epoch
        tracker = DependencyTracker()
        try:
            internal = getattr(view, "internal_evaluation", None)
            with _trace.span(
                "population.recompute", **{"class": self._name}
            ) as sp:
                with tracker:
                    if internal is not None:
                        with internal():
                            members = self._collect_members()
                    else:
                        members = self._collect_members()
                sp.set(size=len(members) if members else 0)
        finally:
            self._evaluating = False
            tainted = frame in taint
            taint.discard(frame)
            stack.pop()
        population = OidSet.of(members) if members else EMPTY_OID_SET
        view.stats.record_full_recompute()
        if not tainted and pinned_current:
            deps = tracker.deps.frozen()
            with view.maintenance_lock:
                if view._epoch == epoch0:
                    self._cache = population
                    self._cache_deps = deps
                    self._cache_snapshot = view.dependency_snapshot(deps)
                    self._delta_events.clear()
                    self._delta_overflow = False
        return population

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------

    def note_event(self, event: Event) -> None:
        """Buffer a provider mutation event for later delta patching.

        Called by the view for every ``ObjectCreated`` / ``Updated`` /
        ``Deleted`` it receives. Events are only worth keeping while a
        cached population exists; past :data:`DELTA_BUFFER_LIMIT` the
        buffer is abandoned and the next stale access recomputes.
        """
        if self._cache_deps is None or self._delta_overflow:
            return
        self._delta_events.append(event)
        if len(self._delta_events) > DELTA_BUFFER_LIMIT:
            self._delta_events.clear()
            self._delta_overflow = True

    def _delta_closure(self) -> Optional[Set[str]]:
        """The classes delta candidates can be real in — or ``None``
        when the class cannot be delta-patched at all.

        Patchability requires every member to admit a cheap per-object
        test (``member_test`` never returns ``None``); the closure is
        each member's source class plus its schema descendants, since
        extent membership draws exactly from those.
        """
        view = self._view
        schema = view.schema
        closure: Set[str] = set()

        def add(class_name: str) -> None:
            closure.add(class_name)
            closure.update(schema.descendants(class_name))

        for member in self._members:
            if isinstance(member, ClassMember):
                add(member.class_name)
            elif isinstance(member, PredicateMember):
                add(member.source_class)
            elif isinstance(member, QueryMember):
                simple = _simple_filter(member.query)
                if simple is None:
                    return None
                add(simple[0])
            elif isinstance(member, LikeMember):
                for match in view.like_matches(member.spec_class):
                    add(match)
            else:
                # Imaginary members maintain their own identity tables;
                # their refresh is not a per-object re-test.
                return None
        return closure

    def _try_delta_patch(self) -> Optional[OidSet]:
        """Repair the stale cached population from buffered events.

        Sound only when (a) the schema is structurally unchanged since
        the cache was filled, (b) every member admits a cheap
        per-object test, and (c) every class the cached evaluation read
        from lies inside the members' source closure — i.e. the
        evaluation never reached *other* objects through references, so
        any relevant mutation names a candidate oid that is in the
        buffer. Returns ``None`` when patching is not applicable (the
        caller falls back to a full recompute).
        """
        view = self._view
        # Take the buffer and capture the epoch under the maintenance
        # lock so the swap is atomic against a committing writer's
        # bump+append; the per-object re-tests then run outside it
        # (they may reach into provider views — see population()).
        with view.maintenance_lock:
            if self._delta_overflow or not self._delta_events:
                return None
            if (
                self._cache_snapshot is None
                or self._cache_snapshot[0] != view.schema_version
            ):
                return None
            closure = self._delta_closure()
            if closure is None or not self._cache_deps.classes() <= closure:
                return None
            stack = getattr(view, "_population_stack", None)
            if stack and self._name in stack:
                return None
            events = self._delta_events
            self._delta_events = []
            members = set(self._cache.members)
            cache_deps = self._cache_deps
            epoch0 = view._epoch
        tracker = DependencyTracker()
        internal = getattr(view, "internal_evaluation", None)
        with _trace.span(
            "population.delta_patch",
            events=len(events),
            **{"class": self._name},
        ) as sp:
            with tracker:
                if internal is not None:
                    with internal():
                        ok = self._apply_delta(events, closure, members)
                else:
                    ok = self._apply_delta(events, closure, members)
            sp.set(applied=ok, size=len(members))
        if not ok:
            with view.maintenance_lock:
                self._delta_overflow = True
            return None
        deps = DependencySet(cache_deps.extents, cache_deps.attributes)
        deps.merge(tracker.deps)
        frozen = deps.frozen()
        population = OidSet.of(members) if members else EMPTY_OID_SET
        with view.maintenance_lock:
            if view._epoch != epoch0:
                # A commit landed while we re-tested: the version
                # vector we would store claims currency over events
                # still in (or newly added to) the buffer. Push the
                # consumed events back in order and fall back to a
                # full recompute.
                self._delta_events[:0] = events
                return None
            self._cache = population
            self._cache_deps = frozen
            self._cache_snapshot = view.dependency_snapshot(frozen)
        view.stats.record_delta_patch()
        if ACTIVE_TRACKERS:
            replay_dependencies(frozen)
        return population

    def _apply_delta(
        self, events: List[Event], closure: Set[str], members: Set[Oid]
    ) -> bool:
        """Re-test each event's oid, editing ``members`` in place.

        Returns False if some member unexpectedly refused a cheap test
        (e.g. a behavioral match set changed under us).
        """
        for event in events:
            if isinstance(event, ObjectDeleted):
                members.discard(event.oid)
                continue
            if event.class_name not in closure:
                # Created/updated outside every member's source closure:
                # cannot be (or become) a member.
                continue
            verdict = False
            for member in self._members:
                quick = self.member_test(member, event.oid)
                if quick is None:
                    return False
                if quick:
                    verdict = True
                    break
            if verdict:
                members.add(event.oid)
            else:
                members.discard(event.oid)
        return True

    def _collect_members(self) -> Set[Oid]:
        members: Set[Oid] = set()
        for member in self._members:
            members.update(self._member_population(member).members)
        return members

    def _member_population(self, member: Member) -> OidSet:
        view = self._view
        if isinstance(member, ClassMember):
            return view.extent(member.class_name)
        if isinstance(member, QueryMember):
            results = plan_execute(member.query, view)
            oids: Set[Oid] = set()
            for result in results:
                if not isinstance(result, ObjectHandle):
                    raise VirtualClassError(
                        f"virtual class {self._name!r}: population query"
                        f" must return objects, got"
                        f" {type(result).__name__} (use an imaginary"
                        " class for tuple-producing queries)"
                    )
                oids.add(result.oid)
            return OidSet.of(oids) if oids else EMPTY_OID_SET
        if isinstance(member, PredicateMember):
            oids = {
                oid
                for oid in view.extent(member.source_class)
                if member.predicate(view.get(oid))
            }
            return OidSet.of(oids) if oids else EMPTY_OID_SET
        if isinstance(member, LikeMember):
            oids = set()
            for match in view.like_matches(member.spec_class):
                oids.update(view.extent(match).members)
            return OidSet.of(oids) if oids else EMPTY_OID_SET
        if isinstance(member, ImaginaryMember):
            assert self._imaginary is not None
            return self._imaginary.population()
        raise TypeError(f"unknown member kind: {member!r}")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def contains(self, oid: Oid) -> bool:
        """Membership test; uses per-member shortcuts when possible."""
        view = self._view
        with view.maintenance_lock:
            if (
                self._cache_deps is not None
                and view.dependency_snapshot(self._cache_deps)
                == self._cache_snapshot
                and view.reads_are_current()
            ):
                view.stats.record_hit()
                if ACTIVE_TRACKERS:
                    replay_dependencies(self._cache_deps)
                return oid in self._cache
        for member in self._members:
            quick = self.member_test(member, oid)
            if quick:
                return True
            if quick is None:
                # No cheap test for this member: fall back to the full
                # population (which also fills the cache).
                return oid in self.population()
        return False

    def member_test(self, member: Member, oid: Oid) -> Optional[bool]:
        """Cheap single-object membership test for one member.

        Returns ``None`` when the member admits no cheap test (complex
        queries). Used both by :meth:`contains` and by incremental
        materialization.
        """
        view = self._view
        if isinstance(member, ClassMember):
            return view.is_member(oid, member.class_name)
        if isinstance(member, PredicateMember):
            if not view.is_member(oid, member.source_class):
                return False
            return bool(member.predicate(view.get(oid)))
        if isinstance(member, LikeMember):
            try:
                real = view.class_of(oid)
            except Exception:
                return False
            matches = view.like_matches(member.spec_class)
            return any(view.schema.isa(real, match) for match in matches)
        if isinstance(member, QueryMember):
            simple = _simple_filter(member.query)
            if simple is None:
                return None
            source_class, variable, where = simple
            if not view.is_member(oid, source_class):
                return False
            if where is None:
                return True
            test = self._member_tests.get(id(member))
            if test is None:
                test = self._member_tests[id(member)] = compile_test(where)
            env = {variable: view.get(oid)}
            internal = getattr(view, "internal_evaluation", None)
            if internal is not None:
                with internal():
                    return test(Runtime(view), env)
            return test(Runtime(view), env)
        if isinstance(member, ImaginaryMember):
            assert self._imaginary is not None
            return self._imaginary.contains(oid)
        raise TypeError(f"unknown member kind: {member!r}")

    def has_cheap_membership(self) -> bool:
        """True when every member admits a single-object test (so a
        materialized copy can be maintained incrementally)."""
        for member in self._members:
            if isinstance(member, QueryMember):
                if _simple_filter(member.query) is None:
                    return False
            elif isinstance(member, ImaginaryMember):
                return False
        return True


def _simple_filter(query: Select):
    """Decompose ``select V from C where φ(V)`` into (C, V, φ).

    Returns ``None`` for joins, nested sources, tuple projections —
    anything whose membership cannot be tested one object at a time.
    """
    if len(query.bindings) != 1:
        return None
    binding: Binding = query.bindings[0]
    if not isinstance(binding.source, ClassSource) or binding.source.arguments:
        return None
    if not isinstance(query.projection, Var):
        return None
    if query.projection.name != binding.variable:
        return None
    from ..query.ast import free_variables

    if query.where is not None:
        # The filter must depend on the bound variable only.
        if free_variables(query.where) - {binding.variable}:
            return None
    return binding.source.class_name, binding.variable, query.where
