"""Virtual classes: population evaluation and membership.

A :class:`VirtualClass` owns the normalized member list of one
``class C includes …`` declaration and computes its population against
the view:

- **generalization** members contribute the (deep) extents of the
  included classes;
- **specialization** members contribute the objects their query
  returns (it is a :class:`~repro.errors.VirtualClassError` for the
  query to return non-objects — tuple-producing queries belong to
  imaginary classes);
- **behavioral** members (``like B``) contribute the extents of every
  class currently matching the spec — matching is dynamic, so classes
  added later join automatically (the paper's ``On_Sale`` vs
  ``On_Sale_Bis`` argument, experiment E4);
- **imaginary** members delegate to the class's
  :class:`~repro.core.imaginary.ImaginaryClass` identity table.

Populations are cached per view version. Direct insertion is
impossible by construction: the paper notes "it is not possible for a
user to insert an object directly into a virtual class" — there is
simply no API for it; views refuse ``create`` on virtual classes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple

from ..engine.oid import EMPTY_OID_SET, Oid, OidSet
from ..engine.objects import ObjectHandle
from ..errors import VirtualClassError
from ..query.ast import Binding, ClassSource, Select, Var
from ..query.eval import EvalEnv, evaluate, _eval_expr, _truthy
from .imaginary import ImaginaryClass
from .population import (
    ClassMember,
    ImaginaryMember,
    LikeMember,
    Member,
    PredicateMember,
    QueryMember,
)


class VirtualClass:
    """One defined virtual (possibly imaginary) class within a view."""

    def __init__(
        self,
        view,
        name: str,
        members: Sequence[Member],
        imaginary: Optional[ImaginaryClass] = None,
    ):
        self._view = view
        self._name = name
        self._members = tuple(members)
        self._imaginary = imaginary
        self._cache_version: Optional[int] = None
        self._cache: OidSet = EMPTY_OID_SET
        self._evaluating = False

    @property
    def name(self) -> str:
        return self._name

    @property
    def members(self) -> Tuple[Member, ...]:
        return self._members

    @property
    def imaginary(self) -> Optional[ImaginaryClass]:
        return self._imaginary

    def is_imaginary(self) -> bool:
        return self._imaginary is not None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def population(self, use_cache: bool = True) -> OidSet:
        """All members of the virtual class, as an oid set.

        Recursion control: population evaluation may (via deep extents)
        re-enter another virtual class that is itself mid-evaluation.
        The re-entered class yields the empty set to break the cycle,
        and *taints* every evaluation frame currently on the stack —
        tainted frames return their (possibly truncated) value but do
        not cache it, so no caller ever observes a stale truncated
        population on a later call.
        """
        view = self._view
        version = view.version
        if use_cache and self._cache_version == version:
            return self._cache
        stack = getattr(view, "_population_stack", None)
        if stack is None:
            stack = []
            taint = set()
            view._population_stack = stack
            view._population_taint = taint
        else:
            taint = view._population_taint
        if self._name in stack:
            # Cycle: yield empty (one fixpoint iteration) and taint the
            # frames *above* our own — they consumed a truncated value
            # and must not cache. Our own frame's eventual result is
            # the fixpoint and stays cacheable.
            taint.update(range(stack.index(self._name) + 1, len(stack)))
            return EMPTY_OID_SET
        frame = len(stack)
        stack.append(self._name)
        self._evaluating = True
        try:
            internal = getattr(view, "internal_evaluation", None)
            if internal is not None:
                with internal():
                    members = self._collect_members()
            else:
                members = self._collect_members()
        finally:
            self._evaluating = False
            tainted = frame in taint
            taint.discard(frame)
            stack.pop()
        population = OidSet.of(members) if members else EMPTY_OID_SET
        if not tainted:
            self._cache = population
            self._cache_version = version
        return population

    def _collect_members(self) -> Set[Oid]:
        members: Set[Oid] = set()
        for member in self._members:
            members.update(self._member_population(member).members)
        return members

    def _member_population(self, member: Member) -> OidSet:
        view = self._view
        if isinstance(member, ClassMember):
            return view.extent(member.class_name)
        if isinstance(member, QueryMember):
            results = evaluate(member.query, view)
            oids: Set[Oid] = set()
            for result in results:
                if not isinstance(result, ObjectHandle):
                    raise VirtualClassError(
                        f"virtual class {self._name!r}: population query"
                        f" must return objects, got"
                        f" {type(result).__name__} (use an imaginary"
                        " class for tuple-producing queries)"
                    )
                oids.add(result.oid)
            return OidSet.of(oids) if oids else EMPTY_OID_SET
        if isinstance(member, PredicateMember):
            oids = {
                oid
                for oid in view.extent(member.source_class)
                if member.predicate(view.get(oid))
            }
            return OidSet.of(oids) if oids else EMPTY_OID_SET
        if isinstance(member, LikeMember):
            oids = set()
            for match in view.like_matches(member.spec_class):
                oids.update(view.extent(match).members)
            return OidSet.of(oids) if oids else EMPTY_OID_SET
        if isinstance(member, ImaginaryMember):
            assert self._imaginary is not None
            return self._imaginary.population()
        raise TypeError(f"unknown member kind: {member!r}")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def contains(self, oid: Oid) -> bool:
        """Membership test; uses per-member shortcuts when possible."""
        version = self._view.version
        if self._cache_version == version:
            return oid in self._cache
        for member in self._members:
            quick = self.member_test(member, oid)
            if quick:
                return True
            if quick is None:
                # No cheap test for this member: fall back to the full
                # population (which also fills the cache).
                return oid in self.population()
        return False

    def member_test(self, member: Member, oid: Oid) -> Optional[bool]:
        """Cheap single-object membership test for one member.

        Returns ``None`` when the member admits no cheap test (complex
        queries). Used both by :meth:`contains` and by incremental
        materialization.
        """
        view = self._view
        if isinstance(member, ClassMember):
            return view.is_member(oid, member.class_name)
        if isinstance(member, PredicateMember):
            if not view.is_member(oid, member.source_class):
                return False
            return bool(member.predicate(view.get(oid)))
        if isinstance(member, LikeMember):
            try:
                real = view.class_of(oid)
            except Exception:
                return False
            matches = view.like_matches(member.spec_class)
            return any(view.schema.isa(real, match) for match in matches)
        if isinstance(member, QueryMember):
            simple = _simple_filter(member.query)
            if simple is None:
                return None
            source_class, variable, where = simple
            if not view.is_member(oid, source_class):
                return False
            if where is None:
                return True
            env = EvalEnv(view, bindings={variable: view.get(oid)})
            internal = getattr(view, "internal_evaluation", None)
            if internal is not None:
                with internal():
                    return _truthy(_eval_expr(where, env))
            return _truthy(_eval_expr(where, env))
        if isinstance(member, ImaginaryMember):
            assert self._imaginary is not None
            return self._imaginary.contains(oid)
        raise TypeError(f"unknown member kind: {member!r}")

    def has_cheap_membership(self) -> bool:
        """True when every member admits a single-object test (so a
        materialized copy can be maintained incrementally)."""
        for member in self._members:
            if isinstance(member, QueryMember):
                if _simple_filter(member.query) is None:
                    return False
            elif isinstance(member, ImaginaryMember):
                return False
        return True


def _simple_filter(query: Select):
    """Decompose ``select V from C where φ(V)`` into (C, V, φ).

    Returns ``None`` for joins, nested sources, tuple projections —
    anything whose membership cannot be tested one object at a time.
    """
    if len(query.bindings) != 1:
        return None
    binding: Binding = query.bindings[0]
    if not isinstance(binding.source, ClassSource) or binding.source.arguments:
        return None
    if not isinstance(query.projection, Var):
        return None
    if query.projection.name != binding.variable:
        return None
    from ..query.ast import free_variables

    if query.where is not None:
        # The filter must depend on the bound variable only.
        if free_variables(query.where) - {binding.variable}:
            return None
    return binding.source.class_name, binding.variable, query.where
