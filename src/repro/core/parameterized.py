"""Parameterized classes: ``class Adult(A) includes (select P from
Person where P.Age > A)``.

§4.2 of the paper: such a statement "effectively declares infinitely
many classes, such as Adult(20) and Adult(21), each with a different
name and a different population. (Only finitely many of these classes
will be non-empty however.)" And for partitions such as
``Resident(X)``: "as countries are removed from the database or added,
classes automatically disappear or are created".

A :class:`ClassFamily` stores the member templates with the parameters
as free variables. ``instantiate(args)`` evaluates the population with
the parameters bound; each instance is cached with the dependency set
its evaluation read and a snapshot of the view's version vector over
it, so ``Adult(20)`` survives mutations to classes it never read. For
single-parameter partition families (an equality between a path over
the bound variable and the parameter), :meth:`parameter_values`
enumerates the currently non-empty instances directly from the data —
the automatic appearance/disappearance the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.oid import EMPTY_OID_SET, OidSet
from ..engine.objects import ObjectHandle, unwrap
from ..engine.tracking import (
    ACTIVE_TRACKERS,
    DependencyTracker,
    FrozenDependencySet,
    replay_dependencies,
)
from ..engine.values import canonicalize
from ..errors import VirtualClassError
from ..query.analysis import guaranteed_classes
from ..query.ast import Binary, Binding, ClassSource, Expr, Path, Select, Var
from ..query.planner import execute as plan_execute
from .population import Member, PredicateMember, QueryMember


class _null_context:
    """A no-op context manager for scopes without internal evaluation."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


class ClassFamily:
    """A parameterized family of virtual classes."""

    def __init__(
        self,
        view,
        name: str,
        parameters: Sequence[str],
        members: Sequence[Member],
    ):
        if not parameters:
            raise VirtualClassError(
                f"class family {name!r} declared without parameters"
            )
        for member in members:
            if not isinstance(member, (QueryMember, PredicateMember)):
                raise VirtualClassError(
                    f"class family {name!r}: members must be queries or"
                    " predicates (whole classes cannot vary with a"
                    " parameter)"
                )
        self._view = view
        self._name = name
        self._parameters = tuple(parameters)
        self._members = tuple(members)
        # args -> (read set, version snapshot, population)
        self._cache: Dict[
            Tuple, Tuple[FrozenDependencySet, tuple, OidSet]
        ] = {}

    @property
    def name(self) -> str:
        return self._name

    @property
    def parameters(self) -> Tuple[str, ...]:
        return self._parameters

    @property
    def members(self) -> Tuple[Member, ...]:
        return self._members

    # ------------------------------------------------------------------

    def instantiate(self, args: Sequence[object]) -> OidSet:
        """The population of the instance ``Name(args)``."""
        if len(args) != len(self._parameters):
            raise VirtualClassError(
                f"{self._name} takes {len(self._parameters)} parameter(s),"
                f" got {len(args)}"
            )
        key = tuple(canonicalize(a) for a in args)
        view = self._view
        # Currency check under the maintenance lock (the version
        # vector moves atomically under it); evaluation outside, with
        # an epoch guard deciding whether the result may be cached —
        # same discipline as VirtualClass.population().
        pinned_current = view.reads_are_current()
        with view.maintenance_lock:
            cached = self._cache.get(key)
            if cached is not None and pinned_current:
                deps, snapshot, population = cached
                if view.dependency_snapshot(deps) == snapshot:
                    view.stats.record_hit()
                    if ACTIVE_TRACKERS:
                        replay_dependencies(deps)
                    return population
            epoch0 = view._epoch
        bindings = dict(zip(self._parameters, args))
        members: set = set()
        internal = getattr(view, "internal_evaluation", None)
        context = internal() if internal is not None else _null_context()
        tracker = DependencyTracker()
        with tracker:
            with context:
                self._instantiate_members(bindings, args, members)
        population = OidSet.of(members) if members else EMPTY_OID_SET
        view.stats.record_full_recompute()
        deps = tracker.deps.frozen()
        if pinned_current:
            with view.maintenance_lock:
                if view._epoch == epoch0:
                    self._cache[key] = (
                        deps,
                        view.dependency_snapshot(deps),
                        population,
                    )
        return population

    def _instantiate_members(self, bindings, args, members: set) -> None:
        for member in self._members:
            if isinstance(member, QueryMember):
                results = plan_execute(
                    member.query, self._view, bindings=bindings
                )
                for result in results:
                    if not isinstance(result, ObjectHandle):
                        raise VirtualClassError(
                            f"family {self._name!r}: population query"
                            " must return objects"
                        )
                    members.add(result.oid)
            else:  # PredicateMember
                for oid in self._view.extent(member.source_class):
                    handle = self._view.get(oid)
                    if member.predicate(handle, *args):
                        members.add(oid)

    def contains(self, oid, args: Sequence[object]) -> bool:
        return oid in self.instantiate(args)

    # ------------------------------------------------------------------

    def superclasses(self) -> List[str]:
        """Classes every instance of the family specializes (the family
        analogue of rule (1): ``Resident(X)`` instances are subclasses
        of ``Person``)."""
        common: Optional[set] = None
        schema = self._view.schema
        for member in self._members:
            if isinstance(member, QueryMember):
                closure = set()
                for g in guaranteed_classes(member.query):
                    if g in schema:
                        closure.add(g)
                        closure.update(schema.ancestors(g))
            else:
                closure = {member.source_class}
                closure.update(schema.ancestors(member.source_class))
            common = closure if common is None else common & closure
        if not common:
            return []
        return sorted(
            c
            for c in common
            if not any(
                other != c and schema.isa(other, c) for other in common
            )
        )

    # ------------------------------------------------------------------
    # Partition enumeration
    # ------------------------------------------------------------------

    def parameter_values(self) -> Optional[List[object]]:
        """Distinct parameter values with a non-empty instance.

        Only computable for single-parameter families whose (single)
        query member constrains the parameter by equality against a
        path over the bound variable — the paper's partition pattern
        ``Resident(X)``. Returns ``None`` when the family does not
        match the pattern.
        """
        if len(self._parameters) != 1 or len(self._members) != 1:
            return None
        member = self._members[0]
        if not isinstance(member, QueryMember):
            return None
        pattern = _partition_pattern(member.query, self._parameters[0])
        if pattern is None:
            return None
        source_class, path_attrs = pattern
        distinct: Dict[object, object] = {}
        for oid in self._view.extent(source_class):
            handle = self._view.get(oid)
            value = handle
            for attribute in path_attrs:
                if value is None:
                    break
                value = getattr(value, attribute)
            if value is None:
                continue
            raw = unwrap(value)
            distinct.setdefault(canonicalize(raw), raw)
        return [distinct[key] for key in sorted(distinct, key=repr)]

    def nonempty_instances(self) -> Optional[Dict[object, OidSet]]:
        """Map parameter value → population for partition families."""
        values = self.parameter_values()
        if values is None:
            return None
        return {value: self.instantiate((value,)) for value in values}


def _partition_pattern(
    query: Select, parameter: str
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Detect ``select V from C where path(V) = parameter``."""
    if len(query.bindings) != 1 or query.where is None:
        return None
    binding: Binding = query.bindings[0]
    if not isinstance(binding.source, ClassSource) or binding.source.arguments:
        return None
    if not isinstance(query.projection, Var):
        return None
    if query.projection.name != binding.variable:
        return None
    for conjunct in _conjuncts(query.where):
        path = _equality_with_parameter(conjunct, parameter)
        if path is None:
            continue
        if (
            isinstance(path.base, Var)
            and path.base.name == binding.variable
        ):
            return binding.source.class_name, path.attributes
    return None


def _conjuncts(expr: Expr):
    if isinstance(expr, Binary) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _equality_with_parameter(expr: Expr, parameter: str) -> Optional[Path]:
    if not isinstance(expr, Binary) or expr.op != "=":
        return None
    left, right = expr.left, expr.right
    if isinstance(right, Var) and right.name == parameter and isinstance(
        left, Path
    ):
        return left
    if isinstance(left, Var) and left.name == parameter and isinstance(
        right, Path
    ):
        return right
    return None
