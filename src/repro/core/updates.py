"""Updates through views.

§6 of the paper defers the problem: "important issues such as
materialized views and view updates, which have been extensively
studied in the relational model, acquire a new dimension in the context
of objects." This module implements the part of that dimension the
paper's own machinery determines:

- **stored attributes** of base objects update *through* the view: the
  update is routed to the provider that owns the object (validation and
  events happen at the base, so every other view sees it);
- **computed (virtual) attributes** are read-only unless the definition
  carries an *update translator* — a callable ``(receiver, new_value)``
  that performs the base updates realizing the new value (the classic
  view-update inverse, supplied by the view designer because inversion
  is not derivable in general);
- **hidden attributes** cannot be updated (a view user who cannot read
  a value must not write it either).

Imaginary-object identity under updates (footnote 1's "more
sophisticated approaches ... object merging ... object splitting") is
implemented in :meth:`ImaginaryClass.preserve_identity_on` — see
:mod:`repro.core.imaginary`.
"""

from __future__ import annotations

from ..engine.objects import ObjectHandle
from ..engine.oid import Oid
from ..errors import (
    ImaginaryObjectError,
    ReadOnlyAttributeError,
    ViewUpdateError,
)


def update_through_view(view, target, attribute: str, new_value) -> None:
    """Translate one attribute assignment through a view.

    Raises:
        ReadOnlyAttributeError: computed attribute without a translator.
        HiddenAttributeError: the attribute is hidden in this view.
        ImaginaryObjectError: direct assignment to an imaginary object's
            core attribute (imaginary values derive from base data; the
            view designer must update the base or supply a translator).
        ViewUpdateError: no provider owns the object.
    """
    oid = target.oid if isinstance(target, ObjectHandle) else target
    adef = view.resolve_attribute_for(oid, attribute)
    if adef.is_computed():
        if adef.updater is None:
            raise ReadOnlyAttributeError(adef.origin, attribute)
        with view.internal_evaluation():
            adef.updater(view.get(oid), new_value)
        return
    imaginary = view._imaginaries.get(oid.space)
    if imaginary is not None and imaginary.ever_issued(oid):
        raise ImaginaryObjectError(
            f"cannot assign core attribute {attribute!r} of imaginary"
            f" object {oid}; imaginary tuples derive from base data —"
            " update the base, or define a virtual attribute with an"
            " update translator"
        )
    provider = _owning_provider(view, oid)
    if provider is None:
        raise ViewUpdateError(f"no provider owns object {oid}")
    provider.update(oid, attribute, new_value)


def _owning_provider(view, oid: Oid):
    for provider in view._providers:
        if provider.contains_oid(oid):
            return provider
    return None
