"""Hide declarations.

§3 of the paper shows that relational projection is the *wrong* way to
hide information in an object-oriented view: projecting ``Employee``
onto [Name, Number, Age] also silently strips attributes that subclasses
add (a ``Manager``'s ``Budget``). The paper's remedy is an explicit
``hide`` command whose semantics is inheritance-aware:

    "the definitions of Salary in class Employee and all its subclasses
    are hidden from the view."

:class:`HideSet` records hide declarations and answers whether a given
*definition* (attribute + the class that wrote it) is hidden. Because
hiding applies to definitions, an attribute redefined in a subclass is
hidden along with the original, while an unrelated definition of the
same name higher up the hierarchy stays visible — resolution simply
falls back to it.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..engine.schema import Schema


class HideSet:
    """The hide declarations of one view."""

    def __init__(self):
        self._attributes: Set[Tuple[str, str]] = set()  # (class, attr)
        self._classes: Set[str] = set()

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def hide_attribute(self, class_name: str, attribute: str) -> None:
        """``hide attribute A in class C``: hides the definitions of A
        in C and all subclasses of C."""
        self._attributes.add((class_name, attribute))

    def hide_class(self, class_name: str) -> None:
        """``hide class C``: the class name becomes invisible (it cannot
        be queried); its objects remain members of visible superclasses."""
        self._classes.add(class_name)

    def unhide_attribute(self, class_name: str, attribute: str) -> None:
        self._attributes.discard((class_name, attribute))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def attribute_declarations(self) -> List[Tuple[str, str]]:
        return sorted(self._attributes)

    def class_hidden(self, class_name: str) -> bool:
        return class_name in self._classes

    def hidden_classes(self) -> List[str]:
        return sorted(self._classes)

    def definition_hidden(
        self, schema: Schema, origin_class: str, attribute: str
    ) -> bool:
        """True if the definition of ``attribute`` written in
        ``origin_class`` is hidden.

        A declaration ``hide attribute A in class C`` hides every
        definition of A written in C *or any subclass of C* — so the
        subtree below C exposes no definition of A of its own, exactly
        the paper's semantics.
        """
        for hidden_class, hidden_attr in self._attributes:
            if hidden_attr != attribute:
                continue
            if schema.isa(origin_class, hidden_class):
                return True
        return False

    def attribute_mentioned(self, attribute: str) -> bool:
        """True if any hide declaration names this attribute (used to
        pick the right error: hidden vs unknown)."""
        return any(attr == attribute for _, attr in self._attributes)

    def merge(self, other: "HideSet") -> None:
        """Adopt another view's hide declarations (view stacking: a
        view importing from a view sees the lower view's face)."""
        self._attributes |= other._attributes
        self._classes |= other._classes

    def copy(self) -> "HideSet":
        clone = HideSet()
        clone._attributes = set(self._attributes)
        clone._classes = set(self._classes)
        return clone
