"""View-maintenance counters.

:class:`ViewStats` observes every population-cache consultation in a
view — virtual classes, parameterized-family instances and imaginary
classes — and every event-driven invalidation. It is the measuring
instrument for experiment E13 (incremental maintenance): after a
mutation to a class no cached population depends on, lookups must be
pure cache hits (``full_recomputes == 0``).

Surfaced through the CLI (``.stats``) and the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ViewStats:
    """Counters for one view's cache behaviour.

    - ``hits`` — a cached population was served unchanged;
    - ``misses`` — a cached population could not be served as-is
      (absent or stale); every miss ends in a delta patch or a full
      recompute, so ``misses == delta_patches + full_recomputes``;
    - ``delta_patches`` — a stale population was repaired by re-testing
      only the buffered created/updated/deleted oids;
    - ``full_recomputes`` — a population was evaluated from scratch;
    - ``invalidations_by_class`` — how many mutation events arrived per
      (real) class name, i.e. which classes are driving invalidation;
    - ``plans_compiled`` / ``plan_cache_hits`` — how often a query run
      against this view had to be compiled to a fresh plan vs. served
      from the plan cache (see :mod:`repro.query.planner`);
    - ``index_probes`` / ``range_probes`` — how many executions used an
      index equality probe or an ordered-index range scan instead of a
      full extent scan;
    - ``snapshots_taken`` / ``versions_installed`` / ``batch_commits``
      / ``batched_ops`` / ``max_batch_size`` / ``conflict_retries`` —
      MVCC commit-path traffic of the view's provider databases,
      merged in via :meth:`merge_commit_stats` (see
      :mod:`repro.engine.versions`).
    """

    hits: int = 0
    misses: int = 0
    delta_patches: int = 0
    full_recomputes: int = 0
    invalidations_by_class: Dict[str, int] = field(default_factory=dict)
    plans_compiled: int = 0
    plan_cache_hits: int = 0
    index_probes: int = 0
    range_probes: int = 0
    snapshots_taken: int = 0
    versions_installed: int = 0
    batch_commits: int = 0
    batched_ops: int = 0
    max_batch_size: int = 0
    conflict_retries: int = 0

    def record_hit(self) -> None:
        self.hits += 1

    def record_delta_patch(self) -> None:
        self.misses += 1
        self.delta_patches += 1

    def record_full_recompute(self) -> None:
        self.misses += 1
        self.full_recomputes += 1

    def record_invalidation(self, class_name: str) -> None:
        self.invalidations_by_class[class_name] = (
            self.invalidations_by_class.get(class_name, 0) + 1
        )

    def record_plan_compiled(self) -> None:
        self.plans_compiled += 1

    def record_plan_hit(self) -> None:
        self.plan_cache_hits += 1

    def record_index_probe(self) -> None:
        self.index_probes += 1

    def record_range_probe(self) -> None:
        self.range_probes += 1

    def merge_commit_stats(self, totals: Dict[str, int]) -> None:
        """Overwrite the commit-path counters from aggregated
        :class:`~repro.engine.versions.CommitStats` totals (the
        databases own the live counters; the view mirrors them when
        stats are rendered)."""
        self.snapshots_taken = totals.get("snapshots_taken", 0)
        self.versions_installed = totals.get("versions_installed", 0)
        self.batch_commits = totals.get("batch_commits", 0)
        self.batched_ops = totals.get("batched_ops", 0)
        self.max_batch_size = totals.get("max_batch_size", 0)
        self.conflict_retries = totals.get("conflict_retries", 0)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able copy of every counter (the server ``stats`` op
        surfaces one per view under ``views``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "delta_patches": self.delta_patches,
            "full_recomputes": self.full_recomputes,
            "invalidations_by_class": dict(self.invalidations_by_class),
            "plans_compiled": self.plans_compiled,
            "plan_cache_hits": self.plan_cache_hits,
            "index_probes": self.index_probes,
            "range_probes": self.range_probes,
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.delta_patches = 0
        self.full_recomputes = 0
        self.invalidations_by_class.clear()
        self.plans_compiled = 0
        self.plan_cache_hits = 0
        self.index_probes = 0
        self.range_probes = 0
        self.snapshots_taken = 0
        self.versions_installed = 0
        self.batch_commits = 0
        self.batched_ops = 0
        self.max_batch_size = 0
        self.conflict_retries = 0

    def describe(self) -> str:
        lines = [
            f"cache hits:      {self.hits}",
            f"cache misses:    {self.misses}",
            f"delta patches:   {self.delta_patches}",
            f"full recomputes: {self.full_recomputes}",
            f"plans compiled:  {self.plans_compiled}",
            f"plan cache hits: {self.plan_cache_hits}",
            f"index probes:    {self.index_probes}",
            f"range probes:    {self.range_probes}",
        ]
        if self.versions_installed or self.snapshots_taken:
            lines.extend(
                [
                    f"snapshots taken:    {self.snapshots_taken}",
                    f"versions installed: {self.versions_installed}",
                    f"batch commits:      {self.batch_commits}"
                    f" ({self.batched_ops} ops,"
                    f" max {self.max_batch_size})",
                    f"conflict retries:   {self.conflict_retries}",
                ]
            )
        if self.invalidations_by_class:
            lines.append("invalidations by class:")
            for name in sorted(self.invalidations_by_class):
                lines.append(
                    f"  {name}: {self.invalidations_by_class[name]}"
                )
        return "\n".join(lines)
