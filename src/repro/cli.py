"""An interactive shell for databases and views.

Run ``python -m repro`` (optionally with ``--demo`` for sample data,
and ``--shards N`` to fan eligible scans out to N worker processes —
see ``docs/sharding.md``).
``python -m repro serve`` starts the network server and ``python -m
repro connect`` opens a remote shell against one (see
:mod:`repro.server`). The local shell accepts:

- view-definition statements (``create view …``, ``import …``,
  ``class … includes …``, ``hide …``, ``attribute …``) executed
  against the session catalog;
- queries (``select …``) evaluated against the current view (or the
  current database before any view exists);
- dot-commands: ``.help``, ``.databases``, ``.classes``, ``.schema C``,
  ``.extent C``, ``.explain Q``, ``.stats``, ``.statements``,
  ``.use NAME``, ``.load FILE``, ``.quit``.

The :class:`Session` object is the testable core: it maps one input
line (or statement) to printable output with no I/O of its own.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from .core.view import View
from .engine.objects import ObjectHandle, TupleValue
from .errors import ReproError
from .lang.executor import Catalog, run_script
from .query.planner import execute as plan_execute
from .query.planner import plan_cache_of

HELP = """\
Statements end with ';'. Anything starting with 'select' is a query.
Dot commands:
  .help               this text
  .databases          list catalog entries
  .use NAME           switch the current scope
  .classes            list classes of the current scope
  .schema CLASS       show a class's attributes and parents
  .extent CLASS       list the extent of a class
  .explain QUERY      EXPLAIN ANALYZE: run the query under tracing and
                      show the plan, per-conjunct access paths, row
                      counts, virtual-attribute evals and span timings
  .stats [reset]      maintenance, plan, commit, version and storage
                      counters of the scope
  .statements [N]     top-N statements by total time (calls, rows,
                      latency percentiles, plan-cache and scatter
                      verdicts); '.statements reset' clears it
  .begin              start a transaction on the current database
  .commit             commit the open transaction
  .abort              abort the open transaction (undo everything)
  .savepoint NAME     set a named savepoint inside the transaction
  .rollback NAME      undo back to a savepoint (which stays set)
  .release NAME       forget a savepoint, keeping its changes
  .checkpoint         force a storage checkpoint (paged databases)
  .load FILE          execute a script file
  .quit               leave the shell"""


class Session:
    """One shell session: a catalog plus a current scope."""

    def __init__(self, scopes: Optional[List] = None):
        self.catalog = Catalog(*(scopes or []))
        self.current = scopes[0] if scopes else None

    # ------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Execute one input line, returning printable output."""
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("."):
                return self._command(line)
            if line.rstrip(";").lstrip().lower().startswith("select"):
                return self._query(line.rstrip(";"))
            return self._statements(line)
        except ReproError as error:
            return f"error: {error}"
        except (SystemExit, KeyboardInterrupt):
            raise
        except Exception as error:
            # A session must survive any bad input: one malformed
            # statement (or a missing .load file, or a computed
            # attribute raising) must not kill a server connection.
            return f"error: {type(error).__name__}: {error}"

    # ------------------------------------------------------------------

    def _command(self, line: str) -> str:
        parts = line.split(None, 1)
        command = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command == ".help":
            return HELP
        if command == ".databases":
            names = self.catalog.names()
            current = getattr(self.current, "scope_name", None)
            return "\n".join(
                f"{'*' if name == current else ' '} {name}"
                for name in names
            ) or "(empty catalog)"
        if command == ".use":
            self.current = self.catalog.get(argument)
            return f"using {argument}"
        if command == ".classes":
            scope = self._require_scope()
            lines = []
            for name in sorted(scope.schema.class_names()):
                cdef = scope.schema.require(name)
                kind = cdef.kind.value
                lines.append(f"{name} ({kind})")
            return "\n".join(lines)
        if command == ".schema":
            return self._schema(argument)
        if command == ".extent":
            scope = self._require_scope()
            handles = [scope.get(oid) for oid in scope.extent(argument)]
            return "\n".join(self._render(h) for h in handles) or "(empty)"
        if command == ".explain":
            from .obs.explain import explain_analyze

            scope = self._require_scope()
            return explain_analyze(argument, scope)
        if command == ".stats":
            return self._stats(argument)
        if command == ".statements":
            from .obs import stats as statement_stats

            if argument == "reset":
                statement_stats.REGISTRY.reset()
                return "statement statistics reset"
            top = 10
            if argument:
                try:
                    top = max(1, int(argument))
                except ValueError:
                    return "usage: .statements [N|reset]"
            return statement_stats.REGISTRY.describe(top=top)
        if command in (
            ".begin", ".commit", ".abort",
            ".savepoint", ".rollback", ".release",
        ):
            return self._txn_command(command, argument)
        if command == ".checkpoint":
            scope = self._require_scope()
            storage = getattr(scope, "storage", None)
            if storage is None:
                return "error: current scope has no paged storage"
            info = storage.checkpoint()
            return (
                f"checkpoint {info['checkpoint_id']}"
                f" ({info['kind']}):"
                f" {info['pages']} page(s),"
                f" {info['bytes']} bytes,"
                f" journal tail {info['tail_batches']} batch(es)"
            )
        if command == ".load":
            with open(argument) as f:
                return self._statements(f.read())
        if command == ".quit":
            raise SystemExit(0)
        return f"unknown command: {command} (try .help)"

    def _schema(self, class_name: str) -> str:
        scope = self._require_scope()
        cdef = scope.schema.require(class_name)
        lines = [f"class {class_name} ({cdef.kind.value})"]
        parents = scope.schema.direct_parents(class_name)
        if parents:
            lines.append(f"  parents: {', '.join(parents)}")
        for name, adef in sorted(
            scope.schema.attributes_of(class_name).items()
        ):
            declared = (
                adef.declared_type.describe()
                if adef.declared_type is not None
                else "?"
            )
            kind = "computed" if adef.is_computed() else "stored"
            suffix = " [acquired]" if adef.acquired else ""
            lines.append(
                f"  {name}: {declared} ({kind}, from {adef.origin})"
                f"{suffix}"
            )
        return "\n".join(lines)

    def _stats(self, argument: str) -> str:
        from .engine.versions import (
            aggregate_commit_stats,
            aggregate_version_stats,
            commit_stats_sources,
            describe_commit_totals,
            describe_version_totals,
            version_stats_sources,
        )

        scope = self._require_scope()
        stats = getattr(scope, "stats", None)
        cache = plan_cache_of(scope)
        if argument == "reset":
            if stats is not None:
                stats.reset()
            cache.reset_counters()
            for source in commit_stats_sources(scope):
                source.reset()
            for registry in version_stats_sources(scope):
                registry.reset()
            storage = getattr(scope, "storage", None)
            if storage is not None:
                storage.buffer.stats.reset()
            return "stats reset"
        commit_totals = aggregate_commit_stats([scope])
        if stats is not None:
            # Views: ViewStats carries the plan counters and, merged
            # here, the commit counters of the underlying databases.
            stats.merge_commit_stats(commit_totals)
            output = stats.describe()
        else:
            output = cache.describe()
            if any(commit_totals.values()):
                output += f"\n{describe_commit_totals(commit_totals)}"
        version_totals = aggregate_version_stats([scope])
        if any(version_totals.values()):
            output += f"\n{describe_version_totals(version_totals)}"
        storage = getattr(scope, "storage", None)
        if storage is not None:
            output += f"\n{self._describe_storage(storage)}"
        return output

    @staticmethod
    def _describe_storage(storage) -> str:
        blocks = storage.storage_stats()
        buf, disk, ckpt = (
            blocks["buffer"], blocks["disk"], blocks["checkpoint"]
        )
        lines = [
            f"buffer pool:        {buf['pages_in_pool']}/"
            f"{buf['capacity']} pages"
            f" (hit ratio {buf['hit_ratio']:.2%},"
            f" hits {buf['hits']}, misses {buf['misses']},"
            f" evictions {buf['evictions']},"
            f" dirty flushes {buf['dirty_flushes']})",
            f"page file:          {disk['file_pages']} pages"
            f" ({disk['page_reads']} reads,"
            f" {disk['page_writes']} writes,"
            f" {disk['free_pages']} free)",
            f"checkpoints:        {ckpt['checkpoints_taken']}"
            f" ({ckpt['full_checkpoints']} full,"
            f" {ckpt['incremental_checkpoints']} incremental,"
            f" id {ckpt['checkpoint_id']},"
            f" last {ckpt['last_checkpoint_kind'] or 'none'}"
            f" {ckpt['last_checkpoint_bytes']} bytes,"
            f" journal tail {ckpt['journal_tail_batches']} batches,"
            f" replayed on open {ckpt['replayed_on_open']})",
        ]
        table = blocks.get("table")
        if table is not None:
            limit = table["resident_limit"]
            lines.append(
                f"object table:       {table['resident_objects']}/"
                f"{table['directory_objects']} resident"
                f" (limit {limit if limit is not None else 'none'},"
                f" faults {table['faults']},"
                f" faulted objects {table['faulted_objects']},"
                f" evicted {table['evicted_objects']})"
            )
        return "\n".join(lines)

    def _txn_command(self, command: str, argument: str) -> str:
        scope = self._require_scope()
        manager = getattr(scope, "txn_manager", None)
        if manager is None:
            if not hasattr(scope, "begin_batch"):
                return "error: transactions need a database scope"
            from .storage.transactions import TransactionManager

            manager = TransactionManager(scope)
        if command == ".begin":
            txn = manager.begin()
            return f"transaction {txn.txid} started"
        txn = manager.current
        if txn is None:
            return "error: no open transaction (use .begin)"
        if command == ".commit":
            txn.commit()
            return f"transaction {txn.txid} committed"
        if command == ".abort":
            txn.abort()
            return f"transaction {txn.txid} aborted"
        if not argument:
            return f"error: {command} needs a savepoint name"
        if command == ".savepoint":
            txn.savepoint(argument)
            return f"savepoint {argument}"
        if command == ".rollback":
            txn.rollback_to(argument)
            return f"rolled back to {argument}"
        txn.release(argument)
        return f"released {argument}"

    def _query(self, text: str) -> str:
        scope = self._require_scope()
        result = plan_execute(text, scope)
        if not isinstance(result, list):
            return self._render(result)
        if not result:
            return "(no results)"
        lines = [self._render(item) for item in result]
        lines.append(f"({len(result)} result(s))")
        return "\n".join(lines)

    def _statements(self, text: str) -> str:
        result = run_script(
            text,
            self.catalog,
            view=self.current if isinstance(self.current, View) else None,
        )
        if result.views:
            self.current = result.views[-1]
            return f"view {self.current.name} is current"
        return "ok"

    def _require_scope(self):
        if self.current is None:
            raise ReproError(
                "no current scope; create a view or .use a database"
            )
        return self.current

    def _render(self, value) -> str:
        if isinstance(value, ObjectHandle):
            try:
                cls = value.real_class
            except Exception:
                cls = "?"
            raw = self.current.raw_value(value.oid)
            inner = ", ".join(
                f"{k}={self._short(v)}" for k, v in sorted(raw.items())
            )
            return f"{cls}<{value.oid.space}:{value.oid.number}> {inner}"
        if isinstance(value, TupleValue):
            inner = ", ".join(
                f"{k}={self._short(v)}"
                for k, v in sorted(value.as_dict().items())
            )
            return f"[{inner}]"
        return repr(value)

    @staticmethod
    def _short(value) -> str:
        text = repr(value)
        return text if len(text) <= 40 else text[:37] + "..."


def demo_session() -> Session:
    """A session pre-loaded with the paper's demo data."""
    from .workloads import build_navy_db, build_people_db

    return Session([build_people_db(40, seed=1), build_navy_db(4, seed=2)])


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        from .server.server import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "connect":
        from .server.client import connect_main

        return connect_main(argv[1:])
    if argv and argv[0] == "trace":
        from .obs.render import trace_main

        return trace_main(argv[1:])
    shards = 0
    if "--shards" in argv:
        at = argv.index("--shards")
        try:
            shards = int(argv[at + 1])
        except (IndexError, ValueError):
            print("usage: --shards N", file=sys.stderr)
            return 2
        del argv[at:at + 2]
    if "--demo" in argv:
        session = demo_session()
        print("demo catalog:", ", ".join(session.catalog.names()))
    else:
        session = Session()
    executors = []
    if shards > 1:
        from .engine import Database
        from .exec import attach_executor

        for name in session.catalog.names():
            scope = session.catalog.get(name)
            if isinstance(scope, Database):
                executors.append(attach_executor(scope, shards))
        print(f"sharded execution: {shards} worker shards per database")
    # The interactive shell keeps statement statistics on so
    # ``.statements`` has data; scripts importing Session stay
    # un-instrumented unless they enable the registry themselves.
    from .obs import stats as statement_stats

    statement_stats.enable()
    print("repro shell — Objects and Views (SIGMOD 1991). '.help' for help.")
    buffer = ""
    try:
        while True:
            try:
                prompt = "....> " if buffer else "repro> "
                line = input(prompt)
            except (EOFError, KeyboardInterrupt):
                print()
                return 0
            if line.strip().startswith("."):
                output = session.execute(line)
                if output:
                    print(output)
                continue
            buffer += line + "\n"
            if ";" in line or line.strip().lower().startswith("select"):
                output = session.execute(buffer)
                buffer = ""
                if output:
                    print(output)
    finally:
        statement_stats.disable()
        for executor in executors:
            executor.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
