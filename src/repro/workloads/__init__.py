"""Deterministic synthetic workloads for examples, tests and benches.

The paper has no datasets (it predates evaluation sections); these
generators produce the populations its examples describe: people,
employees/managers, ships, insurance policies, and retail goods.
"""

from .insurance import build_policy_relational, build_staff_db
from .navy import (
    ARMAMENT_KINDS,
    CARGO_KINDS,
    MERCHANT_CLASSES,
    MILITARY_CLASSES,
    build_navy_db,
)
from .people import (
    build_employment_db,
    build_people_db,
    define_person_class,
    random_person_update,
)
from .retail import add_sellable_class, build_retail_db

__all__ = [
    "ARMAMENT_KINDS",
    "CARGO_KINDS",
    "MERCHANT_CLASSES",
    "MILITARY_CLASSES",
    "add_sellable_class",
    "build_employment_db",
    "build_navy_db",
    "build_people_db",
    "build_policy_relational",
    "build_retail_db",
    "build_staff_db",
    "define_person_class",
    "random_person_update",
]
