"""Deterministic people workloads.

Generators for the running example of the paper: persons with names,
ages, incomes and addresses; an employment variant with an
``Employee``/``Manager`` hierarchy and companies (§2's overloaded
``Address``, §3's salary hiding). All generators take a seed, so every
test and benchmark run sees identical data.
"""

from __future__ import annotations

import random
from typing import List

from ..engine.database import Database
from ..engine.objects import ObjectHandle

FIRST_NAMES = [
    "Alice", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Henry",
    "Iris", "Jack", "Karen", "Leo", "Maggy", "Nina", "Oscar", "Pam",
    "Quinn", "Rita", "Sam", "Tina",
]
CITIES = [
    "Paris", "London", "Rome", "Berlin", "Madrid", "Vienna", "Lisbon",
    "Dublin", "Oslo", "Athens",
]
COUNTRIES = [
    "France", "UK", "Italy", "Germany", "Spain", "Austria", "Portugal",
    "Ireland", "Norway", "Greece",
]
STREETS = ["Main St", "High St", "Rue X", "Downing St", "Elm St"]


def define_person_class(db: Database) -> None:
    """The ``Person`` class used throughout the paper's examples."""
    db.define_class(
        "Person",
        attributes={
            "Name": "string",
            "Age": "integer",
            "Sex": "string",
            "Income": "integer",
            "City": "string",
            "Street": "string",
            "Zip_Code": "string",
            "Country": "string",
            "Spouse": "Person",
            "Children": {"Person"},
        },
    )


def build_people_db(
    count: int,
    seed: int = 0,
    name: str = "Staff",
    married_fraction: float = 0.4,
) -> Database:
    """A database of ``count`` persons with deterministic demographics.

    A ``married_fraction`` of the population is paired into couples
    (mutual ``Spouse`` references), and married couples receive shared
    ``Children`` drawn from the under-18 population.
    """
    rng = random.Random(seed)
    db = Database(name)
    define_person_class(db)
    people: List[ObjectHandle] = []
    for index in range(count):
        city_index = rng.randrange(len(CITIES))
        person = db.create(
            "Person",
            Name=f"{FIRST_NAMES[index % len(FIRST_NAMES)]}_{index}",
            Age=rng.randrange(0, 95),
            Sex=rng.choice(["male", "female"]),
            Income=rng.randrange(0, 100_000),
            City=CITIES[city_index],
            Street=f"{rng.randrange(1, 200)} {rng.choice(STREETS)}",
            Zip_Code=f"{rng.randrange(10000, 99999)}",
            Country=COUNTRIES[city_index],
        )
        people.append(person)
    adults = [p for p in people if p.Age >= 18]
    minors = [p for p in people if p.Age < 18]
    rng.shuffle(adults)
    couple_count = int(len(adults) * married_fraction) // 2
    for pair_index in range(couple_count):
        husband = adults[2 * pair_index]
        wife = adults[2 * pair_index + 1]
        db.update(husband, "Spouse", wife)
        db.update(wife, "Spouse", husband)
        if minors and rng.random() < 0.6:
            children = {
                rng.choice(minors).oid
                for _ in range(rng.randrange(1, 4))
            }
            db.update(husband, "Children", children)
            db.update(wife, "Children", children)
    return db


def build_employment_db(
    count: int, seed: int = 0, name: str = "Company_DB"
) -> Database:
    """Persons, employees, managers and companies (§2/§3 examples).

    ``Manager`` is a subclass of ``Employee`` adding ``Budget``; the
    classic setting for the hide-vs-project experiment (E7).
    """
    rng = random.Random(seed)
    db = Database(name)
    db.define_class(
        "Company",
        attributes={"Name": "string", "Address": "string"},
    )
    db.define_class(
        "Person",
        attributes={
            "Name": "string",
            "Age": "integer",
            "City": "string",
        },
    )
    db.define_class(
        "Employee",
        parents=["Person"],
        attributes={
            "Number": "integer",
            "Salary": "integer",
            "Company": "Company",
        },
    )
    db.define_class(
        "Manager",
        parents=["Employee"],
        attributes={"Budget": "integer"},
    )
    companies = [
        db.create(
            "Company",
            Name=f"Company_{i}",
            Address=f"{rng.randrange(1, 99)} {rng.choice(STREETS)}",
        )
        for i in range(max(1, count // 50))
    ]
    for index in range(count):
        roll = rng.random()
        base = {
            "Name": f"{FIRST_NAMES[index % len(FIRST_NAMES)]}_{index}",
            "Age": rng.randrange(18, 70),
            "City": rng.choice(CITIES),
        }
        if roll < 0.2:
            db.create("Person", base)
        elif roll < 0.9:
            db.create(
                "Employee",
                dict(
                    base,
                    Number=index,
                    Salary=rng.randrange(20_000, 90_000),
                    Company=rng.choice(companies),
                ),
            )
        else:
            db.create(
                "Manager",
                dict(
                    base,
                    Number=index,
                    Salary=rng.randrange(60_000, 200_000),
                    Company=rng.choice(companies),
                    Budget=rng.randrange(100_000, 5_000_000),
                ),
            )
    return db


def random_person_update(
    db: Database, rng: random.Random, attribute: str = "Age"
) -> None:
    """Apply one random update to the people database (bench helper)."""
    oids = list(db.extent("Person"))
    if not oids:
        return
    oid = oids[rng.randrange(len(oids))]
    if attribute == "Age":
        db.update(oid, "Age", rng.randrange(0, 95))
    elif attribute == "City":
        city_index = rng.randrange(len(CITIES))
        db.update(oid, "City", CITIES[city_index])
    elif attribute == "Income":
        db.update(oid, "Income", rng.randrange(0, 100_000))
    else:
        raise ValueError(f"unsupported update attribute: {attribute!r}")
