"""The insurance workload (Examples 5 and 6 of the paper).

A relational ``Policy`` table whose rows flatten person data — the
setting in which the paper contrasts a *well-designed* imaginary view
(addresses as objects, identity keyed on the address fields) with a
*poorly designed* one (clients keyed on, among others, their address,
so moving house changes a client's identity).
"""

from __future__ import annotations

import random
from typing import List

from ..engine.database import Database
from ..relational.relation import RelationalDatabase

COVERAGES = ["basic", "standard", "full", "premium"]
STREETS = ["Main St", "High St", "Downing St", "Elm St", "Oak Ave"]
CITIES = ["Paris", "London", "Rome", "Berlin", "Madrid"]


def build_policy_relational(
    count: int, seed: int = 0, name: str = "Insurance"
) -> RelationalDatabase:
    """The ``Policy`` relation of Example 6."""
    rng = random.Random(seed)
    rdb = RelationalDatabase(name)
    policy = rdb.create_relation(
        "Policy",
        [
            "Policy_Number",
            "Coverage",
            "Cost",
            "Name",
            "Address",
            "Age",
            "SS#",
        ],
    )
    for number in range(1, count + 1):
        policy.insert(
            Policy_Number=number,
            Coverage=rng.choice(COVERAGES),
            Cost=rng.randrange(50, 500),
            Name=f"Client_{number}",
            Address=(
                f"{rng.randrange(1, 200)} {rng.choice(STREETS)},"
                f" {rng.choice(CITIES)}"
            ),
            Age=rng.randrange(18, 90),
            **{"SS#": 100_000 + number},
        )
    return rdb


def build_staff_db(count: int, seed: int = 0, name: str = "Staff") -> Database:
    """The ``Staff`` database of Example 5: persons whose address is
    flattened into City/Street/Number attributes."""
    rng = random.Random(seed)
    db = Database(name)
    db.define_class(
        "Person",
        attributes={
            "Name": "string",
            "City": "string",
            "Street": "string",
            "Number": "integer",
            "Age": "integer",
        },
    )
    # Make addresses shareable: draw from a limited pool so several
    # persons live at the same address (the point of Example 5).
    pool: List[tuple] = [
        (
            rng.choice(CITIES),
            rng.choice(STREETS),
            rng.randrange(1, 40),
        )
        for _ in range(max(1, count // 3))
    ]
    for index in range(count):
        city, street, number = rng.choice(pool)
        db.create(
            "Person",
            Name=f"Person_{index}",
            City=city,
            Street=street,
            Number=number,
            Age=rng.randrange(0, 95),
        )
    return db
