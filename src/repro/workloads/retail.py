"""The retail workload (behavioral generalization, §4.1/§4.2).

Classes of things for sale — each with ``Price`` and ``Discount`` — plus
distractor classes without them. Used by experiment E4 to compare the
enumerated ``On_Sale_Bis`` definition with the behavioral ``On_Sale``
definition under schema evolution.
"""

from __future__ import annotations

import random
from ..engine.database import Database
from ..engine.types import declare_atom

SELLABLE_BASE = ["Car", "House", "Company"]
DISTRACTORS = ["Contract", "Review", "Complaint"]


def build_retail_db(
    objects_per_class: int = 10,
    extra_sellable: int = 0,
    seed: int = 0,
    name: str = "Retail",
) -> Database:
    """Cars, houses and companies for sale, plus non-sellable classes.

    ``extra_sellable`` adds further sellable classes (``Sellable_0``,
    ``Sellable_1``, …) so the E4 sweep can grow the schema.
    """
    declare_atom("dollar")
    rng = random.Random(seed)
    db = Database(name)
    for class_name in SELLABLE_BASE:
        _define_sellable(db, class_name)
    for index in range(extra_sellable):
        _define_sellable(db, f"Sellable_{index}")
    for class_name in DISTRACTORS:
        db.define_class(
            class_name,
            attributes={"Title": "string", "Body": "string"},
        )
    for cdef in list(db.schema):
        for serial in range(objects_per_class):
            if cdef.name in DISTRACTORS:
                db.create(
                    cdef.name,
                    Title=f"{cdef.name}_{serial}",
                    Body="lorem",
                )
            else:
                db.create(
                    cdef.name,
                    Label=f"{cdef.name}_{serial}",
                    Price=rng.randrange(1_000, 1_000_000),
                    Discount=rng.randrange(0, 30),
                )
    return db


def _define_sellable(db: Database, class_name: str) -> None:
    db.define_class(
        class_name,
        attributes={
            "Label": "string",
            "Price": "dollar",
            "Discount": "integer",
        },
    )


def add_sellable_class(
    db: Database, index: int, objects: int = 5, seed: int = 0
) -> str:
    """Define one more sellable class with some instances (the schema
    evolution step of E4). Returns the new class name."""
    rng = random.Random(seed + index)
    class_name = f"New_Sellable_{index}"
    _define_sellable(db, class_name)
    for serial in range(objects):
        db.create(
            class_name,
            Label=f"{class_name}_{serial}",
            Price=rng.randrange(1_000, 1_000_000),
            Discount=rng.randrange(0, 30),
        )
    return class_name
