"""The Navy workload (§4.1/§4.2's ship examples).

A ``Ship`` hierarchy with merchant classes carrying ``Cargo`` and
military classes carrying ``Armament`` — the substrate of the
generalization and upward-inheritance examples (``Merchant_Vessel``,
``Military_Vessel``, ``Boat``).
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from ..engine.database import Database

MERCHANT_CLASSES = ["Tanker", "Trawler", "Freighter", "Ferry", "Barge"]
MILITARY_CLASSES = ["Frigate", "Cruiser", "Destroyer", "Mine_Sweeper"]
CARGO_KINDS = ["oil", "fish", "grain", "containers", "cars"]
ARMAMENT_KINDS = ["guns", "missiles", "torpedoes", "depth charges"]


def build_navy_db(
    ships_per_class: int = 10,
    seed: int = 0,
    name: str = "Navy",
    merchant_classes: Sequence[str] = ("Tanker", "Trawler"),
    military_classes: Sequence[str] = ("Frigate", "Cruiser"),
) -> Database:
    """Ships with the classic four (or more) subclasses.

    Every subclass of ``Ship`` gets ``ships_per_class`` instances;
    merchant classes share the ``Cargo`` attribute, military classes
    share ``Armament`` — so upward inheritance has something to find.
    """
    rng = random.Random(seed)
    db = Database(name)
    db.define_class(
        "Ship",
        attributes={"Name": "string", "Tonnage": "integer"},
    )
    for class_name in merchant_classes:
        db.define_class(
            class_name,
            parents=["Ship"],
            attributes={"Cargo": "string", "Capacity": "integer"},
        )
    for class_name in military_classes:
        db.define_class(
            class_name,
            parents=["Ship"],
            attributes={"Armament": "string", "Crew": "integer"},
        )
    serial = 0
    for class_name in list(merchant_classes) + list(military_classes):
        for _ in range(ships_per_class):
            serial += 1
            extra: Dict[str, object]
            if class_name in merchant_classes:
                extra = {
                    "Cargo": rng.choice(CARGO_KINDS),
                    "Capacity": rng.randrange(1_000, 100_000),
                }
            else:
                extra = {
                    "Armament": rng.choice(ARMAMENT_KINDS),
                    "Crew": rng.randrange(50, 500),
                }
            db.create(
                class_name,
                dict(
                    {
                        "Name": f"{class_name}_{serial}",
                        "Tonnage": rng.randrange(500, 200_000),
                    },
                    **extra,
                ),
            )
    return db
