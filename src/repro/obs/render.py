"""Rendering span trees as text, and the ``repro trace`` subcommand.

One renderer serves three surfaces — ``EXPLAIN ANALYZE`` output, the
slow-query log, and ``repro trace file.jsonl`` (pretty-printing a
dump exported from the trace ring) — so a span tree reads the same
everywhere::

    trace t000042 12.410ms — request {kind=read, op=execute}
    ├─ wire.read 0.030ms
    ├─ plan 0.010ms {verdict=hit}
    ├─ execute 11.900ms
    │  └─ virtual_attr.eval ×40 2.100ms {attribute=Address, class=Person}
    └─ wire.write 0.050ms
"""

from __future__ import annotations

import json
from typing import List, Optional


def format_span_line(span_dict: dict) -> str:
    """One span as ``name ×count 1.234ms {attrs}``.

    Spans shipped back from shard workers carry a ``pid`` attribute
    (and usually a ``shard`` index); those render as a bracketed
    ``[shard N pid M]`` origin label so remote subtrees are obvious at
    a glance in a stitched trace.
    """
    parts = [str(span_dict.get("name", "?"))]
    count = span_dict.get("count", 1)
    if count != 1:
        parts.append(f"×{count}")
    parts.append(f"{float(span_dict.get('ms', 0.0)):.3f}ms")
    attrs = span_dict.get("attrs")
    if attrs and "pid" in attrs:
        attrs = dict(attrs)
        pid = attrs.pop("pid")
        shard = attrs.pop("shard", None)
        if shard is None:
            parts.append(f"[pid {pid}]")
        else:
            parts.append(f"[shard {shard} pid {pid}]")
    if attrs:
        inner = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        parts.append(f"{{{inner}}}")
    return " ".join(parts)


def render_span_tree(span_dict: dict, prefix: str = "") -> List[str]:
    """The span's children as box-drawn tree lines (the span itself is
    rendered by the caller — as the trace header or a parent line)."""
    lines: List[str] = []
    children = span_dict.get("children") or []
    for index, child in enumerate(children):
        last = index == len(children) - 1
        branch = "└─ " if last else "├─ "
        lines.append(f"{prefix}{branch}{format_span_line(child)}")
        extension = "   " if last else "│  "
        lines.extend(render_span_tree(child, prefix + extension))
    return lines


def render_trace(trace_dict: dict) -> str:
    """A whole trace: header line plus the span tree."""
    root = trace_dict.get("root") or {}
    header = (
        f"trace {trace_dict.get('trace_id', '?')}"
        f" {float(trace_dict.get('duration_ms', root.get('ms', 0.0))):.3f}ms"
        f" — {format_span_line(root)}"
    )
    return "\n".join([header] + render_span_tree(root))


def render_slow_entry(entry: dict) -> str:
    """One slow-query-log entry: the headline facts, then the tree."""
    lines = [
        f"slow query {entry.get('trace_id', '?')}:"
        f" {float(entry.get('duration_ms', 0.0)):.3f}ms"
        f" (op={entry.get('op')})"
    ]
    if entry.get("statement"):
        lines.append(f"  statement: {entry['statement']}")
    if entry.get("plan"):
        lines.append(f"  plan: {entry['plan']}")
    trace = entry.get("trace")
    if trace:
        lines.append("  " + render_trace(trace).replace("\n", "\n  "))
    return "\n".join(lines)


def trace_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace FILE.jsonl`` — pretty-print an exported span-tree
    dump (one JSON trace per line, as written by
    :meth:`~repro.obs.collect.TraceRing.dump_jsonl` or collected from
    the ``traces`` wire op)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro trace", description=trace_main.__doc__
    )
    parser.add_argument("file", help="a .jsonl trace dump")
    args = parser.parse_args(argv)

    status = 0
    try:
        stream = open(args.file)
    except OSError as error:
        print(f"cannot open {args.file}: {error}")
        return 1
    with stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                trace_dict = json.loads(line)
            except json.JSONDecodeError as error:
                print(f"line {number}: not valid JSON ({error})")
                status = 1
                continue
            print(render_trace(trace_dict))
            print()
    return status
