"""Thread-local tracing: nested spans with near-zero disabled cost.

A *trace* is a tree of timed spans describing one logical operation —
one server request, one ``EXPLAIN ANALYZE`` run. Spans carry a name
from a small fixed vocabulary (``plan``, ``compile``, ``index_probe``,
``population.delta_patch``, ``population.recompute``,
``virtual_attr.eval``, ``commit.install``, ``commit.lock_wait``,
``group_commit.wait``, ``wire.read``, ``wire.write``) plus free-form
attributes (class name, plan-cache verdict, rows scanned vs. returned).

The design constraint is the *disabled* path: instrumentation is
threaded through the planner, the view-maintenance machinery and the
commit path — all hot. Every hook therefore checks the module-level
:data:`ENABLED` flag before allocating anything; hot call sites
additionally guard with ``if trace.ENABLED:`` inline so the disabled
cost is one global load and a branch (the same idiom as
``ACTIVE_TRACKERS`` in :mod:`repro.engine.tracking`). The E15d bench
guard (`benchmarks/bench_e15_query_compilation.py --guard`) holds that
cost under 3%.

Activation is two-level:

- :func:`activate` / :func:`deactivate` flip :data:`ENABLED` globally
  (reference-counted — the server holds an activation for its
  lifetime, ``EXPLAIN ANALYZE`` holds one per run);
- :func:`trace_context` arms collection *on the calling thread*: spans
  attach only while a trace is active there, so an armed server thread
  doing untraced work still pays almost nothing.

Trace ids propagate across the wire: a client may send a ``trace``
field on a request frame and the server adopts it as the trace id, so
the server-side span tree attaches to the client's request (see
``docs/observability.md``).

Repeated fine-grained spans (``virtual_attr.eval`` per attribute
access, ``commit.lock_wait`` per batched mutation) coalesce under
their parent into one node carrying a count and a summed duration —
a query evaluating one computed attribute over 10,000 objects yields
one ``×10000`` node, not 10,000 nodes. Past :data:`SPAN_CAP` spans,
*every* name coalesces, bounding trace memory.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

# The module-level gate. Hot call sites check this before touching
# anything else; it is True while at least one activation is held.
ENABLED = False

# Span names that always merge into one counted node per parent.
COALESCED = frozenset({"virtual_attr.eval", "commit.lock_wait"})

# Past this many spans in one trace, every new span coalesces by name.
SPAN_CAP = 2000

_activations = 0
_activation_lock = threading.Lock()
_tls = threading.local()
_trace_ids = itertools.count(1)


def activate() -> None:
    """Hold one activation of the tracing machinery (re-entrant)."""
    global ENABLED, _activations
    with _activation_lock:
        _activations += 1
        ENABLED = True


def deactivate() -> None:
    """Release one activation; the last release disables tracing."""
    global ENABLED, _activations
    with _activation_lock:
        if _activations > 0:
            _activations -= 1
        ENABLED = _activations > 0


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "attrs", "duration", "count", "children")

    def __init__(self, name: str, attrs: Optional[dict] = None):
        self.name = name
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}
        self.duration = 0.0
        self.count = 1
        self.children: List[Span] = []

    def set(self, **attrs) -> "Span":
        """Attach attributes (e.g. a verdict known only mid-span)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        out: Dict[str, object] = {
            "name": self.name,
            "ms": round(self.duration * 1e3, 3),
        }
        if self.count != 1:
            out["count"] = self.count
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


NOOP = _NoopSpan()


class Trace:
    """One span tree plus its identity and wall-clock anchor."""

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        attrs: Optional[dict] = None,
    ):
        self.trace_id = trace_id or f"t{next(_trace_ids):06d}"
        self.root = Span(name, attrs)
        self.started_at = time.time()
        self.span_count = 1
        # Per-parent coalescing tables, keyed by (name, attr items).
        self._coalesced: Dict[int, Dict[tuple, Span]] = {}

    @property
    def duration(self) -> float:
        return self.root.duration

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "ts": round(self.started_at, 3),
            "duration_ms": round(self.root.duration * 1e3, 3),
            "root": self.root.to_dict(),
        }

    # ------------------------------------------------------------------

    def attach(self, parent: Span, span: Span) -> None:
        """Add a finished span under ``parent``, coalescing duplicates."""
        if span.name in COALESCED or self.span_count >= SPAN_CAP:
            if span.name in COALESCED:
                key = (span.name, tuple(sorted(
                    (k, v) for k, v in span.attrs.items()
                    if isinstance(v, (str, int, bool))
                )))
            else:
                key = (span.name, ())
            table = self._coalesced.setdefault(id(parent), {})
            node = table.get(key)
            if node is not None:
                node.count += 1
                node.duration += span.duration
                return
            table[key] = span
        parent.children.append(span)
        self.span_count += 1


class _LiveSpan:
    """Context manager for one span on the calling thread's trace."""

    __slots__ = ("_span", "_trace", "_stack", "_start")

    def __init__(self, trace: Trace, stack: List[Span], name: str,
                 attrs: dict):
        self._trace = trace
        self._stack = stack
        self._span = Span(name, attrs)
        self._start = 0.0

    def __enter__(self) -> Span:
        self._stack.append(self._span)
        self._start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, *exc) -> bool:
        self._span.duration = time.perf_counter() - self._start
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        stack = self._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        parent = stack[-1] if stack else self._trace.root
        self._trace.attach(parent, self._span)
        return False


def span(name: str, **attrs):
    """A context manager timing one span of the current trace.

    Returns the shared no-op when tracing is disabled or no trace is
    active on this thread. Hot call sites should pre-check
    ``trace.ENABLED`` and avoid even this call.
    """
    if not ENABLED:
        return NOOP
    current = getattr(_tls, "trace", None)
    if current is None:
        return NOOP
    return _LiveSpan(current, _tls.stack, name, attrs)


def add_span(name: str, seconds: float, **attrs) -> None:
    """Record an already-finished span (duration measured externally,
    e.g. a socket read that completed before the trace started)."""
    if not ENABLED:
        return
    current = getattr(_tls, "trace", None)
    if current is None:
        return
    finished = Span(name, attrs)
    finished.duration = seconds
    stack = _tls.stack
    current.attach(stack[-1] if stack else current.root, finished)


def current_trace() -> Optional[Trace]:
    """The trace active on this thread, if any."""
    if not ENABLED:
        return None
    return getattr(_tls, "trace", None)


def span_from_dict(data: dict) -> Span:
    """Rebuild a span tree from its :meth:`Span.to_dict` form.

    The inverse of ``to_dict`` up to the millisecond rounding it
    applies — used by the scatter coordinator to re-attach worker span
    trees shipped inside RBP1 task replies
    (:mod:`repro.exec.workers`)."""
    span = Span(str(data.get("name", "?")))
    span.duration = float(data.get("ms", 0.0)) / 1e3
    count = data.get("count")
    if isinstance(count, int) and count > 1:
        span.count = count
    attrs = data.get("attrs")
    if isinstance(attrs, dict):
        span.attrs.update(attrs)
    for child in data.get("children") or ():
        if isinstance(child, dict):
            span.children.append(span_from_dict(child))
    return span


def _tree_size(span: Span) -> int:
    return 1 + sum(_tree_size(child) for child in span.children)


def attach_span(span: Span) -> None:
    """Attach an externally finished span — children and all — under
    the current stack position.

    The stitching primitive: a ``scatter.shard`` span carrying a
    worker's shipped subtree lands in the live trace verbatim (no
    coalescing — each shard must stay its own node; worker-side
    ``SPAN_CAP`` already bounds the subtree)."""
    if not ENABLED:
        return
    current = getattr(_tls, "trace", None)
    if current is None:
        return
    stack = _tls.stack
    parent = stack[-1] if stack else current.root
    parent.children.append(span)
    current.span_count += _tree_size(span)


def reset_process_state() -> None:
    """Forget inherited activations and any armed thread state.

    A forked worker process inherits the parent's :data:`ENABLED` flag
    and the forking thread's live trace; shard workers call this on
    entry so untraced tasks ship nothing and traced tasks collect into
    a fresh tree of their own."""
    global ENABLED, _activations
    with _activation_lock:
        _activations = 0
        ENABLED = False
    _tls.trace = None
    _tls.stack = None


@contextmanager
def trace_context(
    name: str, trace_id: Optional[str] = None, **attrs
) -> Iterator[Trace]:
    """Arm collection on this thread: one root span, timed end to end.

    Nests: an inner context (e.g. ``EXPLAIN ANALYZE`` issued over a
    traced server request) collects into its own trace and the outer
    one resumes on exit.
    """
    t = Trace(name, trace_id, attrs)
    prev_trace = getattr(_tls, "trace", None)
    prev_stack = getattr(_tls, "stack", None)
    _tls.trace = t
    _tls.stack = [t.root]
    start = time.perf_counter()
    try:
        yield t
    finally:
        t.root.duration = time.perf_counter() - start
        _tls.trace = prev_trace
        _tls.stack = prev_stack


@contextmanager
def adopt(trace: Optional[Trace]) -> Iterator[None]:
    """Run a block on behalf of another thread's trace.

    The group committer executes follower write thunks on the leader's
    thread; adopting the follower's trace makes the commit spans land
    in the *requester's* tree. No-op when ``trace`` is None or already
    current (the leader executing its own thunk).
    """
    if trace is None or not ENABLED:
        yield
        return
    prev_trace = getattr(_tls, "trace", None)
    if prev_trace is trace:
        yield
        return
    prev_stack = getattr(_tls, "stack", None)
    _tls.trace = trace
    _tls.stack = [trace.root]
    try:
        yield
    finally:
        _tls.trace = prev_trace
        _tls.stack = prev_stack
