"""Observability: tracing, EXPLAIN ANALYZE, and metrics export.

- :mod:`repro.obs.trace` — thread-local span trees with a near-zero
  disabled cost, threaded through the planner, view maintenance, the
  commit path, the storage engine, shard workers and the wire
  protocol;
- :mod:`repro.obs.stats` — the statement-statistics registry
  (per-statement calls, rows, latency percentiles, plan-cache and
  scatter verdicts);
- :mod:`repro.obs.collect` — trace ring, slow-query log, span
  histograms (:class:`~repro.obs.collect.Observability` bundles them);
- :mod:`repro.obs.explain` — ``EXPLAIN ANALYZE`` over a traced run;
- :mod:`repro.obs.render` — span trees as text, and ``repro trace``;
- :mod:`repro.obs.export` — Prometheus text exposition + the
  ``--metrics-port`` HTTP endpoint.

Attributes resolve lazily (PEP 562): the engine and planner import
``repro.obs.trace`` from hot paths, while :mod:`repro.obs.explain`
imports the planner back — eager imports here would make that a cycle.

See ``docs/observability.md``.
"""

from . import trace  # no repro-internal deps; safe to load eagerly

_EXPORTS = {
    "StatementRegistry": ("stats", "StatementRegistry"),
    "Observability": ("collect", "Observability"),
    "SlowQueryLog": ("collect", "SlowQueryLog"),
    "SpanHistogramSet": ("collect", "SpanHistogramSet"),
    "TraceRing": ("collect", "TraceRing"),
    "explain_analyze": ("explain", "explain_analyze"),
    "MetricsHTTPServer": ("export", "MetricsHTTPServer"),
    "render_prometheus": ("export", "render_prometheus"),
    "render_slow_entry": ("render", "render_slow_entry"),
    "render_trace": ("render", "render_trace"),
    "trace_main": ("render", "trace_main"),
}

__all__ = ["trace"] + sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value
