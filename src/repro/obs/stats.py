"""Statement-level statistics: the ``pg_stat_statements`` shape.

A process-global :class:`StatementRegistry` accumulates one entry per
*statement shape* — keyed on the planner's canonical query text (the
same :func:`~repro.query.printer.format_query` string the plan cache
keys on) plus the scope kind it ran against — recording calls, rows
returned/scanned, total/max latency with a p50/p99 reservoir,
plan-cache verdicts and scatter-vs-serial counts. It answers the
question the per-request trace ring cannot: *which statement shape is
eating the server*, aggregated across every connection and thread.

Like :mod:`repro.obs.trace`, the disabled path is the design
constraint: recording is threaded through
:func:`repro.query.planner.execute`, so the hook pre-checks the
module-level :data:`ENABLED` flag (reference-counted via
:func:`enable`/:func:`disable` — the server holds one enablement for
its lifetime). The E15d bench guard runs with the registry enabled to
keep the combined overhead honest.

Surfaced four ways: the shell's ``.statements`` dot-command, the
``statements`` wire op (both servers), ``repro_statement_*``
Prometheus top-N series (:mod:`repro.obs.export`) and
:func:`repro.bench.statements_table`.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from typing import Dict, List, Optional, Tuple

# The module-level gate, checked by the planner before anything else.
ENABLED = False

# Bounded footprint: at most this many distinct statement shapes; past
# it, the cheapest entry (least total time) is evicted per insert.
REGISTRY_CAP = 512

# Latency samples kept per entry for the percentile estimates.
RESERVOIR_CAP = 512

_enablements = 0
_enable_lock = threading.Lock()
_reservoir_seeds = itertools.count(1)
_tls = threading.local()


def enable() -> None:
    """Hold one enablement of statement recording (re-entrant)."""
    global ENABLED, _enablements
    with _enable_lock:
        _enablements += 1
        ENABLED = True


def disable() -> None:
    """Release one enablement; the last release stops recording."""
    global ENABLED, _enablements
    with _enable_lock:
        if _enablements > 0:
            _enablements -= 1
        ENABLED = _enablements > 0


# ----------------------------------------------------------------------
# Scatter observation channel
# ----------------------------------------------------------------------
#
# The scatter path (repro.query.shard) knows how many rows the shards
# scanned; the planner hook that records the statement does not. The
# thread-local slot below carries that one number upward without
# threading a parameter through the whole call chain.


def note_scatter(scanned: int) -> None:
    """Record that the current statement scattered, scanning
    ``scanned`` rows across its shards (accumulates: an aggregate
    rewrite may scatter several subqueries for one statement)."""
    if not ENABLED:
        return
    previous = getattr(_tls, "scatter_scanned", None)
    _tls.scatter_scanned = scanned + (previous or 0)


def take_scatter() -> Optional[int]:
    """Consume the scatter observation for the current statement —
    ``None`` when it did not scatter."""
    value = getattr(_tls, "scatter_scanned", None)
    _tls.scatter_scanned = None
    return value


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class _Reservoir:
    """A bounded latency sample (Vitter's algorithm R), deterministic
    per instance — the same idiom as
    :class:`repro.server.metrics.LatencyReservoir`, duplicated here so
    the obs package stays import-cycle-free from the server."""

    __slots__ = ("_cap", "_samples", "_seen", "_random")

    def __init__(self, cap: int = RESERVOIR_CAP):
        self._cap = cap
        self._samples: List[float] = []
        self._seen = 0
        self._random = random.Random(next(_reservoir_seeds))

    def record(self, seconds: float) -> None:
        self._seen += 1
        if len(self._samples) < self._cap:
            self._samples.append(seconds)
            return
        slot = self._random.randrange(self._seen)
        if slot < self._cap:
            self._samples[slot] = seconds

    def percentile(self, fraction: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(
            len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5)
        )
        return ordered[index]


class StatementEntry:
    """Accumulated statistics for one (statement text, scope kind)."""

    __slots__ = (
        "text", "kind", "calls", "errors", "rows_returned",
        "rows_scanned", "total_seconds", "max_seconds", "plan_hits",
        "plans_compiled", "scattered", "serial", "_reservoir",
    )

    def __init__(self, text: str, kind: str):
        self.text = text
        self.kind = kind
        self.calls = 0
        self.errors = 0
        self.rows_returned = 0
        self.rows_scanned = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.plan_hits = 0
        self.plans_compiled = 0
        self.scattered = 0
        self.serial = 0
        self._reservoir = _Reservoir()

    def snapshot(self) -> dict:
        mean = self.total_seconds / self.calls if self.calls else 0.0
        return {
            "text": self.text,
            "kind": self.kind,
            "calls": self.calls,
            "errors": self.errors,
            "rows_returned": self.rows_returned,
            "rows_scanned": self.rows_scanned,
            "total_ms": round(self.total_seconds * 1e3, 3),
            "mean_ms": round(mean * 1e3, 3),
            "max_ms": round(self.max_seconds * 1e3, 3),
            "p50_ms": round(self._reservoir.percentile(0.50) * 1e3, 3),
            "p99_ms": round(self._reservoir.percentile(0.99) * 1e3, 3),
            "plan_hits": self.plan_hits,
            "plans_compiled": self.plans_compiled,
            "scattered": self.scattered,
            "serial": self.serial,
        }


class StatementRegistry:
    """Thread-safe bounded map of statement shapes to statistics."""

    def __init__(self, cap: int = REGISTRY_CAP):
        self._lock = threading.Lock()
        self._cap = cap
        self._entries: Dict[Tuple[str, str], StatementEntry] = {}
        self.evictions = 0

    def record(
        self,
        text: str,
        kind: str,
        seconds: float,
        rows: int = 0,
        scanned: int = 0,
        plan_hit: Optional[bool] = None,
        scattered: bool = False,
        error: bool = False,
    ) -> None:
        """Fold one execution into the entry for ``(text, kind)``."""
        key = (text, kind)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if len(self._entries) >= self._cap:
                    self._evict_one()
                entry = StatementEntry(text, kind)
                self._entries[key] = entry
            entry.calls += 1
            if error:
                entry.errors += 1
            entry.rows_returned += rows
            entry.rows_scanned += scanned
            entry.total_seconds += seconds
            if seconds > entry.max_seconds:
                entry.max_seconds = seconds
            entry._reservoir.record(seconds)
            if plan_hit is True:
                entry.plan_hits += 1
            elif plan_hit is False:
                entry.plans_compiled += 1
            if scattered:
                entry.scattered += 1
            else:
                entry.serial += 1

    def _evict_one(self) -> None:
        # Cheapest total time goes first: the top-N views stay intact.
        victim = min(
            self._entries, key=lambda k: self._entries[k].total_seconds
        )
        del self._entries[victim]
        self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self, top: Optional[int] = None) -> List[dict]:
        """Entries as dicts, sorted by total time descending; at most
        ``top`` of them when given."""
        with self._lock:
            entries = [e.snapshot() for e in self._entries.values()]
        entries.sort(key=lambda e: e["total_ms"], reverse=True)
        return entries[:top] if top else entries

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self.evictions = 0

    def describe(self, top: int = 10) -> str:
        """The ``.statements`` shell report: a top-N table by total
        time."""
        entries = self.snapshot(top)
        if not entries:
            if not ENABLED:
                return (
                    "(statement statistics disabled — the server"
                    " enables them on start; in code, call"
                    " repro.obs.stats.enable())"
                )
            return "(no statements recorded)"
        header = (
            f"{'calls':>7}  {'total ms':>10}  {'mean ms':>9}"
            f"  {'p99 ms':>9}  {'rows':>9}  {'plan':>11}"
            f"  {'scatter':>7}  statement"
        )
        lines = [header, "-" * len(header)]
        for entry in entries:
            plan = f"{entry['plan_hits']}h/{entry['plans_compiled']}c"
            text = entry["text"]
            if len(text) > 72:
                text = text[:69] + "..."
            suffix = f" [{entry['kind']}]" if entry["kind"] else ""
            lines.append(
                f"{entry['calls']:>7}  {entry['total_ms']:>10.3f}"
                f"  {entry['mean_ms']:>9.3f}  {entry['p99_ms']:>9.3f}"
                f"  {entry['rows_returned']:>9}  {plan:>11}"
                f"  {entry['scattered']:>7}  {text}{suffix}"
            )
        return "\n".join(lines)


# The process-wide registry every surface reads.
REGISTRY = StatementRegistry()


def record_call(
    text: str,
    kind: str,
    started: float,
    rows: int,
    plan_hit: Optional[bool],
    error: bool,
) -> None:
    """The planner's recording tail: closes the scatter observation
    and folds the call into :data:`REGISTRY`."""
    elapsed = time.perf_counter() - started
    scanned = take_scatter()
    REGISTRY.record(
        text,
        kind,
        elapsed,
        rows=rows,
        scanned=scanned or 0,
        plan_hit=plan_hit,
        scattered=scanned is not None,
        error=error,
    )
