"""Prometheus-style text exposition of every counter the engine keeps.

:func:`render_prometheus` folds four counter families into one
text/plain page (the `Prometheus exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_,
counters and histograms only — no client library is required):

- per-view :class:`~repro.core.stats.ViewStats` (cache behaviour,
  invalidations by class);
- per-scope plan-cache counters (:mod:`repro.query.planner`);
- per-database :class:`~repro.engine.versions.CommitStats`;
- :class:`~repro.server.metrics.ServerMetrics` (requests, errors,
  connections, latency reservoirs);
- shard-executor counters (:mod:`repro.exec`) for scopes running the
  scatter–gather engine: scatters, fallbacks, failovers, deltas
  shipped, plus per-shard tasks/rows/busy-time/plan-cache verdicts
  and an alive-workers gauge;
- span-duration histograms derived from completed traces
  (:class:`~repro.obs.collect.SpanHistogramSet`).

Served two ways by the server: the ``metrics`` wire op returns the
text in a JSON frame, and ``--metrics-port`` exposes ``GET /metrics``
over plain HTTP for an actual scraper.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional

from .collect import SpanHistogramSet


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _line(name: str, value, **labels) -> str:
    if labels:
        inner = ",".join(
            f'{key}="{_escape(val)}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {value}"
    return f"{name} {value}"


def _format_seconds(value: float) -> str:
    return f"{value:.6f}".rstrip("0").rstrip(".") or "0"


def render_prometheus(
    scopes: Iterable = (),
    server_metrics=None,
    histograms: Optional[SpanHistogramSet] = None,
) -> str:
    """The full exposition page for a set of scopes and one server."""
    lines: List[str] = []
    lines.extend(_render_scopes(scopes))
    if server_metrics is not None:
        lines.extend(_render_server(server_metrics))
    if histograms is not None:
        lines.extend(_render_histograms(histograms))
    lines.extend(_render_statements())
    return "\n".join(lines) + "\n"


def _render_scopes(scopes: Iterable) -> List[str]:
    from ..engine.versions import commit_stats_sources, version_stats_sources
    from ..query.planner import aggregate_plan_stats

    lines: List[str] = []
    view_rows = []
    invalidation_rows = []
    plan_rows = []
    commit_seen = set()
    commit_rows = []
    version_seen = set()
    version_rows = []
    storage_rows = []
    shard_rows = []
    shard_seen = set()
    for scope in scopes:
        name = getattr(scope, "scope_name", "?")
        stats = getattr(scope, "stats", None)
        if stats is not None and hasattr(stats, "hits"):
            view_rows.append((name, stats))
            for cls, count in sorted(stats.invalidations_by_class.items()):
                invalidation_rows.append((name, cls, count))
        plans = aggregate_plan_stats([scope])
        if any(plans.values()):
            plan_rows.append((name, plans))
        for source in commit_stats_sources(scope):
            if id(source) in commit_seen:
                continue
            commit_seen.add(id(source))
            commit_rows.append((name, source.snapshot()))
        for registry in version_stats_sources(scope):
            if id(registry) in version_seen:
                continue
            version_seen.add(id(registry))
            version_rows.append((name, registry.snapshot()))
        storage = getattr(scope, "storage", None)
        if storage is not None:
            storage_rows.append((name, storage.storage_stats()))
        executor = getattr(scope, "_shard_executor", None)
        if executor is not None and id(executor) not in shard_seen:
            shard_seen.add(id(executor))
            shard_rows.append(
                (name, executor.stats.snapshot(), executor.alive_workers())
            )

    if view_rows:
        lines.append(
            "# TYPE repro_view_population_requests_total counter"
        )
        for name, stats in view_rows:
            for field, verdict in (
                ("hits", "hit"),
                ("delta_patches", "delta_patch"),
                ("full_recomputes", "full_recompute"),
            ):
                lines.append(
                    _line(
                        "repro_view_population_requests_total",
                        getattr(stats, field),
                        scope=name,
                        verdict=verdict,
                    )
                )
    if invalidation_rows:
        lines.append("# TYPE repro_view_invalidations_total counter")
        for name, cls, count in invalidation_rows:
            lines.append(
                _line(
                    "repro_view_invalidations_total",
                    count,
                    scope=name,
                    **{"class": cls},
                )
            )
    if plan_rows:
        lines.append("# TYPE repro_plan_cache_events_total counter")
        for name, plans in plan_rows:
            for field in (
                "plans_compiled",
                "plan_cache_hits",
                "invalidations",
                "index_probes",
                "range_probes",
            ):
                lines.append(
                    _line(
                        "repro_plan_cache_events_total",
                        plans[field],
                        scope=name,
                        event=field,
                    )
                )
    if commit_rows:
        lines.append("# TYPE repro_commit_events_total counter")
        for name, snap in commit_rows:
            for field, value in sorted(snap.items()):
                if field == "max_batch_size":
                    continue
                lines.append(
                    _line(
                        "repro_commit_events_total",
                        value,
                        scope=name,
                        event=field,
                    )
                )
    if version_rows:
        lines.append("# TYPE repro_version_events_total counter")
        for name, snap in version_rows:
            for field in ("versions_published", "versions_reclaimed"):
                lines.append(
                    _line(
                        "repro_version_events_total",
                        snap[field],
                        scope=name,
                        event=field,
                    )
                )
        lines.append("# TYPE repro_versions_live gauge")
        for name, snap in version_rows:
            lines.append(
                _line("repro_versions_live", snap["versions_live"], scope=name)
            )
        lines.append("# TYPE repro_version_pinned_readers gauge")
        for name, snap in version_rows:
            lines.append(
                _line(
                    "repro_version_pinned_readers",
                    snap["pinned_readers"],
                    scope=name,
                )
            )
        lines.append("# TYPE repro_version_retained_bytes gauge")
        for name, snap in version_rows:
            lines.append(
                _line(
                    "repro_version_retained_bytes",
                    snap["retained_bytes_estimate"],
                    scope=name,
                )
            )
    if storage_rows:
        lines.append("# TYPE repro_buffer_events_total counter")
        for name, blocks in storage_rows:
            buf = blocks["buffer"]
            for event in ("hits", "misses", "evictions", "dirty_flushes"):
                lines.append(
                    _line(
                        "repro_buffer_events_total",
                        buf[event],
                        scope=name,
                        event=event,
                    )
                )
        lines.append("# TYPE repro_buffer_hit_ratio gauge")
        for name, blocks in storage_rows:
            lines.append(
                _line(
                    "repro_buffer_hit_ratio",
                    blocks["buffer"]["hit_ratio"],
                    scope=name,
                )
            )
        lines.append("# TYPE repro_buffer_pool_pages gauge")
        for name, blocks in storage_rows:
            buf = blocks["buffer"]
            for state, value in (
                ("resident", buf["pages_in_pool"]),
                ("pinned", buf["pinned"]),
                ("capacity", buf["capacity"]),
            ):
                lines.append(
                    _line(
                        "repro_buffer_pool_pages",
                        value,
                        scope=name,
                        state=state,
                    )
                )
        lines.append("# TYPE repro_storage_events_total counter")
        for name, blocks in storage_rows:
            disk, ckpt = blocks["disk"], blocks["checkpoint"]
            for event, value in (
                ("page_reads", disk["page_reads"]),
                ("page_writes", disk["page_writes"]),
                ("pages_allocated", disk["pages_allocated"]),
                ("checkpoints_taken", ckpt["checkpoints_taken"]),
            ):
                lines.append(
                    _line(
                        "repro_storage_events_total",
                        value,
                        scope=name,
                        event=event,
                    )
                )
        lines.append("# TYPE repro_storage_journal_tail_batches gauge")
        for name, blocks in storage_rows:
            lines.append(
                _line(
                    "repro_storage_journal_tail_batches",
                    blocks["checkpoint"]["journal_tail_batches"],
                    scope=name,
                )
            )
        lines.append("# TYPE repro_storage_checkpoint_bytes gauge")
        for name, blocks in storage_rows:
            ckpt = blocks["checkpoint"]
            lines.append(
                _line(
                    "repro_storage_checkpoint_bytes",
                    ckpt["last_checkpoint_bytes"],
                    scope=name,
                    kind=ckpt["last_checkpoint_kind"] or "none",
                )
            )
        lines.append("# TYPE repro_storage_faults_total counter")
        for name, blocks in storage_rows:
            table = blocks.get("table")
            if table is None:
                continue
            lines.append(
                _line(
                    "repro_storage_faults_total",
                    table["faults"],
                    scope=name,
                )
            )
    if shard_rows:
        lines.append("# TYPE repro_shard_events_total counter")
        for name, snap, _alive in shard_rows:
            for event in (
                "scatters",
                "tasks",
                "rows_gathered",
                "serial_fallbacks",
                "shard_failovers",
                "rebootstraps",
                "rebalances",
                "deltas_shipped",
            ):
                lines.append(
                    _line(
                        "repro_shard_events_total",
                        snap[event],
                        scope=name,
                        event=event,
                    )
                )
        lines.append("# TYPE repro_shard_tasks_total counter")
        lines.append("# TYPE repro_shard_rows_total counter")
        lines.append("# TYPE repro_shard_busy_seconds_total counter")
        lines.append("# TYPE repro_shard_plan_events_total counter")
        for name, snap, _alive in shard_rows:
            for per in snap["per_shard"]:
                shard = str(per["shard"])
                lines.append(
                    _line(
                        "repro_shard_tasks_total",
                        per["tasks"],
                        scope=name,
                        shard=shard,
                    )
                )
                lines.append(
                    _line(
                        "repro_shard_rows_total",
                        per["rows"],
                        scope=name,
                        shard=shard,
                    )
                )
                lines.append(
                    _line(
                        "repro_shard_busy_seconds_total",
                        _format_seconds(per["busy_seconds"]),
                        scope=name,
                        shard=shard,
                    )
                )
                for verdict in ("plan_hits", "plan_misses"):
                    lines.append(
                        _line(
                            "repro_shard_plan_events_total",
                            per[verdict],
                            scope=name,
                            shard=shard,
                            verdict=verdict,
                        )
                    )
        lines.append("# TYPE repro_shard_workers_alive gauge")
        for name, snap, alive in shard_rows:
            lines.append(
                _line("repro_shard_workers_alive", alive, scope=name)
            )
    return lines


def _render_server(metrics) -> List[str]:
    snap = metrics.snapshot()
    lines = ["# TYPE repro_server_requests_total counter"]
    for op, count in sorted(snap.get("requests", {}).items()):
        lines.append(_line("repro_server_requests_total", count, op=op))
    errors = snap.get("errors", {})
    if errors:
        lines.append("# TYPE repro_server_errors_total counter")
        for code, count in sorted(errors.items()):
            lines.append(
                _line("repro_server_errors_total", count, code=code)
            )
    lines.append("# TYPE repro_server_connections_total counter")
    for event, count in sorted(snap.get("connections", {}).items()):
        lines.append(
            _line("repro_server_connections_total", count, event=event)
        )
    mvcc = snap.get("mvcc", {})
    if mvcc:
        lines.append("# TYPE repro_server_mvcc_events_total counter")
        for event, count in sorted(mvcc.items()):
            lines.append(
                _line("repro_server_mvcc_events_total", count, event=event)
            )
    pipeline = snap.get("pipeline", {})
    if pipeline:
        lines.append("# TYPE repro_server_inflight_requests gauge")
        lines.append(
            _line(
                "repro_server_inflight_requests",
                pipeline.get("inflight_current", 0),
            )
        )
        lines.append(
            "# TYPE repro_server_inflight_peak_connection gauge"
        )
        lines.append(
            _line(
                "repro_server_inflight_peak_connection",
                pipeline.get("inflight_peak_connection", 0),
            )
        )
        pauses = pipeline.get("backpressure_pauses", {})
        if pauses:
            lines.append(
                "# TYPE repro_server_backpressure_pauses_total counter"
            )
            for kind, count in sorted(pauses.items()):
                lines.append(
                    _line(
                        "repro_server_backpressure_pauses_total",
                        count,
                        kind=kind,
                    )
                )
    lines.append("# TYPE repro_server_request_seconds summary")
    for kind, summary in sorted(snap.get("latency", {}).items()):
        for quantile, field in (("0.5", "p50_ms"), ("0.99", "p99_ms")):
            lines.append(
                _line(
                    "repro_server_request_seconds",
                    _format_seconds(summary[field] / 1e3),
                    kind=kind,
                    quantile=quantile,
                )
            )
        lines.append(
            _line(
                "repro_server_request_seconds_sum",
                _format_seconds(
                    summary["mean_ms"] / 1e3 * summary["count"]
                ),
                kind=kind,
            )
        )
        lines.append(
            _line(
                "repro_server_request_seconds_count",
                summary["count"],
                kind=kind,
            )
        )
    lines.append(
        _line("repro_server_uptime_seconds", snap.get("uptime_s", 0))
    )
    return lines


def _render_histograms(histograms: SpanHistogramSet) -> List[str]:
    lines: List[str] = []
    snapshot = histograms.snapshot()
    if not snapshot:
        return lines
    lines.append("# TYPE repro_span_duration_seconds histogram")
    for name in sorted(snapshot):
        hist = snapshot[name]
        cumulative = hist.cumulative()
        for bound, count in zip(hist.buckets, cumulative):
            lines.append(
                _line(
                    "repro_span_duration_seconds_bucket",
                    count,
                    span=name,
                    le=_format_seconds(bound),
                )
            )
        lines.append(
            _line(
                "repro_span_duration_seconds_bucket",
                cumulative[-1],
                span=name,
                le="+Inf",
            )
        )
        lines.append(
            _line(
                "repro_span_duration_seconds_sum",
                _format_seconds(hist.sum),
                span=name,
            )
        )
        lines.append(
            _line(
                "repro_span_duration_seconds_count", hist.count, span=name
            )
        )
    return lines


def _render_statements(top: int = 10) -> List[str]:
    """Top-N statement-statistics series (empty when disabled/idle)."""
    from . import stats as _stats

    entries = _stats.REGISTRY.snapshot(top=top)
    if not entries:
        return []
    lines = [
        "# TYPE repro_statement_seconds_total counter",
        "# TYPE repro_statement_calls_total counter",
        "# TYPE repro_statement_rows_total counter",
        "# TYPE repro_statement_latency_seconds summary",
        "# TYPE repro_statement_dispatch_total counter",
    ]
    for entry in entries:
        text = entry["text"]
        if len(text) > 120:
            text = text[:117] + "..."
        labels = {"statement": text, "kind": entry["kind"]}
        lines.append(
            _line(
                "repro_statement_seconds_total",
                _format_seconds(entry["total_ms"] / 1e3),
                **labels,
            )
        )
        lines.append(
            _line(
                "repro_statement_calls_total", entry["calls"], **labels
            )
        )
        for direction, field in (
            ("returned", "rows_returned"),
            ("scanned", "rows_scanned"),
        ):
            lines.append(
                _line(
                    "repro_statement_rows_total",
                    entry[field],
                    direction=direction,
                    **labels,
                )
            )
        for quantile, field in (("0.5", "p50_ms"), ("0.99", "p99_ms")):
            lines.append(
                _line(
                    "repro_statement_latency_seconds",
                    _format_seconds(entry[field] / 1e3),
                    quantile=quantile,
                    **labels,
                )
            )
        for mode in ("scattered", "serial"):
            lines.append(
                _line(
                    "repro_statement_dispatch_total",
                    entry[mode],
                    mode=mode,
                    **labels,
                )
            )
    return lines


class MetricsHTTPServer:
    """A tiny stdlib HTTP endpoint serving ``GET /metrics``.

    Started by ``repro serve --metrics-port N``. ``GET /health`` is a
    liveness probe answering 200 with a small JSON body (status,
    uptime, version); everything else is a 404. The render callback is
    invoked per request, so the page is always current.
    """

    def __init__(self, host: str, port: int, render):
        import json
        import time as _time
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from .. import __version__

        render_page = render
        started = _time.time()

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib naming)
                path = self.path.split("?", 1)[0].rstrip("/")
                if path == "/health":
                    body = json.dumps(
                        {
                            "status": "ok",
                            "uptime_s": round(_time.time() - started, 3),
                            "version": __version__,
                        }
                    ).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if path not in ("", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    body = render_page().encode("utf-8")
                except Exception as error:  # render must never kill serving
                    self.send_error(500, str(error))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self):
        return self._httpd.server_address[:2]

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)
