"""Trace collectors: ring buffer, slow-query log, span histograms.

Completed traces are *dicts* (``Trace.to_dict``) from the moment they
enter a collector — collectors never hold live engine objects, so a
retained trace cannot pin a database snapshot or a view.

- :class:`TraceRing` keeps the last N traces for the ``traces`` wire
  op and post-hoc debugging;
- :class:`SlowQueryLog` keeps traces whose total duration crossed a
  threshold, annotated with the plan text and statement found in the
  span tree — the structured answer to "why was *that one* slow";
- :class:`SpanHistogramSet` folds every span's duration into a
  per-name histogram for the Prometheus exposition (see
  :mod:`repro.obs.export`).

:class:`Observability` bundles the three behind one ``record`` call —
the server owns one instance and feeds it every finished request
trace.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Dict, List, Optional

# Histogram bucket upper bounds, in seconds (Prometheus ``le``).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class TraceRing:
    """A bounded, thread-safe buffer of recent trace dicts."""

    def __init__(self, capacity: int = 256):
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=max(1, capacity))
        self.total_recorded = 0

    def append(self, trace_dict: dict) -> None:
        with self._lock:
            self._ring.append(trace_dict)
            self.total_recorded += 1

    def recent(self, limit: Optional[int] = None) -> List[dict]:
        """The most recent traces, newest last."""
        with self._lock:
            items = list(self._ring)
        if limit is not None and limit >= 0:
            items = items[-limit:]
        return items

    def find(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            for item in reversed(self._ring):
                if item.get("trace_id") == trace_id:
                    return item
        return None

    def dump_jsonl(self, path: str) -> int:
        """Write one trace per line (the ``repro trace`` input format);
        returns the number written."""
        items = self.recent()
        with open(path, "w") as f:
            for item in items:
                f.write(json.dumps(item, separators=(",", ":")) + "\n")
        return len(items)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def _find_span(span_dict: dict, name: str) -> Optional[dict]:
    if span_dict.get("name") == name:
        return span_dict
    for child in span_dict.get("children", ()):
        found = _find_span(child, name)
        if found is not None:
            return found
    return None


class SlowQueryLog:
    """Threshold-triggered span-tree dumps, with the plan text.

    ``threshold`` is in seconds; ``None`` disables the log (offers are
    dropped). A threshold of 0 logs every trace — which is exactly how
    the wire tests exercise it.
    """

    def __init__(self, threshold: Optional[float] = None, capacity: int = 128):
        self._lock = threading.Lock()
        self.threshold = threshold
        self._entries: deque = deque(maxlen=max(1, capacity))
        self.total_logged = 0

    def offer(self, trace_dict: dict) -> bool:
        """Log the trace if it crossed the threshold; True if kept."""
        threshold = self.threshold
        if threshold is None:
            return False
        if trace_dict.get("duration_ms", 0.0) < threshold * 1e3:
            return False
        root = trace_dict.get("root") or {}
        attrs = root.get("attrs") or {}
        plan_span = _find_span(root, "plan")
        entry = {
            "trace_id": trace_dict.get("trace_id"),
            "ts": trace_dict.get("ts"),
            "duration_ms": trace_dict.get("duration_ms"),
            "op": attrs.get("op"),
            "statement": attrs.get("line"),
            "plan": (plan_span.get("attrs") or {}).get("plan")
            if plan_span
            else None,
            "trace": trace_dict,
        }
        with self._lock:
            self._entries.append(entry)
            self.total_logged += 1
        return True

    def entries(self, limit: Optional[int] = None) -> List[dict]:
        with self._lock:
            items = list(self._entries)
        if limit is not None and limit >= 0:
            items = items[-limit:]
        return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SpanHistogram:
    """One cumulative-bucket duration histogram (seconds)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf tail
        self.sum = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.observe_many(seconds, 1)

    def observe_many(self, seconds_each: float, count: int) -> None:
        """Record ``count`` observations of ``seconds_each`` (used for
        coalesced spans, where only the mean survives)."""
        self.sum += seconds_each * count
        self.count += count
        for index, bound in enumerate(self.buckets):
            if seconds_each <= bound:
                self.counts[index] += count
                return
        self.counts[-1] += count

    def cumulative(self) -> List[int]:
        """Counts per ``le`` bound, cumulative (Prometheus shape)."""
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out


class SpanHistogramSet:
    """Per-span-name histograms fed from completed trace dicts."""

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self._lock = threading.Lock()
        self._buckets = tuple(buckets)
        self._histograms: Dict[str, SpanHistogram] = {}

    def observe(self, name: str, seconds: float, count: int = 1) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = SpanHistogram(self._buckets)
            if count > 1:
                # A coalesced span: only the summed duration survives,
                # so bucket the mean ``count`` times (sum stays exact).
                hist.observe_many(seconds / count, count)
            else:
                hist.observe(seconds)

    def observe_trace(self, trace_dict: dict) -> None:
        root = trace_dict.get("root")
        if root:
            self._walk(root)

    def _walk(self, span_dict: dict) -> None:
        self.observe(
            str(span_dict.get("name", "?")),
            float(span_dict.get("ms", 0.0)) / 1e3,
            int(span_dict.get("count", 1)),
        )
        for child in span_dict.get("children", ()):
            self._walk(child)

    def snapshot(self) -> Dict[str, SpanHistogram]:
        with self._lock:
            return dict(self._histograms)


class Observability:
    """One server's collectors, fed one completed trace at a time."""

    def __init__(
        self,
        ring_capacity: int = 256,
        slow_threshold: Optional[float] = None,
        buckets=DEFAULT_BUCKETS,
    ):
        self.ring = TraceRing(ring_capacity)
        self.slow_log = SlowQueryLog(slow_threshold)
        self.histograms = SpanHistogramSet(buckets)

    def record(self, trace) -> dict:
        """Fold one finished :class:`~repro.obs.trace.Trace` (or an
        already-exported dict) into every collector."""
        trace_dict = trace if isinstance(trace, dict) else trace.to_dict()
        self.ring.append(trace_dict)
        self.slow_log.offer(trace_dict)
        self.histograms.observe_trace(trace_dict)
        return trace_dict
