"""EXPLAIN ANALYZE: run a query under tracing, annotate the plan.

``.explain`` in the shell (and the ``explain`` wire op) used to print
the planner's one-line access-path description. This module upgrades
it to the relational ``EXPLAIN ANALYZE``: the query is *executed*
under a private trace, and the output combines

- the chosen plan with the disposition of every ``where`` conjunct
  (probe vs. residual — which index, which bounds);
- the plan-cache verdict (hit, or compiled now);
- actual row counts and wall time;
- per-virtual-attribute evaluation counts with timings — the paper's
  stored-vs-computed distinction (§2, Example 1) made visible per
  query: a slow query over a virtual class shows *which* computed
  attribute burned the time;
- the full span tree (population recomputes, delta patches, index
  probes, commit waits if the query ran server-side).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..query.builder import ensure_query
from ..query.planner import fetch_plan
from ..query.printer import format_query
from . import trace as _trace
from .render import render_span_tree


def explain_analyze(query, scope) -> str:
    """Execute ``query`` on ``scope`` under tracing; render the report.

    Counts toward the scope's plan-cache statistics exactly like a
    normal execution (the run is real, not simulated).
    """
    select = ensure_query(query)
    text = format_query(select)
    scattered = False
    _trace.activate()
    try:
        with _trace.trace_context("explain", line=text) as t:
            plan, hit, cache = fetch_plan(select, scope)
            with _trace.span("execute", plan=plan.kind) as sp:
                from ..query.shard import try_scatter

                scattered, result = try_scatter(
                    select, scope, None, None, None
                )
                if not scattered:
                    result = plan.execute(scope, cache, None, None, None)
                rows = len(result) if isinstance(result, list) else 1
                sp.set(rows=rows, scattered=scattered)
    finally:
        _trace.deactivate()

    verdict = "hit" if hit else "miss (compiled now)"
    lines = [
        "EXPLAIN ANALYZE",
        f"query: {text}",
        f"plan:  {plan.describe()}"
        + (" [scattered across shards]" if scattered else ""),
        f"plan cache: {verdict}",
    ]
    roles = getattr(plan, "conjunct_roles", None)
    if roles:
        lines.append("conjuncts:")
        width = max(len(conjunct) for conjunct, _ in roles)
        for conjunct, role in roles:
            lines.append(f"  {conjunct.ljust(width)}  -> {role}")
    lines.append(
        f"rows: {rows}    total: {t.duration * 1e3:.3f}ms"
    )
    root_dict = t.root.to_dict()
    virtuals = _virtual_attribute_totals(root_dict)
    if virtuals:
        lines.append("virtual attributes (computed per §2):")
        for label in sorted(virtuals):
            count, ms = virtuals[label]
            lines.append(
                f"  {label}: {count} eval(s), {ms:.3f}ms"
            )
    lines.append("spans:")
    tree = render_span_tree(root_dict)
    lines.extend(f"  {line}" for line in tree)
    return "\n".join(lines)


def _virtual_attribute_totals(
    span_dict: dict,
) -> Dict[str, Tuple[int, float]]:
    """``Class.Attribute -> (eval count, total ms)`` over the tree."""
    totals: Dict[str, Tuple[int, float]] = {}

    def walk(node: dict) -> None:
        if node.get("name") == "virtual_attr.eval":
            attrs = node.get("attrs") or {}
            label = (
                f"{attrs.get('class', '?')}.{attrs.get('attribute', '?')}"
            )
            count, ms = totals.get(label, (0, 0.0))
            totals[label] = (
                count + int(node.get("count", 1)),
                ms + float(node.get("ms", 0.0)),
            )
        for child in node.get("children", ()):
            walk(child)

    walk(span_dict)
    return totals
