"""Tests for decompiling views back to the definition language."""

import pytest

from repro.core import View, like, predicate
from repro.lang import Catalog, decompile_view, run_script


SCRIPT = """
create view My_View;
import all classes from database Staff;
class Adult includes (select P from Person where P.Age >= 21);
class Senior includes (select A from Adult where A.Age >= 65);
class Resident(X) includes (select P from Person where P.City = X);
attribute Label in class Person has value self.Name + '!';
hide attribute Income in class Person;
"""


@pytest.fixture
def catalog(tiny_db):
    return Catalog(tiny_db)


class TestSemanticRoundTrip:
    def test_script_view_rebuilds_identically(self, catalog, tiny_db):
        original = run_script(SCRIPT, catalog).view
        script = decompile_view(original)
        rebuilt = run_script(
            script.replace("create view My_View", "create view Rebuilt"),
            Catalog(tiny_db),
        ).view
        for class_name in ("Adult", "Senior"):
            assert rebuilt.extent(class_name).members == original.extent(
                class_name
            ).members
        assert rebuilt.instantiate_family(
            "Resident", ("Paris",)
        ).members == original.instantiate_family(
            "Resident", ("Paris",)
        ).members
        somebody = rebuilt.handles("Person")[0]
        assert somebody.Label.endswith("!")
        from repro.errors import HiddenAttributeError

        with pytest.raises(HiddenAttributeError):
            somebody.Income

    def test_programmatic_view_decompiles(self, tiny_db):
        view = View("Prog")
        view.import_class(tiny_db, "Person")
        view.define_virtual_class(
            "Rich",
            includes=["select P from Person where P.Income > 5,000"],
        )
        view.define_spec_class("Spec", attributes={"Age": "integer"})
        view.define_virtual_class("Aged", includes=[like("Spec")])
        script = decompile_view(view)
        assert "create view Prog;" in script
        assert "import class Person from database Staff;" in script
        assert "class Rich includes (select P from P in Person" in script
        assert "like Spec" in script
        rebuilt = run_script(
            script.replace("create view Prog", "create view P2"),
            Catalog(tiny_db),
        ).view
        assert rebuilt.extent("Rich").members == view.extent("Rich").members

    def test_imaginary_class_decompiles(self, tiny_db):
        view = View("V")
        view.import_class(tiny_db, "Person")
        view.define_imaginary_class(
            "Family",
            "select [Husband: H, Wife: H.Spouse] from H in Person"
            " where H.Sex = 'male' and H.Spouse in Person",
        )
        script = decompile_view(view)
        assert "imaginary (select [Husband: H" in script
        rebuilt = run_script(
            script.replace("create view V", "create view V2"),
            Catalog(tiny_db),
        ).view
        assert len(rebuilt.extent("Family")) == len(view.extent("Family"))


class TestNonTextualDefinitions:
    def test_callable_attribute_becomes_comment(self, tiny_db):
        view = View("V")
        view.import_class(tiny_db, "Person")
        view.define_attribute("Person", "Magic", value=lambda s: 42)
        script = decompile_view(view)
        assert "-- not textual: attribute Magic" in script
        # The script still parses and executes.
        run_script(
            script.replace("create view V", "create view V2"),
            Catalog(tiny_db),
        )

    def test_predicate_member_becomes_comment(self, tiny_db):
        view = View("V")
        view.import_class(tiny_db, "Person")
        view.define_virtual_class(
            "Young", includes=[predicate("Person", lambda p: p.Age < 30)]
        )
        script = decompile_view(view)
        assert "-- not textual: class Young" in script

    def test_stored_attribute_declaration(self, tiny_db):
        view = View("V")
        view.import_class(tiny_db, "Person")
        view.define_attribute("Person", "Nickname", "string")
        script = decompile_view(view)
        assert "attribute Nickname of type string in class Person;" in script
