"""Unit tests for handles, tuple values, and value wrapping."""

import pytest

from repro.engine import Database
from repro.engine.objects import (
    ObjectHandle,
    TupleValue,
    unwrap,
    wrap_value,
)
from repro.engine.oid import Oid
from repro.errors import ObjectError


@pytest.fixture
def db():
    d = Database("D")
    d.define_class(
        "Node",
        attributes={
            "Label": "string",
            "Next": "Node",
            "Parts": {"Node"},
            "Meta": {"Depth": "integer"},
        },
    )
    return d


class TestWrapping:
    def test_oid_becomes_handle(self, db):
        node = db.create("Node", Label="a")
        wrapped = wrap_value(db, node.oid)
        assert isinstance(wrapped, ObjectHandle)
        assert wrapped.Label == "a"

    def test_dict_becomes_tuple_value(self, db):
        wrapped = wrap_value(db, {"Depth": 3})
        assert isinstance(wrapped, TupleValue)
        assert wrapped.Depth == 3

    def test_set_wraps_elements(self, db):
        a = db.create("Node", Label="a")
        wrapped = wrap_value(db, {a.oid})
        assert isinstance(wrapped, frozenset)
        assert next(iter(wrapped)).Label == "a"

    def test_list_wraps_elements(self, db):
        wrapped = wrap_value(db, [1, {"X": 2}])
        assert wrapped[0] == 1
        assert wrapped[1].X == 2

    def test_scalars_pass_through(self, db):
        assert wrap_value(db, 42) == 42
        assert wrap_value(db, "x") == "x"

    def test_unwrap_inverts(self, db):
        a = db.create("Node", Label="a")
        value = {"k": a.oid, "s": {a.oid}, "l": [a.oid], "n": 1}
        assert unwrap(wrap_value(db, value)) == value

    def test_unwrap_handles_nested_proxies(self, db):
        a = db.create("Node", Label="a")
        assert unwrap(ObjectHandle(db, a.oid)) == a.oid
        assert unwrap(TupleValue(db, {"x": a.oid})) == {"x": a.oid}


class TestHandleNavigation:
    def test_chained_navigation(self, db):
        c = db.create("Node", Label="c")
        b = db.create("Node", Label="b", Next=c)
        a = db.create("Node", Label="a", Next=b)
        assert a.Next.Next.Label == "c"

    def test_tuple_attribute_navigation(self, db):
        a = db.create("Node", Label="a", Meta={"Depth": 7})
        assert a.Meta.Depth == 7
        assert a.Meta["Depth"] == 7
        assert "Depth" in a.Meta

    def test_set_attribute_wrapped(self, db):
        p = db.create("Node", Label="p")
        q = db.create("Node", Label="q", Parts={p.oid})
        parts = q.Parts
        assert {h.Label for h in parts} == {"p"}

    def test_missing_tuple_field_raises(self, db):
        a = db.create("Node", Label="a", Meta={"Depth": 1})
        with pytest.raises(AttributeError):
            a.Meta.Width

    def test_private_names_raise_attribute_error(self, db):
        a = db.create("Node", Label="a")
        with pytest.raises(AttributeError):
            a._internal

    def test_tuple_value_read_only(self, db):
        a = db.create("Node", Label="a", Meta={"Depth": 1})
        with pytest.raises(ObjectError):
            a.Meta.Depth = 9

    def test_tuple_value_equality(self):
        assert TupleValue(None, {"a": 1}) == TupleValue(None, {"a": 1})
        assert TupleValue(None, {"a": 1}) == {"a": 1}
        assert TupleValue(None, {"a": 1}) != TupleValue(None, {"a": 2})

    def test_tuple_value_keys_and_dict(self):
        tv = TupleValue(None, {"a": 1, "b": 2})
        assert sorted(tv.keys()) == ["a", "b"]
        assert tv.as_dict() == {"a": 1, "b": 2}

    def test_handle_ordering(self, db):
        a = db.create("Node", Label="a")
        b = db.create("Node", Label="b")
        assert a < b

    def test_handles_hash_by_oid(self, db):
        a = db.create("Node", Label="a")
        again = db.get(a.oid)
        assert len({a, again}) == 1

    def test_handle_repr_safe_for_unknown(self, db):
        ghost = ObjectHandle(db, Oid("D", 999))
        assert "?" in repr(ghost)
