"""Tests for §4.2/4.3: method resolution and schizophrenia."""

import pytest

from repro.core import ConflictPolicy, View
from repro.errors import SchizophreniaError


@pytest.fixture
def overlap_view(tiny_db):
    """Rich and Senior overlap on Carol; both define Print."""
    view = View("V")
    view.import_database(tiny_db)
    view.define_virtual_class(
        "Rich", includes=["select P from Person where P.Income > 10,000"]
    )
    view.define_virtual_class(
        "Senior", includes=["select P from Person where P.Age >= 65"]
    )
    view.define_attribute("Rich", "Print", value="'rich ' + self.Name")
    view.define_attribute("Senior", "Print", value="'old ' + self.Name")
    return view


def carol(view):
    return next(h for h in view.handles("Person") if h.Name == "Carol")


class TestUpwardResolutionBreaks:
    def test_virtual_class_provides_behavior(self, overlap_view):
        """An attribute defined on a virtual class reaches objects whose
        real class knows nothing about it — upward resolution is gone."""
        alice = next(
            h for h in overlap_view.handles("Person") if h.Name == "Alice"
        )
        overlap_view.define_attribute(
            "Rich", "Tax_Bracket", value="'high'"
        )
        # Alice is not Rich (income 9000); Carol is.
        assert not alice.in_class("Rich")
        assert carol(overlap_view).Tax_Bracket == "high"

    def test_non_member_does_not_get_it(self, overlap_view):
        from repro.errors import UnknownAttributeError

        overlap_view.define_attribute("Rich", "Yacht", value="'big'")
        dan = next(
            h for h in overlap_view.handles("Person") if h.Name == "Dan"
        )
        with pytest.raises(UnknownAttributeError):
            dan.Yacht


class TestSchizophrenia:
    def test_conflict_detected_and_default_applied(self, overlap_view):
        """Carol is both Rich and Senior: schizophrenia. The default
        policy picks deterministically and logs the conflict."""
        value = carol(overlap_view).Print
        assert value in ("rich Carol", "old Carol")
        assert value == "rich Carol"  # alphabetical default: Rich
        assert len(overlap_view.conflict_log) == 1
        record = overlap_view.conflict_log[0]
        assert set(record.candidates) == {"Rich", "Senior"}

    def test_error_policy(self, overlap_view):
        overlap_view.set_conflict_policy(ConflictPolicy.ERROR)
        with pytest.raises(SchizophreniaError):
            carol(overlap_view).Print

    def test_policy_from_string(self, overlap_view):
        overlap_view.set_conflict_policy("error")
        with pytest.raises(SchizophreniaError):
            carol(overlap_view).Print

    def test_priority_policy(self, overlap_view):
        overlap_view.set_resolution_priority(["Senior", "Rich"])
        assert carol(overlap_view).Print == "old Carol"
        overlap_view.set_resolution_priority(["Rich", "Senior"])
        assert carol(overlap_view).Print == "rich Carol"

    def test_per_attribute_priority(self, overlap_view):
        overlap_view.resolver.set_priority(
            ["Senior"], attribute="Print"
        )
        assert carol(overlap_view).Print == "old Carol"

    def test_priority_falls_back_to_default(self, overlap_view):
        overlap_view.set_resolution_priority(["Unrelated"])
        assert carol(overlap_view).Print == "rich Carol"

    def test_no_conflict_for_single_membership(self, overlap_view):
        eve = next(
            h for h in overlap_view.handles("Person") if h.Name == "Eve"
        )
        overlap_view.define_attribute(
            "Person", "Print", value="'person ' + self.Name"
        )
        assert eve.Print == "person Eve"
        assert not overlap_view.conflict_log

    def test_overlap_class_redefinition_wins(self, overlap_view):
        """The paper's explicit conflict resolution: define the overlap
        as a class and redefine the method there."""
        overlap_view.define_virtual_class(
            "Rich&Senior",
            includes=["select P from Rich where P in Senior"],
        )
        overlap_view.define_attribute(
            "Rich&Senior", "Print", value="'rich old ' + self.Name"
        )
        assert carol(overlap_view).Print == "rich old Carol"
        assert not overlap_view.conflict_log

    def test_more_specific_real_class_beats_virtual_superclass(
        self, overlap_view, tiny_db
    ):
        """A definition on the real class is more specific than one on
        an inferred superclass when they are comparable."""
        overlap_view.define_attribute(
            "Person", "Motto", value="'base'"
        )
        overlap_view.define_attribute(
            "Rich", "Motto", value="'gold'"
        )
        # Rich is a subclass of Person: for Carol (a member of both)
        # Rich's definition is more specific.
        assert carol(overlap_view).Motto == "gold"

    def test_stats_counters(self, overlap_view):
        carol(overlap_view).Print
        stats = overlap_view.resolver.stats
        assert stats.resolutions >= 1
        assert stats.conflicts == 1
        assert stats.membership_tests >= 2

    def test_real_class_chain_still_resolves(self, overlap_view):
        assert carol(overlap_view).Name == "Carol"
        assert carol(overlap_view).Age == 70
