"""Tests for the async pipelined server (repro.server.aio).

The contract under test: many in-flight requests per connection,
responses matched by request id (arriving out of order), barrier
semantics giving read-your-writes through group commit, both wire
formats, and backpressure that pauses instead of dropping.
"""

import socket
import struct
import threading
import time

import pytest

from repro.bench.harness import server_metrics_table
from repro.engine.oid import Oid
from repro.server import (
    AsyncViewServer,
    Client,
    PipelinedClient,
    ServerError,
    ViewServer,
)
from repro.server.aio import framing
from repro.server.protocol import (
    ConnectionClosed,
    ProtocolError,
    recv_frame,
)
from repro.workloads import build_people_db


@pytest.fixture
def aserver():
    srv = AsyncViewServer([build_people_db(20, seed=1)])
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture(params=[False, True], ids=["json", "binary"])
def pclient(request, aserver):
    host, port = aserver.address
    with PipelinedClient(host, port, binary=request.param) as c:
        yield c


def _recv_exact(sock, count):
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        assert chunk, "connection closed mid-frame"
        data += chunk
    return data


def _recv_binary_frame(sock):
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    return framing.decode_response(_recv_exact(sock, length))


class TestBinaryValueCodec:
    def test_roundtrips_every_wire_type(self):
        value = {
            "none": None,
            "flags": [True, False],
            "small": 7,
            "negative": -1234,
            "big": 2**77,  # arbitrary precision survives
            "float": 3.25,
            "text": "héllo wörld",
            "oid": Oid("Staff", 7),
            "kids": {Oid("Staff", 1), Oid("Staff", 2)},
            "nested": [1, "two", None, {"x": 3.5, "y": [{"z": -1}]}],
        }
        assert framing.decode_value(framing.encode_value(value)) == value

    def test_rejects_opaque_values(self):
        with pytest.raises(ProtocolError):
            framing.encode_value(object())

    def test_trailing_bytes_are_an_error(self):
        data = framing.encode_value(42) + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            framing.decode_value(data)

    def test_depth_cap_on_encode(self):
        value = []
        for _ in range(framing.MAX_DEPTH + 5):
            value = [value]
        with pytest.raises(ProtocolError, match="nests deeper"):
            framing.encode_value(value)

    def test_depth_cap_on_decode_no_recursion_error(self):
        # 200 hand-built nested single-element lists around a none.
        data = (b"l\x01" * 200) + b"N"
        with pytest.raises(ProtocolError, match="nests deeper"):
            framing.decode_value(data)


class TestBinaryFrames:
    def test_request_roundtrip(self):
        request = {"id": 9, "op": "execute", "line": "select 1"}
        frame = framing.encode_request(request)
        (length,) = framing.LENGTH.unpack(frame[:4])
        assert length == len(frame) - 4
        assert framing.decode_request(frame[4:]) == request

    def test_request_id_must_be_positive(self):
        with pytest.raises(ProtocolError, match="id"):
            framing.encode_request({"op": "ping"})
        with pytest.raises(ProtocolError, match="id"):
            framing.encode_request({"id": 0, "op": "ping"})

    def test_response_roundtrips_result_and_error(self):
        ok = {"id": 3, "ok": True, "result": {"output": "x"}}
        err = {
            "id": 4,
            "ok": False,
            "error": {"code": "timeout", "message": "too slow"},
        }
        for frame in (ok, err):
            data = framing.encode_response(frame)
            assert framing.decode_response(data[4:]) == frame

    def test_short_body_is_an_error(self):
        with pytest.raises(ProtocolError, match="shorter"):
            framing.decode_header(b"\x01")


class TestBasicOps:
    def test_ping_and_databases(self, pclient):
        assert pclient.ping() == "pong"
        assert pclient.databases() == ["Staff"]

    def test_execute_select(self, pclient):
        out = pclient.execute("select P from Person where P.Age >= 0")
        assert "result(s)" in out

    def test_mutation_wrappers(self, pclient):
        oid = pclient.create("Staff", "Person", {"Name": "Zed", "Age": 50})
        assert isinstance(oid, Oid)
        pclient.update("Staff", oid, "Age", 51)
        out = pclient.execute("select P.Age from P in Person where P.Name = 'Zed'")
        assert "51" in out
        pclient.delete("Staff", oid)
        out = pclient.execute("select P from Person where P.Name = 'Zed'")
        assert out == "(no results)"

    def test_stats_carries_pipeline_block(self, pclient):
        stats = pclient.stats()
        pipeline = stats["pipeline"]
        assert set(pipeline) == {
            "inflight_current",
            "inflight_peak_connection",
            "backpressure_pauses",
        }
        assert pipeline["inflight_current"] >= 1  # this stats request

    def test_error_frame_keeps_connection(self, pclient):
        with pytest.raises(ServerError) as info:
            pclient.call("frobnicate")
        assert info.value.code == "unknown_op"
        assert pclient.ping() == "pong"

    def test_engine_error_maps_to_stable_code(self, pclient):
        with pytest.raises(ServerError) as info:
            pclient.create("Staff", "NoSuchClass", {})
        assert info.value.code == "unknown_class_error"
        assert pclient.ping() == "pong"

    def test_traces_and_metrics_ops(self, pclient):
        pclient.execute("select P from Person where P.Age > 10")
        assert isinstance(pclient.traces(5), list)
        text = pclient.metrics_text()
        assert "repro_server_inflight_requests" in text


class TestPipelining:
    def test_responses_matched_by_request_id(self, pclient):
        # Distinct queries submitted together, collected in reverse
        # submission order: each reply must carry *its* answer.
        names = [f"{n}_{i}" for i, n in enumerate(
            ["Alice", "Bob", "Carol", "Dan", "Eve", "Frank"]
        )]
        replies = [
            pclient.submit(
                "execute",
                line=f"select P.Name from P in Person where P.Name = '{name}'",
            )
            for name in names
        ]
        for name, reply in reversed(list(zip(names, replies))):
            assert name in reply.result(10)["output"]

    def test_cheap_requests_overtake_expensive_ones(self, monkeypatch):
        # The reader thread resolves replies in arrival order; record
        # it to see the server answer pings past a still-running scan
        # (wall-clock checks like ``slow.done()`` are GIL-timing flaky).
        from repro.server.aio.client import PendingReply

        arrival = []
        original = PendingReply._resolve

        def recording(self, result=None, error=None):
            arrival.append(self.request_id)
            original(self, result=result, error=error)

        monkeypatch.setattr(PendingReply, "_resolve", recording)
        # Big enough that the scan (~100ms+) dwarfs the GIL-contended
        # submission of the pings behind it (~5ms slices).
        srv = AsyncViewServer([build_people_db(8000, seed=1)])
        host, port = srv.start()
        try:
            with PipelinedClient(host, port) as c:
                c.ping()  # warm the executor
                slow = c.submit(
                    "execute",
                    line="select P.Name from P in Person"
                    " where P.Income < 0",  # full scan, tiny output
                )
                fast = [c.submit("ping") for _ in range(5)]
                for reply in fast:
                    assert reply.result(10) == "pong"
                assert slow.result(10)["output"] == "(no results)"
            scan_position = arrival.index(slow.request_id)
            ping_positions = [
                arrival.index(r.request_id) for r in fast
            ]
            assert all(p < scan_position for p in ping_positions)
        finally:
            srv.stop()

    def test_read_your_writes_through_group_commit(self, pclient, aserver):
        # Writes are barriers: a read pipelined *behind* a write on the
        # same connection (no waiting in between) must see it.
        for index in range(5):
            write = pclient.submit(
                "create",
                database="Staff",
                **{"class": "Person"},
                value={"Name": f"W{index}", "Age": 40 + index},
            )
            read = pclient.submit(
                "execute",
                line=(
                    "select P.Age from P in Person"
                    f" where P.Name = 'W{index}'"
                ),
            )
            assert write.result(10)["oid"]
            assert str(40 + index) in read.result(10)["output"]
        snap = aserver.metrics.snapshot()
        assert snap["mvcc"]["group_batches"] >= 1
        assert snap["pipeline"]["inflight_peak_connection"] >= 2

    def test_interleaved_update_then_select(self, pclient):
        oid = pclient.create("Staff", "Person", {"Name": "Mut", "Age": 1})
        write = pclient.submit(
            "update",
            database="Staff",
            oid={"$oid": [oid.space, oid.number]},
            attribute="Age",
            value=2,
        )
        read = pclient.submit(
            "execute",
            line="select P.Age from P in Person where P.Name = 'Mut'",
        )
        write.result(10)
        assert "2" in read.result(10)["output"]

    def test_harness_table_reports_pipelining(self, pclient, aserver):
        replies = [pclient.submit("ping") for _ in range(8)]
        for reply in replies:
            reply.result(10)
        rendered = server_metrics_table(aserver.metrics).render()
        assert "pipelining: peak" in rendered

    def test_client_side_inflight_cap(self, aserver):
        host, port = aserver.address
        with PipelinedClient(host, port, max_inflight=4) as c:
            replies = [c.submit("ping") for _ in range(20)]
            assert all(r.result(10) == "pong" for r in replies)
            assert c.inflight == 0


class TestBackpressure:
    def test_inflight_cap_pauses_reading_not_failing(self):
        srv = AsyncViewServer(
            [build_people_db(100, seed=1)], max_inflight=2
        )
        host, port = srv.start()
        try:
            with PipelinedClient(host, port) as c:
                replies = [
                    c.submit(
                        "execute",
                        line="select P from Person where P.Age >= 0",
                    )
                    for _ in range(12)
                ]
                for reply in replies:
                    assert "result(s)" in reply.result(30)["output"]
            snap = srv.metrics.snapshot()
            pauses = snap["pipeline"]["backpressure_pauses"]
            assert pauses.get("inflight", 0) >= 1
            assert sum(snap["errors"].values()) == 0
        finally:
            srv.stop()

    def test_write_high_water_counts_pauses(self):
        # Unit-level: a connection whose outbound buffer sits above the
        # high-water mark must count a "write" pause when answered (the
        # kernel's TCP buffer autotuning makes the real condition
        # impractical to provoke deterministically from a test).
        import asyncio

        from repro.server.aio.server import _Connection

        srv = AsyncViewServer(
            [build_people_db(5, seed=1)], write_high_water=64
        )

        class SwollenTransport:
            def is_closing(self):
                return False

            def get_write_buffer_size(self):
                return 1 << 20

        class FakeWriter:
            transport = SwollenTransport()
            written = b""

            def write(self, data):
                self.written += data

            async def drain(self):
                pass

        async def scenario():
            conn = _Connection(None, FakeWriter(), None)
            await srv._send(conn, b"x" * 100)
            await srv._send(conn, b"y" * 100)

        asyncio.run(scenario())
        pauses = srv.metrics.snapshot()["pipeline"]["backpressure_pauses"]
        assert pauses.get("write", 0) == 2

    def test_connection_limit_refuses_with_busy_frame(self):
        srv = AsyncViewServer(
            [build_people_db(5, seed=1)], max_connections=1
        )
        host, port = srv.start()
        try:
            with PipelinedClient(host, port) as c:
                c.ping()  # the one allowed connection, registered
                raw = socket.create_connection((host, port), timeout=5)
                try:
                    # Refusals arrive before codec negotiation: JSON.
                    frame = recv_frame(raw)
                    assert frame["ok"] is False
                    assert frame["error"]["code"] == "server_busy"
                finally:
                    raw.close()
            assert srv.metrics.snapshot()["connections"]["rejected"] >= 1
        finally:
            srv.stop()


class TestCodecNegotiation:
    def test_plain_client_speaks_json_to_async_server(self, aserver):
        host, port = aserver.address
        with Client(host, port) as c:
            assert c.ping() == "pong"
            assert "result(s)" in c.execute(
                "select P from Person where P.Age >= 21"
            )

    def test_threaded_server_refuses_binary_magic(self):
        srv = ViewServer([build_people_db(5, seed=1)])
        host, port = srv.start()
        raw = socket.create_connection((host, port), timeout=5)
        try:
            raw.sendall(framing.MAGIC)
            frame = recv_frame(raw)
            assert frame["ok"] is False
            assert "binary framing" in frame["error"]["message"]
        finally:
            raw.close()
            srv.stop()

    def test_async_server_can_disable_binary(self):
        srv = AsyncViewServer([build_people_db(5, seed=1)], binary=False)
        host, port = srv.start()
        raw = socket.create_connection((host, port), timeout=5)
        try:
            raw.sendall(framing.MAGIC)
            frame = recv_frame(raw)
            assert frame["ok"] is False
            assert "disabled" in frame["error"]["message"]
        finally:
            raw.close()
            srv.stop()

    def test_sessions_are_private_per_connection(self, aserver):
        host, port = aserver.address
        with PipelinedClient(host, port) as first:
            first.execute("create view V;")
            first.execute("import all classes from database Staff;")
            with PipelinedClient(host, port, binary=True) as second:
                assert second.databases() == ["Staff"]
            assert "V" in first.databases()


class TestShutdown:
    def test_stop_is_idempotent_and_drains(self):
        srv = AsyncViewServer([build_people_db(5, seed=1)])
        host, port = srv.start()
        c = PipelinedClient(host, port)
        assert c.ping() == "pong"
        srv.stop()
        srv.stop()
        with pytest.raises((ConnectionClosed, ServerError, OSError)):
            for _ in range(5):
                c.ping()
                time.sleep(0.05)
        c.close()

    def test_context_manager_lifecycle(self):
        with AsyncViewServer([build_people_db(5, seed=1)]) as srv:
            host, port = srv.address
            with PipelinedClient(host, port, binary=True) as c:
                assert c.ping() == "pong"
