"""Property-based tests for the relational algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Relation,
    difference,
    natural_join,
    project,
    select,
    union,
)

rows = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.sampled_from(["x", "y", "z"]),
        st.integers(0, 100),
    ),
    max_size=20,
)


def make(name, data):
    relation = Relation(name, ["A", "B", "C"])
    for row in data:
        relation.insert(*row)
    return relation


class TestAlgebraLaws:
    @given(rows)
    def test_select_true_is_identity(self, data):
        r = make("R", data)
        assert sorted(select(r, lambda _: True).rows()) == sorted(
            r.rows()
        )

    @given(rows)
    def test_select_false_is_empty(self, data):
        assert len(select(make("R", data), lambda _: False)) == 0

    @given(rows, st.integers(0, 5))
    def test_select_commutes_with_itself(self, data, k):
        r = make("R", data)
        p1 = lambda row: row["A"] <= k  # noqa: E731
        p2 = lambda row: row["C"] >= 50  # noqa: E731
        left = select(select(r, p1), p2)
        right = select(select(r, p2), p1)
        assert sorted(left.rows()) == sorted(right.rows())

    @given(rows)
    def test_project_idempotent(self, data):
        r = make("R", data)
        once = project(r, ["A", "B"])
        twice = project(once, ["A", "B"])
        assert sorted(once.rows()) == sorted(twice.rows())

    @given(rows)
    def test_project_narrowing_composes(self, data):
        r = make("R", data)
        direct = project(r, ["A"])
        staged = project(project(r, ["A", "B"]), ["A"])
        assert sorted(direct.rows()) == sorted(staged.rows())

    @given(rows, rows)
    def test_union_commutative(self, data1, data2):
        a, b = make("A", data1), make("B", data2)
        b2 = make("B2", data2)
        a2 = make("A2", data1)
        assert sorted(union(a, b).rows()) == sorted(union(b2, a2).rows())

    @given(rows)
    def test_union_idempotent(self, data):
        a, b = make("A", data), make("B", data)
        assert sorted(union(a, b).rows()) == sorted(set(a.rows()))

    @given(rows, rows)
    def test_difference_subset_of_left(self, data1, data2):
        a, b = make("A", data1), make("B", data2)
        result = set(difference(a, b).rows())
        assert result <= set(a.rows())
        assert not (result & set(b.rows()))

    @given(rows)
    def test_self_difference_empty(self, data):
        a, b = make("A", data), make("B", data)
        assert len(difference(a, b)) == 0

    @given(rows)
    @settings(max_examples=30)
    def test_join_with_self_keeps_rows(self, data):
        a = make("A", data)
        b = make("B", data)
        joined = natural_join(a, b)
        # Natural join on all columns = intersection (as sets).
        assert set(joined.rows()) == set(a.rows()) & set(b.rows())

    @given(rows, st.integers(0, 5))
    def test_selection_pushes_through_projection(self, data, k):
        r = make("R", data)
        p = lambda row: row["A"] <= k  # noqa: E731
        early = project(select(r, p), ["A", "B"])
        late = select(
            project(r, ["A", "B"]), lambda row: row["A"] <= k
        )
        assert sorted(early.rows()) == sorted(late.rows())
