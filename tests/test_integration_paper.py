"""Integration tests: every example in the paper, end to end.

Each test class corresponds to a numbered example or a named argument
in the paper; the DDL text is kept as close to the paper's as the
grammar allows.
"""

import pytest

from repro.core import ConflictPolicy, View
from repro.engine import Database, declare_atom
from repro.errors import HiddenAttributeError
from repro.lang import Catalog, run_script
from repro.relational import RelationalAdapter
from repro.workloads import build_policy_relational


@pytest.fixture
def staff():
    db = Database("Staff")
    db.define_class(
        "Person",
        attributes={
            "Name": "string",
            "Age": "integer",
            "Sex": "string",
            "Income": "integer",
            "City": "string",
            "Street": "string",
            "Zip_Code": "string",
            "Spouse": "Person",
            "Children": {"Person"},
        },
    )
    maggy = db.create(
        "Person", Name="Maggy", Age=65, Sex="female", Income=40_000,
        City="London", Street="10 Downing St", Zip_Code="SW1A",
    )
    denis = db.create(
        "Person", Name="Denis", Age=70, Sex="male", Income=3_000,
        City="London", Street="10 Downing St", Zip_Code="SW1A",
    )
    kid = db.create(
        "Person", Name="Mark", Age=12, Sex="male", Income=0,
        City="London", Street="10 Downing St", Zip_Code="SW1A",
    )
    db.update(denis, "Spouse", maggy)
    db.update(maggy, "Spouse", denis)
    db.update(denis, "Children", {kid.oid})
    db.update(maggy, "Children", {kid.oid})
    return db


class TestExample1MergingAttributes:
    def test_merged_address(self, staff):
        view = run_script(
            """
            create view V;
            import all classes from database Staff;
            attribute Address in class Person has value
              [City: self.City, Street: self.Street,
               Zip_Code: self.Zip_Code];
            """,
            Catalog(staff),
        ).view
        maggy = next(
            h for h in view.handles("Person") if h.Name == "Maggy"
        )
        # "to access Maggy's city and address, we use the same notation"
        assert maggy.City == "London"
        assert maggy.Address.City == "London"
        assert maggy.Address.Street == "10 Downing St"

    def test_inferred_type(self, staff):
        view = View("V")
        view.import_database(staff)
        adef = view.define_attribute(
            "Person",
            "Address",
            value="[City: self.City, Street: self.Street,"
            " Zip_Code: self.Zip_Code]",
        )
        assert adef.declared_type.describe() == (
            "[City: string, Street: string, Zip_Code: string]"
        )


class TestSection3Hiding:
    def test_hide_keeps_subclass_attributes(self, employment_db):
        """The Manager/Budget argument against projection."""
        view = run_script(
            """
            create view V;
            import all classes from database Company_DB;
            hide attribute Salary in class Employee;
            """,
            Catalog(employment_db),
        ).view
        manager = next(
            h
            for h in view.handles("Employee")
            if h.real_class == "Manager"
        )
        with pytest.raises(HiddenAttributeError):
            manager.Salary
        assert manager.Budget is not None  # projection would lose this


class TestExamples2And3VirtualHierarchy:
    SCRIPT = """
    create view V;
    import all classes from database Staff;
    class Adult includes (select P from Person where P.Age >= 21);
    class Minor includes (select P from Person where P.Age < 21);
    class Senior includes (select A from Adult where A.Age >= 65);
    class Adolescent includes (select M from Minor where M.Age >= 13);
    class Government_Supported includes
      Senior, (select A in Adult where A.Income < 5,000);
    attribute Government_Support_Deduction
      in class Government_Supported has value gsd(self);
    """

    def test_populations(self, staff):
        view = run_script(self.SCRIPT, Catalog(staff)).view
        assert len(view.extent("Adult")) == 2
        assert len(view.extent("Minor")) == 1
        assert len(view.extent("Senior")) == 2
        assert len(view.extent("Adolescent")) == 0
        assert len(view.extent("Government_Supported")) == 2

    def test_placements(self, staff):
        view = run_script(self.SCRIPT, Catalog(staff)).view
        schema = view.schema
        assert schema.direct_parents("Adult") == ("Person",)
        assert schema.direct_parents("Senior")[0] == "Adult"
        assert schema.isa("Senior", "Government_Supported")
        # Without a Student class both members guarantee Adult, so the
        # minimal common superclass is Adult (and transitively Person,
        # which is what the paper's prose — which includes Student —
        # reports).
        assert schema.direct_parents("Government_Supported") == ("Adult",)
        assert schema.isa("Government_Supported", "Person")

    def test_deduction_via_gsd(self, staff):
        view = run_script(self.SCRIPT, Catalog(staff)).view
        view.register_function(
            "gsd", lambda person: max(0, 5_000 - person.Income)
        )
        denis = next(
            h for h in view.handles("Person") if h.Name == "Denis"
        )
        assert denis.Government_Support_Deduction == 2_000


class TestExample4Ships:
    def test_bottom_up_and_insertion(self, navy_db):
        view = run_script(
            """
            create view V;
            import all classes from database Navy;
            class Merchant_Vessel includes Tanker, Trawler;
            class Military_Vessel includes Frigate, Cruiser;
            class Boat includes Merchant_Vessel, Military_Vessel;
            """,
            Catalog(navy_db),
        ).view
        schema = view.schema
        assert schema.direct_parents("Merchant_Vessel")[0] == "Ship"
        assert "Merchant_Vessel" in schema.direct_parents("Tanker")
        assert len(view.extent("Boat")) == len(view.extent("Ship"))
        # Upward inheritance (§4.3):
        assert schema.tuple_type_of("Merchant_Vessel").field_type(
            "Cargo"
        ) is not None
        assert schema.tuple_type_of("Military_Vessel").field_type(
            "Armament"
        ) is not None


class TestBehavioralOnSale:
    def test_on_sale_tracks_schema_evolution(self):
        declare_atom("dollar")
        db = Database("Retail")
        for name in ("Car", "House", "Company"):
            db.define_class(
                name,
                attributes={"Price": "dollar", "Discount": "integer"},
            )
            db.create(name, Price=1, Discount=1)
        view = run_script(
            """
            create view V;
            import all classes from database Retail;
            class On_Sale_Spec
              has attribute Price of type dollar;
              has attribute Discount of type integer;
            class On_Sale includes like On_Sale_Spec;
            class On_Sale_Bis includes Car, House, Company;
            """,
            Catalog(db),
        ).view
        assert view.extent("On_Sale").members == view.extent(
            "On_Sale_Bis"
        ).members
        # "the introduction of a class Boat ... is not needed with the
        # behavioral definition":
        db.define_class(
            "Boat",
            attributes={"Price": "dollar", "Discount": "integer"},
        )
        db.create("Boat", Price=2, Discount=1)
        assert len(view.extent("On_Sale")) == 4
        assert len(view.extent("On_Sale_Bis")) == 3


class TestRichAndBeautiful:
    def test_multiple_inheritance_and_overlap(self, staff):
        view = run_script(
            """
            create view V;
            import all classes from database Staff;
            class Rich includes
              (select P from Person where P.Income > 10,000);
            class Beautiful includes
              (select P from Person where P.Age < 66);
            class Rich&Beautiful includes
              (select P from Rich where P in Beautiful);
            """,
            Catalog(staff),
        ).view
        assert set(view.schema.direct_parents("Rich&Beautiful")) == {
            "Rich",
            "Beautiful",
        }
        assert [
            h.Name for h in view.handles("Rich&Beautiful")
        ] == ["Maggy"]


class TestSchizophreniaPolicies:
    def test_rich_senior_print_conflict(self, staff):
        view = run_script(
            """
            create view V;
            import all classes from database Staff;
            class Rich includes
              (select P from Person where P.Income > 10,000);
            class Senior includes
              (select P from Person where P.Age >= 65);
            attribute Print in class Rich has value 'R:' + self.Name;
            attribute Print in class Senior has value 'S:' + self.Name;
            resolve Print by priority Senior, Rich;
            """,
            Catalog(staff),
        ).view
        maggy = next(
            h for h in view.handles("Person") if h.Name == "Maggy"
        )
        assert maggy.Print == "S:Maggy"
        assert view.conflict_log


class TestSection5Families:
    def test_family_lifecycle(self, staff):
        view = run_script(
            """
            create view V;
            import class Person from database Staff;
            class Family includes imaginary
              (select [Husband: H, Wife: H.Spouse]
               from H in Person
               where H.Sex = 'male' and H.Spouse in Person);
            attribute Children in class Family has value
              (select P from Person
               where P in self.Husband.Children
                  or P in self.Wife.Children);
            """,
            Catalog(staff),
        ).view
        families = view.handles("Family")
        assert len(families) == 1
        family = families[0]
        assert family.Husband.Name == "Denis"
        assert family.Wife.Name == "Maggy"
        assert [c.Name for c in family.Children] == ["Mark"]
        # §5.1 agreement of the two query forms:
        direct = view.query(
            "select F from Family where F.Husband.Age < 80"
        )
        nested = view.query(
            "select F from Family where F in"
            " (select F from Family where F.Husband.Age < 80)"
        )
        assert {f.oid for f in direct} == {f.oid for f in nested}


class TestExample6InsuranceViews:
    def test_poor_vs_fixed_core_design(self):
        insurance = build_policy_relational(5, seed=3)
        adapter = RelationalAdapter(insurance)
        catalog = Catalog(adapter)
        bad = run_script(
            """
            create view My_Clients;
            import all classes from database Insurance;
            class Client includes imaginary
              (select [Name: P.Name, Age: P.Age, SS#: P.SS#,
                       Address: P.Address, Policy: P]
               from P in Policy);
            attribute Person in class Policy has value
              (select the C from Client where C.Policy = self);
            hide attributes Name, Age, Address, SS# in class Policy;
            """,
            catalog,
        ).view
        good = View("Fixed")
        good.import_database(adapter)
        good.define_imaginary_class(
            "Client",
            "select [Name: P.Name, SS#: P.SS#] from P in Policy",
        )
        bad_before = {c.Name: c.oid for c in bad.handles("Client")}
        good_before = {c.Name: c.oid for c in good.handles("Client")}
        insurance.relation("Policy").update_where(
            lambda row: row["Name"] == "Client_1",
            Address="somewhere new",
        )
        bad_after = {c.Name: c.oid for c in bad.handles("Client")}
        good_after = {c.Name: c.oid for c in good.handles("Client")}
        # "Maggy before moving and after moving are two different
        # clients" under the poor design; identity is stable under the
        # fixed design.
        assert bad_before["Client_1"] != bad_after["Client_1"]
        assert good_before["Client_1"] == good_after["Client_1"]

    def test_policy_person_attribute_through_hides(self):
        insurance = build_policy_relational(3, seed=4)
        adapter = RelationalAdapter(insurance)
        view = run_script(
            """
            create view My_Clients;
            import all classes from database Insurance;
            class Client includes imaginary
              (select [Name: P.Name, SS#: P.SS#, Policy: P]
               from P in Policy);
            attribute Person in class Policy has value
              (select the C from Client where C.Policy = self);
            hide attributes Name, Age, Address, SS# in class Policy;
            """,
            Catalog(adapter),
        ).view
        policy = view.handles("Policy")[0]
        # The view's own Person attribute works despite the hides...
        assert policy.Person.Name.startswith("Client_")
        # ...but users cannot see the hidden flat attributes.
        with pytest.raises(HiddenAttributeError):
            policy.Name
