"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench import (
    Table,
    bench_scale,
    microseconds,
    ratio,
    scaled,
    server_metrics_table,
    throughput,
    time_call,
)


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["name", "value"])
        table.add_row("short", 1)
        table.add_row("much longer name", 123456)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== T =="
        # All data lines equally wide columns: header and rows align.
        assert "name" in lines[1] and "value" in lines[1]
        assert "123,456" in rendered

    def test_float_formatting(self):
        table = Table("T", ["x"])
        table.add_row(0.00123)
        table.add_row(3.14159)
        table.add_row(12345.6)
        rendered = table.render()
        assert "0.00123" in rendered
        assert "3.14" in rendered
        assert "12,346" in rendered

    def test_zero(self):
        table = Table("T", ["x"])
        table.add_row(0.0)
        assert "0" in table.render()

    def test_wrong_arity_rejected(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_notes_rendered(self):
        table = Table("T", ["a"])
        table.add_row(1)
        table.note("claim: something")
        assert "note: claim: something" in table.render()


class TestTiming:
    def test_time_call_positive(self):
        elapsed = time_call(lambda: sum(range(100)), repeat=2)
        assert elapsed > 0

    def test_throughput_positive(self):
        ops = throughput(lambda: None, seconds=0.01)
        assert ops > 0

    def test_scaled_respects_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        assert scaled(100, minimum=5) == 5

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        assert scaled(100) == 250

    def test_bad_scale_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0

    def test_helpers(self):
        assert microseconds(0.001) == 1000
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")


class TestServerMetricsTable:
    def test_renders_read_write_rows_and_summary_note(self):
        from repro.server.metrics import ServerMetrics

        metrics = ServerMetrics()
        metrics.record_connection("opened")
        metrics.record_request("execute", "read", 0.002)
        metrics.record_request("create", "write", 0.001)
        metrics.record_request("execute", "read", 0.004, "timeout")
        table = server_metrics_table(metrics, title="T")
        rendered = table.render()
        assert "read" in rendered and "write" in rendered
        assert "p99 ms" in rendered
        assert "errors: 1" in rendered
        assert "1 opened" in rendered


class TestTrajectory:
    """The trajectory aggregator must tolerate the heterogeneous
    BENCH_*.json schemas the stacked PRs left behind."""

    def _load_module(self):
        import importlib.util
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "trajectory.py"
        )
        spec = importlib.util.spec_from_file_location("trajectory", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_sparse_schemas_render_without_crashing(self, tmp_path):
        import json

        files = {
            "BENCH_1.json": {
                "pr": 1,
                "experiment": "E1",
                "series": {"s": [{"objects": 10, "ms": 1.5}]},
            },
            # pr present but null, experiment missing.
            "BENCH_2.json": {
                "pr": None,
                "series": {"s": [{"ms": 2.0}]},
            },
            # No series at all.
            "BENCH_3.json": {"pr": 3, "experiment": "E3"},
            # Not even an object.
            "BENCH_4.json": [1, 2, 3],
        }
        for name, payload in files.items():
            (tmp_path / name).write_text(json.dumps(payload))
        (tmp_path / "BENCH_5.json").write_text("{not json")

        trajectory = self._load_module()
        payloads = trajectory.load_benches(str(tmp_path))
        records = trajectory.flatten(payloads)
        rendered = trajectory.render(records)
        assert "E1" in rendered
        # The null-pr cell renders with placeholders, not a crash.
        assert "—" in rendered
        assert len(records) == 2

    def test_real_bench_files_flatten(self):
        trajectory = self._load_module()
        records = trajectory.flatten(trajectory.load_benches())
        assert records, "repo bench files should produce cells"
        trajectory.render(records)
        assert any(r["experiment"] == "E20" for r in records)
